"""E17 — topology vs. redundancy: decentralized filtering on sparse graphs.

The paper's 2f-redundancy condition is global: the server sees all ``n``
gradients, so one bound ``f`` covers the whole system. On a sparse
communication graph the condition fractures into *per-neighborhood*
budgets — agent ``i`` filters only over its closed neighborhood, so what
must hold is ``deg_i >= 2 f_i`` with ``f_i`` the Byzantine count among
``i``'s own neighbors. This experiment sweeps the

    topology x connectivity x fault-count x network-fault-model

grid through :func:`repro.system.decentralized.run_decentralized_dgd` and
reports, per cell, how many agents satisfy their local redundancy bound
alongside the worst honest distance to the common minimizer — making the
trade visible: a denser graph buys feasibility (and faster mixing), a
sparser one loses agents to infeasible neighborhoods first and to slow
consensus second.

Every cell is an independent, seeded, deterministic configuration, so
execution rides :class:`repro.experiments.sweep.SweepEngine`'s cached
parallel layer exactly like the adversary tournament: cells are cached
under a ``"topology-cell"`` namespace (disjoint from ``"regression-dgd"``
and ``"tournament-match"`` keys), corrupt entries are discarded and
recomputed, and a re-run over a warm cache is pure cache hits.

Problem instances have *full local rank*: every agent's quadratic cost is
minimized at the same ``x* = (1, ..., 1)``, so local 2f-redundancy holds
by construction wherever the degree bound does, and the reference point
of every distance column is exact.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import ExperimentResult
from repro.exceptions import InvalidParameterError, ReproError
from repro.experiments.sweep import SweepEngine, _config_hash
from repro.utils.atomicio import write_json_atomic

__all__ = [
    "DEFAULT_VARIANTS",
    "FAULT_MODELS",
    "run_topology_resilience",
]

#: (topology name, generator params) pairs — the connectivity axis.
DEFAULT_VARIANTS: Tuple[Tuple[str, Dict], ...] = (
    ("ring", {"hops": 1}),
    ("ring", {"hops": 2}),
    ("random-regular", {"degree": 4}),
    ("random-regular", {"degree": 6}),
    ("torus", {}),
    ("complete", {}),
)

#: Named network-fault models (the ``LinkFaultProfile`` of every edge).
FAULT_MODELS: Dict[str, Optional[Dict]] = {
    "clean": None,
    "drops": {"drop_prob": 0.1},
    "chaos": {
        "drop_prob": 0.05,
        "delay_prob": 0.1,
        "max_delay": 2,
        "corrupt_prob": 0.01,
    },
}


def _spread_faulty(n: int, f: int) -> List[int]:
    """``f`` Byzantine ids spread evenly around the id space.

    Even spacing is the *interesting* placement for per-neighborhood
    accounting: clustered ids concentrate ``f_i`` in a few neighborhoods
    and trivially break feasibility there, while spreading makes the
    topology's degree the binding constraint.
    """
    if f <= 0:
        return []
    return sorted({int(round(i * n / f)) % n for i in range(f)})


def _cell_cache_payload(task: Dict) -> Dict:
    """The configuration a cell's cache key is derived from.

    Namespaced ``"topology-cell"`` so E17 cells can share a cache
    directory with regression-grid and tournament entries without
    collision. Covers everything the result is a function of — the
    topology variant, the instance, the fault placement, and the full
    resolved fault-model profile.
    """
    return {
        "kind": "topology-cell",
        "version": 1,
        "topology": task["topology"],
        "params": {str(k): v for k, v in task["params"].items()},
        "n": task["n"],
        "d": task["d"],
        "aggregation": task["aggregation"],
        "iterations": task["iterations"],
        "faulty": list(task["faulty"]),
        "fault_model": task["fault_model"],
        "profile": task["profile"],
        "instance_seed": task["instance_seed"],
        "topology_seed": task["topology_seed"],
        "seed": task["seed"],
        "fault_seed": task["fault_seed"],
    }


def _valid_cell_payload(payload) -> bool:
    """Shape guard for cached cells (beyond the checksum)."""
    if not isinstance(payload, dict):
        return False
    if "error" in payload:
        return isinstance(payload["error"], str)
    return (
        isinstance(payload.get("max_honest_dist"), (int, float))
        and isinstance(payload.get("feasible_agents"), int)
        and isinstance(payload.get("counters"), dict)
    )


def _load_cell_entry(path: str) -> Optional[Dict]:
    """Read one cell cache entry; ``None`` means corrupt/foreign."""
    from repro.exceptions import CacheIntegrityError
    from repro.utils.atomicio import read_json_checked

    try:
        payload = read_json_checked(path)
    except CacheIntegrityError:
        payload = None
    if payload is not None and not _valid_cell_payload(payload):
        payload = None
    if payload is None:
        try:
            os.remove(path)
        except OSError:
            pass
        return None
    return payload


def full_local_rank_costs(n: int, d: int, instance_seed: int):
    """``n`` quadratic costs sharing the exact minimizer ``x* = 1``.

    Each agent holds ``||A_i x - A_i x*||^2`` with a seeded Gaussian
    ``(2d, d)`` matrix ``A_i`` — full column rank almost surely, so
    *every* subset of agents is minimized exactly at ``x*`` and local
    2f-redundancy holds wherever the degree bound does.
    """
    from repro.optimization.cost_functions import LeastSquaresCost

    rng = np.random.default_rng([int(instance_seed), int(n), int(d)])
    x_star = np.ones(d)
    costs = []
    for _ in range(n):
        A = rng.normal(size=(2 * d, d)) / np.sqrt(2 * d)
        costs.append(LeastSquaresCost(A, A @ x_star))
    return costs, x_star


def _run_topology_cell(task: Dict) -> Dict:
    """Execute one (variant, f, fault-model) cell — picklable pool worker.

    Mirrors the tournament's ``_run_match_group``: consult the cache
    first, compute on miss, write the fresh entry back atomically with a
    checksum. Feasibility is *measured*, not enforced: a cell whose
    neighborhoods violate ``deg_i >= 2 f_i`` still runs (graceful
    degradation is the subject), with the violating-agent count reported.
    """
    from repro.attacks.registry import make_attack
    from repro.system.decentralized import run_decentralized_dgd
    from repro.system.netfaults import LinkFaultModel, LinkFaultProfile
    from repro.system.topology import make_topology

    cache_dir = task["cache_dir"]
    path = None
    if cache_dir is not None:
        key = _config_hash(_cell_cache_payload(task))
        path = os.path.join(cache_dir, f"{key}.json")
        if os.path.exists(path):
            payload = _load_cell_entry(path)
            if payload is not None:
                payload["cached"] = True
                return payload

    try:
        topology = make_topology(
            task["topology"], task["n"], seed=task["topology_seed"],
            **task["params"],
        )
        costs, x_star = full_local_rank_costs(
            task["n"], task["d"], task["instance_seed"]
        )
        faulty = list(task["faulty"])
        budgets = topology.resolve_budgets(None, faulty)
        feasible = int(np.count_nonzero(topology.feasible_agents(budgets)))
        link_faults = None
        if task["profile"] is not None:
            link_faults = LinkFaultModel(
                default_profile=LinkFaultProfile(**task["profile"]),
                seed=task["fault_seed"],
            )
        result = run_decentralized_dgd(
            costs,
            topology,
            aggregation=task["aggregation"],
            faulty_ids=faulty,
            behavior=make_attack("gradient-reverse") if faulty else None,
            iterations=task["iterations"],
            seed=task["seed"],
            link_faults=link_faults,
            validate_feasibility=False,
        )
        distances = result.distances_to(x_star)[result.honest_ids]
        payload = {
            "max_honest_dist": float(np.max(distances)),
            "mean_honest_dist": float(np.mean(distances)),
            "feasible_agents": feasible,
            "min_degree": int(topology.min_degree),
            "counters": {k: int(v) for k, v in result.counters.items()},
            "cached": False,
        }
    except (InvalidParameterError, ReproError) as exc:
        # The failure is a property of the configuration (e.g. a generator
        # bound), so caching it would mask a later fix: report, don't store.
        return {"error": f"{type(exc).__name__}: {exc}", "cached": False}

    if path is not None:
        stored = dict(payload)
        stored.pop("cached", None)
        write_json_atomic(path, stored)
    return payload


def run_topology_resilience(
    variants: Sequence[Tuple[str, Dict]] = DEFAULT_VARIANTS,
    fault_counts: Sequence[int] = (0, 2),
    fault_models: Sequence[str] = ("clean", "chaos"),
    n: int = 24,
    d: int = 2,
    aggregation: str = "cwtm",
    iterations: int = 250,
    instance_seed: int = 11,
    topology_seed: int = 0,
    seed: int = 1,
    fault_seed: int = 3,
    engine: Optional[SweepEngine] = None,
    cache_dir: Optional[str] = None,
    parallel: bool = False,
) -> ExperimentResult:
    """Sweep topology x connectivity x f x fault model; render the table.

    Pass a configured ``engine`` (or just ``cache_dir``) to reuse a cell
    cache across runs — an unchanged grid over a warm cache recomputes
    nothing.
    """
    unknown = [name for name in fault_models if name not in FAULT_MODELS]
    if unknown:
        raise InvalidParameterError(
            f"unknown fault model(s) {', '.join(map(repr, unknown))}; "
            f"available: {', '.join(sorted(FAULT_MODELS))}"
        )
    if engine is None:
        engine = SweepEngine(parallel=parallel, cache_dir=cache_dir)
    tasks = []
    for topology_name, params in variants:
        for f in fault_counts:
            for model_name in fault_models:
                tasks.append({
                    "topology": topology_name,
                    "params": dict(params),
                    "n": int(n),
                    "d": int(d),
                    "aggregation": aggregation,
                    "iterations": int(iterations),
                    "faulty": _spread_faulty(n, f),
                    "fault_model": model_name,
                    "profile": FAULT_MODELS[model_name],
                    "instance_seed": int(instance_seed),
                    "topology_seed": int(topology_seed),
                    "seed": int(seed),
                    "fault_seed": int(fault_seed),
                    "cache_dir": engine.cache_dir,
                })
    cells = engine.map(_run_topology_cell, tasks)

    result = ExperimentResult(
        experiment_id="E17",
        title=(
            f"decentralized {aggregation} across topologies "
            f"(n={n}, d={d}, T={iterations}, gradient-reverse attack, "
            f"spread Byzantine placement)"
        ),
        headers=[
            "topology", "f", "faults", "deg_min", "2f-feasible",
            "max honest dist", "dropped", "corrupted", "quarantined",
        ],
    )
    cached = failed = 0
    for task, cell in zip(tasks, cells):
        label = task["topology"]
        if task["params"]:
            label += "(" + ",".join(
                f"{k}={v}" for k, v in sorted(task["params"].items())
            ) + ")"
        if "error" in cell:
            failed += 1
            result.rows.append([
                label, len(task["faulty"]), task["fault_model"],
                "-", "-", cell["error"], "-", "-", "-",
            ])
            continue
        cached += int(cell.get("cached", False))
        counters = cell["counters"]
        result.rows.append([
            label,
            len(task["faulty"]),
            task["fault_model"],
            cell["min_degree"],
            f"{cell['feasible_agents']}/{n}",
            cell["max_honest_dist"],
            counters.get("dropped_edges", 0),
            counters.get("corrupted_edges", 0),
            counters.get("quarantined", 0),
        ])
    result.notes.append(
        "2f-feasible counts agents with deg_i >= 2 f_i for the actual "
        "Byzantine placement; infeasible neighborhoods still run "
        "(mean fallback) — their error is the graceful-degradation cost"
    )
    result.notes.append(
        f"{len(cells)} cells ({cached} from cache, {failed} failed); "
        "cells are cached under the 'topology-cell' namespace"
    )
    return result
