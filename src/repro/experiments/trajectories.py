"""E2/E3 — Figures 2-3: loss and distance trajectories.

Reconstruction of the paper's convergence figures: for each fault model,
plot (as series) the honest aggregate loss ``Σ_{i∈H} Q_i(x^t)`` and the
approximation error ``||x^t − x_H||`` across iterations, for four
executions — fault-free DGD, DGD+CGE, DGD+CWTM, and unfiltered DGD with the
Byzantine agent present. E3 is the same data restricted to the first 80
iterations (the paper's magnified view).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.analysis.metrics import distance_series, loss_series
from repro.analysis.reporting import ExperimentResult
from repro.experiments.common import paper_setup, run_attacked, run_fault_free
from repro.utils.rng import SeedLike


def run_trajectories(
    iterations: int = 500,
    attacks: Sequence[str] = ("gradient-reverse", "random"),
    noise_std: float = 0.02,
    seed: SeedLike = 20200803,
    early_window: int = 0,
) -> ExperimentResult:
    """Regenerate Figure 2 (or Figure 3 with ``early_window=80``).

    Parameters
    ----------
    early_window:
        When positive, truncate every series to its first ``early_window``
        iterations — the magnified early-phase view of Figure 3.
    """
    instance = paper_setup(noise_std=noise_std, seed=seed)
    faulty = (0,)
    honest = [i for i in range(instance.n) if i not in faulty]
    x_H = instance.honest_minimizer(honest)

    figure = "E3" if early_window else "E2"
    window = early_window if early_window else iterations + 1
    result = ExperimentResult(
        experiment_id=figure,
        title=(
            "Loss and distance vs iteration"
            + (f" (first {early_window} iterations)" if early_window else "")
        ),
    )

    def record(label: str, trace, costs, ids) -> None:
        losses = loss_series(trace, costs, ids)[:window]
        distances = distance_series(trace, x_H)[:window]
        result.series[f"{label}/loss"] = losses
        result.series[f"{label}/distance"] = distances

    fault_free = run_fault_free(instance, honest, iterations=iterations, seed=seed)
    honest_costs = [instance.costs[i] for i in honest]
    record("fault-free", fault_free, honest_costs, list(range(len(honest_costs))))

    for attack in attacks:
        for filter_name in ("cge", "cwtm", "average"):
            trace = run_attacked(
                instance, filter_name, attack, faulty_ids=faulty,
                iterations=iterations, seed=seed,
            )
            record(f"{filter_name}+{attack}", trace, instance.costs, honest)

    final_distances: Dict[str, float] = {
        name: float(series[-1])
        for name, series in result.series.items()
        if name.endswith("/distance")
    }
    for name in sorted(final_distances):
        result.notes.append(f"final {name} = {final_distances[name]:.4g}")
    result.notes.append(
        "expected shape: cge/cwtm distance curves track the fault-free curve; "
        "the unfiltered (average) curves plateau at a visibly larger error"
    )
    return result
