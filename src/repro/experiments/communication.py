"""E15 — Table 9: communication cost of the three algorithm families.

The paper's three algorithmic options differ drastically in what they move
over the network:

- **server-based filtered DGD** — per round, ``n`` estimate broadcasts down
  and ``n`` gradient messages up: ``Θ(T · n)`` messages, ``Θ(T · n · d)``
  values;
- **peer-to-peer filtered DGD** — every gradient crosses a full Byzantine
  broadcast, inflating each round to ``Θ(n² · f)`` point-to-point messages
  (the price of removing the trusted server);
- **subset enumeration** — one shot (each agent ships its whole *cost
  function* once), but the server-side computation is exponential; its
  "communication" is minimal and its cost lives elsewhere, which this table
  makes explicit by also reporting argmin-solve counts.

Measured from the simulator's own accounting, per configuration.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.aggregators.registry import make_filter
from repro.analysis.reporting import ExperimentResult
from repro.attacks.registry import make_attack
from repro.core.exact_algorithm import SubsetEnumerationAlgorithm
from repro.optimization.step_sizes import suggest_diminishing
from repro.problems.linear_regression import make_redundant_regression
from repro.system.peer_to_peer import run_peer_to_peer_dgd
from repro.system.runner import run_dgd
from repro.utils.rng import SeedLike


def run_communication_costs(
    configurations: Sequence[Tuple[int, int]] = ((4, 1), (7, 2), (10, 3)),
    d: int = 2,
    iterations: int = 100,
    seed: SeedLike = 5,
) -> ExperimentResult:
    """Regenerate Table 9 (messages moved per algorithm family)."""
    result = ExperimentResult(
        experiment_id="E15",
        title=f"Communication cost per algorithm family (T={iterations} rounds, d={d})",
        headers=[
            "n", "f", "server msgs", "server KiB", "p2p msgs",
            "p2p/server ratio", "subset-alg argmin solves",
        ],
    )
    for n, f in configurations:
        instance = make_redundant_regression(n=n, d=d, f=f, noise_std=0.0, seed=seed)
        schedule = suggest_diminishing(instance.costs, aggregation="sum")
        server = run_dgd(
            instance.costs,
            make_attack("gradient-reverse"),
            gradient_filter=make_filter("cge", f=f),
            faulty_ids=tuple(range(f)),
            iterations=iterations,
            step_sizes=schedule,
            seed=seed,
        )
        peer = run_peer_to_peer_dgd(
            instance.costs,
            make_filter("cge", f=f),
            faulty_ids=tuple(range(f)),
            behavior=make_attack("gradient-reverse"),
            iterations=iterations,
            step_sizes=schedule,
            seed=seed,
            equivocate=False,
        )
        solves = SubsetEnumerationAlgorithm(n, f).estimated_subset_solves()
        ratio = peer.broadcast_messages / max(server.messages_delivered, 1)
        result.rows.append(
            [
                n, f,
                server.messages_delivered,
                round(server.bytes_delivered / 1024.0, 1),
                peer.broadcast_messages,
                round(ratio, 1),
                solves,
            ]
        )
    result.notes.append(
        "expected shape: server messages grow as T·2n; the peer-to-peer "
        "overhead ratio grows with n·f (each gradient pays a Dolev-Strong "
        "broadcast); the subset algorithm moves almost nothing but its "
        "argmin-solve count explodes combinatorially"
    )
    return result
