"""E11 — Table 6: redundancy by design via data replication.

The paper notes 2f-redundancy "can be realized by design". This experiment
starts from a deliberately *non-redundant* base assignment (observation
directions concentrated so some minimal subsets are rank-deficient),
replicates each row at ``k`` cyclically-consecutive agents for increasing
``k``, and reports:

- whether 2f-redundancy holds at that degree,
- the final error of DGD+CGE under the gradient-reverse attack, and
- the per-agent storage factor (the price of the redundancy).

Expected shape: redundancy is repaired exactly at ``k = 2f + 1`` (the
proven threshold) and the attacked execution's error drops to the
fault-free floor at the same point.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.metrics import final_error
from repro.analysis.reporting import ExperimentResult
from repro.attacks.registry import make_attack
from repro.exceptions import InvalidParameterError
from repro.core.redundancy import check_2f_redundancy
from repro.optimization.cost_functions import LeastSquaresCost
from repro.problems.linear_regression import RegressionInstance
from repro.problems.replication import ReplicatedInstance, minimum_replication_degree
from repro.system.runner import run_dgd
from repro.utils.rng import SeedLike


def _concentrated_base(n: int, d: int) -> RegressionInstance:
    """A consistent instance whose one-row assignment is NOT 2f-redundant.

    ``n − d + 1`` agents observe the same first coordinate direction; the
    remaining ``d − 1`` agents observe the other coordinates — so minimal
    subsets that miss one of the rare directions cannot pin down ``x*``.
    """
    rows = [np.eye(d)[0]] * (n - d + 1) + [np.eye(d)[k] for k in range(1, d)]
    A = np.stack(rows)
    x_star = np.ones(d)
    b = A @ x_star
    costs = [LeastSquaresCost(A[i : i + 1], b[i : i + 1]) for i in range(n)]
    return RegressionInstance(A=A, b=b, x_star=x_star, noise_std=0.0, costs=costs)


def _replicate_with_degree(instance: RegressionInstance, degree: int) -> ReplicatedInstance:
    assignments = []
    costs = []
    n = instance.n
    for i in range(n):
        rows = [(i + k) % n for k in range(degree)]
        assignments.append(rows)
        costs.append(LeastSquaresCost(instance.A[rows], instance.b[rows]))
    return ReplicatedInstance(
        base=instance, replication_degree=degree, assignments=assignments, costs=costs
    )


def run_replication_design(
    n: int = 6,
    d: int = 2,
    f: int = 1,
    degrees: Sequence[int] = (1, 2, 3, 4),
    iterations: int = 1500,
    seed: SeedLike = 17,
) -> ExperimentResult:
    """Regenerate Table 6 (replication degree vs achieved fault-tolerance)."""
    base = _concentrated_base(n, d)
    threshold = minimum_replication_degree(n, f)
    result = ExperimentResult(
        experiment_id="E11",
        title=f"Redundancy by design: cyclic replication (n={n}, d={d}, f={f})",
        headers=[
            "replication degree", "storage factor", "2f-redundant",
            "cge error under attack",
        ],
    )
    for degree in degrees:
        replicated = _replicate_with_degree(base, degree)
        redundant = check_2f_redundancy(replicated.costs, f)
        trace = run_dgd(
            replicated.costs,
            make_attack("gradient-reverse"),
            gradient_filter="cge",
            faulty_ids=tuple(range(f)),
            iterations=iterations,
            seed=seed,
        )
        honest = [i for i in range(n) if i >= f]
        try:
            x_H = replicated.honest_minimizer(honest)
            error = final_error(trace, x_H)
        except (
            InvalidParameterError,  # rank-deficient honest rows: no unique x_H
            np.linalg.LinAlgError,
            FloatingPointError,
        ) as exc:
            # Only genuine numerical failure (a rank-deficient degree's
            # minimizer not existing) may degrade to a nan row; anything
            # else — typos, shape errors, bad refactors — must surface.
            error = float("nan")
            result.notes.append(
                f"degree {degree}: honest minimizer undefined "
                f"({type(exc).__name__}: {exc}); error reported as nan"
            )
        result.rows.append(
            [degree, float(degree), "yes" if redundant else "no", error]
        )
    result.notes.append(
        f"proven threshold: degree 2f+1 = {threshold} repairs redundancy exactly"
    )
    result.notes.append(
        "expected shape: 2f-redundancy flips to 'yes' at the threshold and "
        "the attacked error collapses to the optimization floor there"
    )
    return result
