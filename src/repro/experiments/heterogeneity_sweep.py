"""E14 — Figure 7: accuracy vs inter-agent data correlation.

The paper's stated observation for its learning experiments: *"the accuracy
of the learning process depends upon the correlation between the data
points of non-faulty agents"* — i.e. redundancy is the currency that buys
fault-tolerance in learning. This sweep raises the heterogeneity of the
agents' local data distributions (from i.i.d./redundant to strongly
skewed) and tracks, at each level:

- the fault-free reference accuracy (heterogeneity costs a little even
  without faults),
- the robust filters' accuracy under the amplified sign-flip attack, and
- the *robustness gap* — fault-free minus attacked accuracy — which is the
  price of Byzantine faults at that redundancy level.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.reporting import ExperimentResult
from repro.attacks.registry import make_attack
from repro.optimization.step_sizes import DiminishingStepSize
from repro.problems.learning import make_learning_instance
from repro.system.runner import run_dgd
from repro.utils.rng import SeedLike


def run_heterogeneity_sweep(
    heterogeneity_levels: Sequence[float] = (0.0, 0.25, 0.5, 1.0, 2.0),
    n: int = 10,
    d: int = 5,
    f: int = 3,
    samples_per_agent: int = 30,
    filters: Sequence[str] = ("cge", "cwtm"),
    iterations: int = 250,
    regularization: float = 0.05,
    seed: SeedLike = 3,
) -> ExperimentResult:
    """Regenerate Figure 7 (accuracy vs heterogeneity, attacked and not)."""
    schedule = DiminishingStepSize(c=2.0, t0=5.0)
    faulty_ids = tuple(range(f))
    result = ExperimentResult(
        experiment_id="E14",
        title=f"Accuracy vs data heterogeneity (n={n}, f={f}, sign-flip x5)",
        headers=["heterogeneity", "fault-free acc"]
        + [f"{name} acc (attacked)" for name in filters]
        + [f"{name} robustness gap" for name in filters],
    )
    reference_series = []
    attacked_series = {name: [] for name in filters}
    for heterogeneity in heterogeneity_levels:
        instance = make_learning_instance(
            n=n, d=d, samples_per_agent=samples_per_agent,
            heterogeneity=heterogeneity, regularization=regularization, seed=seed,
        )
        honest = [i for i in range(n) if i not in faulty_ids]
        reference = run_dgd(
            [instance.costs[i] for i in honest], None,
            gradient_filter="average", iterations=iterations,
            step_sizes=schedule, seed=seed,
        )
        reference_accuracy = instance.accuracy(reference.final_estimate)
        reference_series.append(reference_accuracy)
        row = [heterogeneity, reference_accuracy]
        gaps = []
        for filter_name in filters:
            trace = run_dgd(
                instance.costs,
                make_attack("sign-flip", strength=5.0),
                gradient_filter=filter_name,
                faulty_ids=faulty_ids,
                iterations=iterations,
                step_sizes=schedule,
                seed=seed,
            )
            accuracy = instance.accuracy(trace.final_estimate)
            attacked_series[filter_name].append(accuracy)
            row.append(accuracy)
            gaps.append(reference_accuracy - accuracy)
        row.extend(gaps)
        result.rows.append(row)
    result.series["fault-free accuracy"] = np.asarray(reference_series)
    for name, series in attacked_series.items():
        result.series[f"{name} attacked accuracy"] = np.asarray(series)
    result.notes.append(
        "expected shape: at low heterogeneity (high redundancy) the attacked "
        "robust filters match the fault-free reference; the robustness gap "
        "widens as heterogeneity erodes redundancy — accuracy under attack "
        "tracks inter-agent data correlation, the paper's stated observation"
    )
    return result
