"""E14 — Figure 7: accuracy vs inter-agent data correlation.

The paper's stated observation for its learning experiments: *"the accuracy
of the learning process depends upon the correlation between the data
points of non-faulty agents"* — i.e. redundancy is the currency that buys
fault-tolerance in learning. This sweep raises the heterogeneity of the
agents' local data distributions (from i.i.d./redundant to strongly
skewed) and tracks, at each level:

- the fault-free reference accuracy (heterogeneity costs a little even
  without faults),
- the robust filters' accuracy under the amplified sign-flip attack, and
- the *robustness gap* — fault-free minus attacked accuracy — which is the
  price of Byzantine faults at that redundancy level.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.reporting import ExperimentResult
from repro.attacks.registry import make_attack
from repro.experiments.sweep import parallel_map
from repro.optimization.step_sizes import DiminishingStepSize
from repro.problems.learning import make_learning_instance
from repro.system.runner import run_dgd
from repro.utils.rng import SeedLike


def _heterogeneity_level(task: dict) -> dict:
    """One heterogeneity level's reference + attacked runs (pool worker)."""
    schedule = DiminishingStepSize(c=2.0, t0=5.0)
    faulty_ids = tuple(range(task["f"]))
    instance = make_learning_instance(
        n=task["n"], d=task["d"], samples_per_agent=task["samples_per_agent"],
        heterogeneity=task["heterogeneity"], regularization=task["regularization"],
        seed=task["seed"],
    )
    honest = [i for i in range(task["n"]) if i not in faulty_ids]
    reference = run_dgd(
        [instance.costs[i] for i in honest], None,
        gradient_filter="average", iterations=task["iterations"],
        step_sizes=schedule, seed=task["seed"],
    )
    reference_accuracy = instance.accuracy(reference.final_estimate)
    attacked = {}
    for filter_name in task["filters"]:
        trace = run_dgd(
            instance.costs,
            make_attack("sign-flip", strength=5.0),
            gradient_filter=filter_name,
            faulty_ids=faulty_ids,
            iterations=task["iterations"],
            step_sizes=schedule,
            seed=task["seed"],
        )
        attacked[filter_name] = instance.accuracy(trace.final_estimate)
    return {"reference": reference_accuracy, "attacked": attacked}


def run_heterogeneity_sweep(
    heterogeneity_levels: Sequence[float] = (0.0, 0.25, 0.5, 1.0, 2.0),
    n: int = 10,
    d: int = 5,
    f: int = 3,
    samples_per_agent: int = 30,
    filters: Sequence[str] = ("cge", "cwtm"),
    iterations: int = 250,
    regularization: float = 0.05,
    seed: SeedLike = 3,
    parallel: bool = False,
    max_workers=None,
) -> ExperimentResult:
    """Regenerate Figure 7 (accuracy vs heterogeneity, attacked and not).

    ``parallel=True`` fans the heterogeneity levels over a process pool
    (each level's runs are independent); results are identical.
    """
    result = ExperimentResult(
        experiment_id="E14",
        title=f"Accuracy vs data heterogeneity (n={n}, f={f}, sign-flip x5)",
        headers=["heterogeneity", "fault-free acc"]
        + [f"{name} acc (attacked)" for name in filters]
        + [f"{name} robustness gap" for name in filters],
    )
    reference_series = []
    attacked_series = {name: [] for name in filters}
    tasks = [
        {
            "heterogeneity": heterogeneity, "n": n, "d": d, "f": f,
            "samples_per_agent": samples_per_agent, "filters": list(filters),
            "iterations": iterations, "regularization": regularization,
            "seed": seed,
        }
        for heterogeneity in heterogeneity_levels
    ]
    levels = parallel_map(
        _heterogeneity_level, tasks, parallel=parallel, max_workers=max_workers
    )
    for heterogeneity, level in zip(heterogeneity_levels, levels):
        reference_accuracy = level["reference"]
        reference_series.append(reference_accuracy)
        row = [heterogeneity, reference_accuracy]
        gaps = []
        for filter_name in filters:
            accuracy = level["attacked"][filter_name]
            attacked_series[filter_name].append(accuracy)
            row.append(accuracy)
            gaps.append(reference_accuracy - accuracy)
        row.extend(gaps)
        result.rows.append(row)
    result.series["fault-free accuracy"] = np.asarray(reference_series)
    for name, series in attacked_series.items():
        result.series[f"{name} attacked accuracy"] = np.asarray(series)
    result.notes.append(
        "expected shape: at low heterogeneity (high redundancy) the attacked "
        "robust filters match the fault-free reference; the robustness gap "
        "widens as heterogeneity erodes redundancy — accuracy under attack "
        "tracks inter-agent data correlation, the paper's stated observation"
    )
    return result
