"""E5 — Figure 4: graceful degradation under redundancy violation.

2f-redundancy is exact only in noiseless systems. This sweep injects
observation noise of increasing σ into the regression instance, measures
the induced redundancy margin ``ε*(σ)``, and runs DGD+CGE under the
gradient-reverse attack at each level. The paper's characterization
predicts the achievable error scales with the redundancy violation: the
final error should track ``ε*(σ)`` (up to a modest constant), and at
``σ = 0`` both are (numerically) zero.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.metrics import final_error
from repro.analysis.reporting import ExperimentResult
from repro.core.exact_algorithm import SubsetEnumerationAlgorithm
from repro.core.redundancy import measure_redundancy_margin
from repro.experiments.common import run_attacked
from repro.problems.linear_regression import make_redundant_regression
from repro.utils.rng import SeedLike


def run_noise_sweep(
    noise_levels: Sequence[float] = (0.0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2),
    n: int = 6,
    f: int = 1,
    d: int = 2,
    iterations: int = 500,
    seed: SeedLike = 20200803,
    include_exact_algorithm: bool = True,
    backend: str = "sequential",
) -> ExperimentResult:
    """Regenerate Figure 4 (error vs redundancy-violation sweep).

    ``backend="batch"`` executes each run through the vectorized engine
    (bit-identical results).
    """
    result = ExperimentResult(
        experiment_id="E5",
        title=f"Redundancy violation sweep (n={n}, f={f}, d={d}, gradient-reverse attack)",
        headers=["noise std", "margin eps*", "cge error", "exact-alg error", "cge err / eps*"],
    )
    margins = []
    cge_errors = []
    optimization_floor = None
    for sigma in noise_levels:
        instance = make_redundant_regression(
            n=n, d=d, f=f, noise_std=sigma, seed=seed
        )
        honest = list(range(f, n))
        x_H = instance.honest_minimizer(honest)
        margin = measure_redundancy_margin(instance.costs, f).margin
        trace = run_attacked(
            instance, "cge", "gradient-reverse", faulty_ids=tuple(range(f)),
            iterations=iterations, seed=seed, backend=backend,
        )
        error = final_error(trace, x_H)
        if include_exact_algorithm:
            algorithm = SubsetEnumerationAlgorithm(n, f)
            exact_error = float(
                np.linalg.norm(algorithm.run(instance.costs).output - x_H)
            )
        else:
            exact_error = float("nan")
        ratio = error / margin if margin > 1e-12 else float("nan")
        if sigma == 0.0:
            optimization_floor = error
        result.rows.append([sigma, margin, error, exact_error, ratio])
        margins.append(margin)
        cge_errors.append(error)
    result.series["margin eps*(sigma)"] = np.asarray(margins)
    result.series["cge final error(sigma)"] = np.asarray(cge_errors)
    if optimization_floor is not None:
        result.notes.append(
            f"DGD optimization floor after {iterations} iterations (sigma=0): "
            f"{optimization_floor:.4g} — the iterative method's finite-horizon "
            "error, unrelated to redundancy; the exact algorithm's sigma=0 "
            "error is numerically zero"
        )
    result.notes.append(
        "expected shape: the margin and both errors grow together with sigma; "
        "cge error ~ max(optimization floor, O(eps*)); exact-alg error <= 2 eps*"
    )
    return result
