"""Experiment harness: one module per reconstructed table/figure.

Each ``run_*`` function is pure given its arguments (seeded), returns an
:class:`repro.analysis.reporting.ExperimentResult`, and is wrapped by a
bench target under ``benchmarks/`` that prints the rendered rows/series.
The experiment ids (E1-E16, plus ablations A1-A4) and their mapping to the
paper's artefacts are indexed in DESIGN.md; the observed-vs-expected record
lives in EXPERIMENTS.md. Any experiment can be aggregated across seeds with
:func:`repro.experiments.multiseed.summarize_over_seeds`.
"""

from repro.experiments.ablations import (
    run_cge_sum_vs_mean,
    run_projection_ablation,
    run_step_size_ablation,
)
from repro.experiments.communication import run_communication_costs
from repro.experiments.degraded_network import run_degraded_network
from repro.experiments.topology_resilience import run_topology_resilience
from repro.experiments.dimension_sweep import run_cwtm_dimension_sweep
from repro.experiments.exact_table import run_exact_algorithm_table
from repro.experiments.fault_sweep import run_fault_sweep
from repro.experiments.heterogeneity_sweep import run_heterogeneity_sweep
from repro.experiments.learning_eval import run_learning_eval
from repro.experiments.multiseed import summarize_over_seeds
from repro.experiments.noise_sweep import run_noise_sweep
from repro.experiments.peer_vs_server import run_peer_vs_server
from repro.experiments.replication import run_replication_design
from repro.experiments.robustness_matrix import run_robustness_matrix
from repro.experiments.scaling import run_aggregator_scaling
from repro.experiments.stochastic import run_stochastic_step_sizes
from repro.experiments.sweep import (
    RegressionGrid,
    SweepCellResult,
    SweepEngine,
    SweepEvents,
    derive_run_seeds,
    parallel_map,
    summarize_grid,
)
from repro.experiments.tournament import (
    AttackSpec,
    EloTable,
    TournamentConfig,
    default_attack_bank,
    load_tournament_artifact,
    run_tournament,
    write_tournament_artifact,
)
from repro.experiments.table1 import run_table1
from repro.experiments.trajectories import run_trajectories
from repro.experiments.worst_case import run_worst_case_certification

__all__ = [
    "run_table1",
    "run_trajectories",
    "run_exact_algorithm_table",
    "run_noise_sweep",
    "run_fault_sweep",
    "run_learning_eval",
    "run_peer_vs_server",
    "run_robustness_matrix",
    "run_replication_design",
    "run_cwtm_dimension_sweep",
    "run_worst_case_certification",
    "run_heterogeneity_sweep",
    "run_communication_costs",
    "run_degraded_network",
    "run_topology_resilience",
    "summarize_over_seeds",
    "run_aggregator_scaling",
    "run_cge_sum_vs_mean",
    "run_step_size_ablation",
    "run_projection_ablation",
    "run_stochastic_step_sizes",
    "SweepEngine",
    "SweepEvents",
    "RegressionGrid",
    "SweepCellResult",
    "derive_run_seeds",
    "parallel_map",
    "summarize_grid",
    "AttackSpec",
    "EloTable",
    "TournamentConfig",
    "default_attack_bank",
    "load_tournament_artifact",
    "run_tournament",
    "write_tournament_artifact",
]
