"""Adversary tournament: every filter against the whole attack bank.

The registries hold a dozen gradient filters and a bank of static,
adaptive, and best-response attacks, but until now evaluation meant
hand-curated pairings. This module turns the cross-product into a
generator: a round-robin **tournament** in which every registered filter
plays every attack in the bank, adaptive attacks are *re-tuned* between
rounds against the filters that beat them (best-response iteration), and
the outcomes roll up into an Elo-style **robustness leaderboard** with
multiseed confidence intervals.

Execution rides :class:`repro.experiments.sweep.SweepEngine`'s cached
parallel layer: each (filter, attack, seed) match is cached under a
SHA-256 key of its full configuration in the ``"tournament-match"``
namespace (disjoint from the regression-grid ``"regression-dgd"`` cells),
written atomically with checksums via :mod:`repro.utils.atomicio`. The
cache key covers the *resolved* attack parameters but not the tournament
round index, so a re-tuned attack is a new match while an unchanged one
is a cache hit — which is exactly what makes the matrix tractable and a
killed run resumable: re-running the tournament against the same cache
recomputes only matches that never finished.

Scoring is metric-driven, from the same telemetry/metrics the experiment
tables use: a filter **wins** a match when its final distance to the
honest minimizer ``x_H`` lands at or below ``win_threshold`` (it
converged despite the attack), **loses** at or above ``loss_threshold``
(the attack broke it), and **draws** in between. Each match also records
the convergence iteration (first round the distance series settles below
the win threshold) and the filter's elimination precision/recall against
the ground-truth Byzantine set. Elo updates are batched per (round,
seed) from snapshot ratings and summed with :func:`math.fsum`, making
the ratings *exactly* invariant to match-ingestion order within a batch;
leaderboard statistics sum over sorted per-seed arrays, making them
exactly invariant to seed permutation. Both invariances are pinned by
hypothesis properties in the test suite.

Artifacts are schema-versioned (:data:`TOURNAMENT_SCHEMA`) JSON
documents written atomically with checksums; everything outside the
``"provenance"`` and ``"execution"`` keys is a pure function of the
configuration, so CI can assert a cold and a cache-warm run produce
bit-identical results.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.aggregators.registry import available_filters, make_filter
from repro.analysis.metrics import convergence_iteration
from repro.analysis.reporting import ExperimentResult
from repro.attacks.registry import available_attacks, make_attack
from repro.exceptions import (
    InvalidParameterError,
    ReproError,
    TournamentSchemaError,
)
from repro.experiments.multiseed import summarize_over_seeds
from repro.experiments.sweep import (
    SweepEngine,
    _config_hash,
    derive_run_seeds,
)
from repro.utils.atomicio import read_json_dict_checked, write_json_atomic

__all__ = [
    "TOURNAMENT_SCHEMA",
    "AttackSpec",
    "TournamentConfig",
    "EloTable",
    "default_attack_bank",
    "run_tournament",
    "score_match",
    "leaderboard_from_ratings",
    "write_tournament_artifact",
    "load_tournament_artifact",
    "validate_tournament_payload",
    "artifact_filename",
]

#: Schema tag carried by every tournament artifact.
TOURNAMENT_SCHEMA = "repro.tournament/v1"

#: Special (non-registry) attack name for the φ-minimizing best response.
BEST_RESPONSE_ATTACK = "phi-minimizing"

_Params = Tuple[Tuple[str, object], ...]


def _freeze_params(params: Optional[Dict]) -> _Params:
    """Canonical (sorted, hashable) form of an attack's keyword params."""
    if not params:
        return ()
    return tuple(sorted((str(k), params[k]) for k in params))


@dataclass(frozen=True)
class AttackSpec:
    """One entry of the tournament's attack bank.

    Parameters
    ----------
    name:
        Bank-local display name (the attack's leaderboard identity).
    attack:
        Registry name passed to :func:`repro.attacks.registry.make_attack`,
        or :data:`BEST_RESPONSE_ATTACK` for the φ-minimizing adversary
        (constructed per match, since it must know the defending filter
        and the honest minimizer).
    kind:
        ``"static"`` (fixed parameters), ``"adaptive"`` (re-tuned between
        rounds along ``palette``), or ``"best-response"`` (re-optimizes
        every DGD round on its own).
    params:
        Constructor keyword arguments, as a canonical sorted tuple of
        ``(key, value)`` pairs (use :meth:`with_params` to build from a
        dict).
    palette:
        For adaptive attacks: the escalation ladder of parameter sets.
        Round 0 plays ``palette[0]``; after a round in which the defending
        filter beat the attack, the pairing escalates to the next palette
        entry (per-filter — each defender faces its own tuning).
    """

    name: str
    attack: str
    kind: str = "static"
    params: _Params = ()
    palette: Tuple[_Params, ...] = ()

    def __post_init__(self):
        if self.kind not in ("static", "adaptive", "best-response"):
            raise InvalidParameterError(
                f"attack kind must be 'static', 'adaptive', or "
                f"'best-response', got {self.kind!r}"
            )
        if self.kind == "adaptive" and not self.palette:
            raise InvalidParameterError(
                f"adaptive attack {self.name!r} needs a non-empty palette"
            )

    @staticmethod
    def with_params(name: str, attack: str, kind: str = "static",
                    params: Optional[Dict] = None,
                    palette: Sequence[Optional[Dict]] = ()) -> "AttackSpec":
        """Build a spec from plain dicts (canonicalized internally)."""
        frozen_palette = tuple(_freeze_params(p) for p in palette)
        frozen = _freeze_params(params)
        if frozen_palette and not params:
            frozen = frozen_palette[0]
        return AttackSpec(name=name, attack=attack, kind=kind,
                          params=frozen, palette=frozen_palette)

    def params_at(self, level: int) -> Dict:
        """Resolved constructor kwargs at palette escalation ``level``."""
        if self.palette:
            level = max(0, min(int(level), len(self.palette) - 1))
            return dict(self.palette[level])
        return dict(self.params)

    def max_level(self) -> int:
        return max(0, len(self.palette) - 1)


def default_attack_bank() -> Tuple[AttackSpec, ...]:
    """The standard bank: four static, three adaptive, one best-response.

    Static entries play the registry defaults. Adaptive entries start at
    the weak end of their palette and escalate against filters that beat
    them (ALIE's deviation multiplier ``z`` grows, IPM's inversion scale
    grows, mimic switches which honest agent it impersonates). The ALIE
    entries pin ``z`` explicitly so the bank never needs scipy's normal
    quantile at run time. The φ-minimizing best response re-optimizes
    per DGD round by construction, so it has no palette; its probe count
    is reduced from the certification default to keep the full
    cross-product tractable.
    """
    return (
        AttackSpec.with_params("gradient-reverse", "gradient-reverse"),
        AttackSpec.with_params("sign-flip", "sign-flip"),
        AttackSpec.with_params("zero", "zero"),
        AttackSpec.with_params("random", "random", params={"scale": 200.0}),
        AttackSpec.with_params(
            "alie", "alie", kind="adaptive",
            palette=[{"z": 0.5}, {"z": 1.5}, {"z": 3.0}],
        ),
        AttackSpec.with_params(
            "ipm", "ipm", kind="adaptive",
            palette=[{"scale": 0.5}, {"scale": 2.0}, {"scale": 8.0}],
        ),
        AttackSpec.with_params(
            "mimic", "mimic", kind="adaptive",
            palette=[{"target_position": 0}, {"target_position": 1},
                     {"target_position": 2}],
        ),
        AttackSpec.with_params(
            "phi-min", BEST_RESPONSE_ATTACK, kind="best-response",
            params={"num_random_probes": 2},
        ),
    )


@dataclass(frozen=True)
class TournamentConfig:
    """Declarative tournament: who plays, on what instance, scored how.

    ``filters=()`` (the default) means *every* registered filter — the
    roster grows automatically with the registry. The problem instance is
    one :func:`~repro.problems.linear_regression.make_redundant_regression`
    problem sized so every registered filter is feasible (Bulyan needs
    ``n >= 4f + 3``). Scoring thresholds are distances to the honest
    minimizer ``x_H``; they do not enter match cache keys, so re-scoring
    an existing cache under different thresholds is free.
    """

    name: str = "tournament"
    filters: Tuple[str, ...] = ()
    attacks: Tuple[AttackSpec, ...] = field(default_factory=default_attack_bank)
    rounds: int = 2
    num_seeds: int = 5
    master_seed: int = 20200803
    n: int = 8
    d: int = 2
    f: int = 1
    noise_std: float = 0.02
    instance_seed: int = 20200803
    iterations: int = 300
    x0: Optional[Tuple[float, ...]] = None
    win_threshold: float = 0.1
    loss_threshold: float = 0.4
    elo_k: float = 32.0
    elo_initial: float = 1000.0

    def __post_init__(self):
        if self.rounds < 1:
            raise InvalidParameterError(
                f"rounds must be at least 1, got {self.rounds}"
            )
        if self.num_seeds < 2:
            raise InvalidParameterError(
                "num_seeds must be at least 2 (the multiseed confidence "
                f"intervals need replication), got {self.num_seeds}"
            )
        if self.f < 1:
            raise InvalidParameterError(
                f"a tournament needs at least one Byzantine agent, got f={self.f}"
            )
        if self.f >= self.n / 2:
            raise InvalidParameterError(
                f"need f < n/2 for 2f-redundancy, got f={self.f}, n={self.n}"
            )
        if self.iterations < 1:
            raise InvalidParameterError(
                f"iterations must be positive, got {self.iterations}"
            )
        if not (0 < self.win_threshold < self.loss_threshold):
            raise InvalidParameterError(
                "thresholds must satisfy 0 < win_threshold < loss_threshold, "
                f"got win={self.win_threshold}, loss={self.loss_threshold}"
            )
        if not self.attacks:
            raise InvalidParameterError("the attack bank must be non-empty")
        names = [spec.name for spec in self.attacks]
        if len(set(names)) != len(names):
            raise InvalidParameterError(
                f"attack bank names must be unique, got {names}"
            )

    def resolved_filters(self) -> Tuple[str, ...]:
        """The roster: explicit filters, or every registered one."""
        roster = self.filters or tuple(available_filters())
        for name in roster:
            if name not in available_filters():
                # Raise the registry's structured error (with suggestions).
                make_filter(name, f=self.f)
        return tuple(roster)

    def seeds(self) -> List[int]:
        return derive_run_seeds(self.master_seed, self.num_seeds)

    def instance_fields(self) -> Dict:
        """The problem-instance part of every match's cache key."""
        return {
            "n": self.n,
            "d": self.d,
            "f": self.f,
            "noise_std": self.noise_std,
            "instance_seed": self.instance_seed,
            "iterations": self.iterations,
            "x0": list(self.x0) if self.x0 is not None else None,
        }


# ----------------------------------------------------------------------
# Match execution (SweepEngine worker)
# ----------------------------------------------------------------------


def _match_cache_payload(instance_fields: Dict, filter_name: str,
                         attack: str, params: Dict, seed: int) -> Dict:
    """The configuration a match's cache key is derived from.

    Namespaced ``"tournament-match"`` so tournament cells can share a
    cache directory with regression-grid cells without collision. The
    key covers the *resolved* attack parameters (an escalated adaptive
    attack is a different match) but neither the tournament round index
    nor the scoring thresholds — an unchanged pairing re-runs as a cache
    hit, and re-scoring is free.
    """
    return {
        "kind": "tournament-match",
        "version": 1,
        **instance_fields,
        "filter": filter_name,
        "attack": attack,
        "params": {str(k): v for k, v in params.items()},
        "seed": seed,
    }


def _valid_match_payload(payload) -> bool:
    """Shape guard for cached match entries (beyond the checksum)."""
    if not isinstance(payload, dict):
        return False
    if "error" in payload:
        return isinstance(payload["error"], str)
    return (
        isinstance(payload.get("final_error"), (int, float))
        and isinstance(payload.get("distances"), list)
        and isinstance(payload.get("elimination"), dict)
    )


def _load_match_entry(path: str) -> Optional[Dict]:
    """Read one match cache entry; ``None`` means corrupt/foreign (recompute).

    The tournament analogue of the sweep layer's cell loader, with the
    *match* shape check: a checksummed document of the wrong shape (e.g.
    a regression cell that somehow landed under a colliding key) is as
    unusable as a truncated one. Never raises; the damaged file is
    removed so the rewrite is clean.
    """
    from repro.exceptions import CacheIntegrityError
    from repro.utils.atomicio import read_json_checked

    try:
        payload = read_json_checked(path)
    except CacheIntegrityError:
        payload = None
    if payload is not None and not _valid_match_payload(payload):
        payload = None
    if payload is None:
        try:
            os.remove(path)
        except OSError:
            pass
        return None
    return payload


def _run_match_group(task: Dict) -> List[Dict]:
    """Execute one (filter, attack-configuration) match across its seeds.

    Module-level (hence picklable) pool worker, mirroring the regression
    grid's :func:`~repro.experiments.sweep._run_regression_group`:
    consult the cache first (discarding corrupt entries), compute missing
    seeds sequentially with per-run telemetry, and write fresh entries
    back atomically with checksums. Returns one JSON-safe payload per
    seed in order, each carrying ``cache_state``.
    """
    from repro.attacks.best_response import PhiMinimizingAttack
    from repro.observability import Telemetry
    from repro.problems.linear_regression import make_redundant_regression
    from repro.system.runner import DGDConfig, run_dgd

    instance_fields = task["instance_fields"]
    filter_name = task["filter"]
    attack_name = task["attack"]
    params = task["params"]
    seeds, cache_dir = task["seeds"], task["cache_dir"]
    f = instance_fields["f"]

    payloads: List[Optional[Dict]] = [None] * len(seeds)
    cache_states: List[str] = ["miss"] * len(seeds)
    missing: List[int] = []
    for index, seed in enumerate(seeds):
        if cache_dir is not None:
            key = _config_hash(
                _match_cache_payload(instance_fields, filter_name,
                                     attack_name, params, seed)
            )
            path = os.path.join(cache_dir, f"{key}.json")
            if os.path.exists(path):
                payload = _load_match_entry(path)
                if payload is not None:
                    payload["cached"] = True
                    payload["cache_state"] = "hit"
                    payloads[index] = payload
                    continue
                cache_states[index] = "corrupt"
        missing.append(index)

    if missing:
        instance = make_redundant_regression(
            n=instance_fields["n"],
            d=instance_fields["d"],
            f=f,
            noise_std=instance_fields["noise_std"],
            seed=instance_fields["instance_seed"],
        )
        faulty_ids = tuple(range(f))
        honest = [i for i in range(instance_fields["n"]) if i not in faulty_ids]
        x_H = instance.honest_minimizer(honest)
        config = DGDConfig(
            iterations=instance_fields["iterations"],
            gradient_filter=filter_name,
            faulty_ids=faulty_ids,
            f=f,
            x0=instance_fields["x0"],
            seed=0,
        )
        fresh: List[Dict] = []
        try:
            if attack_name == BEST_RESPONSE_ATTACK:
                behavior = PhiMinimizingAttack(
                    make_filter(filter_name, f=f), x_H, **params
                )
            else:
                behavior = make_attack(attack_name, **params)
            for index in missing:
                telemetry = Telemetry(
                    None, byzantine_ids=faulty_ids, reference_point=x_H
                )
                trace = run_dgd(
                    instance.costs, behavior, config, seed=seeds[index],
                    telemetry=telemetry,
                )
                telemetry.close()
                elimination = telemetry.summary().get("elimination", {})
                distances = trace.distances_to(x_H)
                fresh.append(
                    {
                        "final_error": float(distances[-1]),
                        "distances": [float(v) for v in distances],
                        "elimination": {
                            "precision": elimination.get("precision"),
                            "recall": elimination.get("recall"),
                        },
                        "cached": False,
                    }
                )
        except (InvalidParameterError, ReproError) as exc:
            # Infeasible pairing (e.g. a filter's n-vs-f bound): the
            # failure is a property of the configuration, so every seed
            # of the group fails identically.
            fresh = [
                {"error": f"{type(exc).__name__}: {exc}", "cached": False}
                for _ in missing
            ]
        for index, payload in zip(missing, fresh):
            payload["cache_state"] = cache_states[index]
            payloads[index] = payload
            if cache_dir is not None and "error" not in payload:
                key = _config_hash(
                    _match_cache_payload(instance_fields, filter_name,
                                         attack_name, params, seeds[index])
                )
                stored = dict(payload)
                stored.pop("cached", None)
                stored.pop("cache_state", None)
                write_json_atomic(os.path.join(cache_dir, f"{key}.json"), stored)

    return payloads  # type: ignore[return-value]


def _quarantined_match_group(exc: BaseException, task: Dict) -> List[Dict]:
    """Per-seed error payloads for a match group the engine gave up on."""
    message = f"quarantined: {type(exc).__name__}: {exc}"
    return [
        {"error": message, "quarantined": True, "cached": False,
         "cache_state": "miss"}
        for _ in task["seeds"]
    ]


# ----------------------------------------------------------------------
# Scoring and Elo
# ----------------------------------------------------------------------


def score_match(final_error: float, win_threshold: float,
                loss_threshold: float) -> str:
    """Score one match from the filter's perspective: win / loss / draw.

    ``final_error`` is the final distance to the honest minimizer. At or
    below ``win_threshold`` the filter converged despite the attack
    (**win**); at or above ``loss_threshold`` the attack broke it
    (**loss**); between the two, neither side prevailed (**draw**).
    Non-finite errors are losses — a diverged run is a broken filter.
    """
    if not (0 < win_threshold < loss_threshold):
        raise InvalidParameterError(
            "thresholds must satisfy 0 < win_threshold < loss_threshold, "
            f"got win={win_threshold}, loss={loss_threshold}"
        )
    if not math.isfinite(final_error) or final_error >= loss_threshold:
        return "loss"
    if final_error <= win_threshold:
        return "win"
    return "draw"


_OUTCOME_SCORE = {"win": 1.0, "draw": 0.5, "loss": 0.0}


class EloTable:
    """Elo ratings with *batched*, exactly order-invariant updates.

    :meth:`apply_batch` computes every expected score from the rating
    snapshot at batch start and accumulates each player's rating deltas
    with :func:`math.fsum` over the *sorted* delta list. ``fsum`` is
    exact (one correctly-rounded result for the true sum) and sorting
    removes any residual tie-breaking ambiguity, so the ratings after a
    batch are a pure function of the *set* of matches in it — ingesting
    a round-robin batch in any order yields bit-identical ratings. The
    hypothesis suite pins this invariance.
    """

    def __init__(self, players: Iterable[str], initial: float = 1000.0):
        self._ratings: Dict[str, float] = {
            str(p): float(initial) for p in players
        }
        if not self._ratings:
            raise InvalidParameterError("an EloTable needs at least one player")

    def rating(self, player: str) -> float:
        try:
            return self._ratings[player]
        except KeyError:
            raise InvalidParameterError(
                f"unknown player {player!r}; known: "
                f"{', '.join(sorted(self._ratings))}"
            ) from None

    def ratings(self) -> Dict[str, float]:
        """Player → current rating (sorted by player name, as a copy)."""
        return {name: self._ratings[name] for name in sorted(self._ratings)}

    def expected(self, player: str, opponent: str) -> float:
        """Logistic expected score of ``player`` against ``opponent``."""
        gap = self.rating(opponent) - self.rating(player)
        return 1.0 / (1.0 + 10.0 ** (gap / 400.0))

    def apply_batch(self, matches: Sequence[Tuple[str, str, float]],
                    k: float = 32.0) -> Dict[str, float]:
        """Apply one round-robin batch ``(player, opponent, score)``.

        ``score`` is from ``player``'s perspective (1 win, 0.5 draw,
        0 loss); the opponent is credited with ``1 - score``. Expected
        scores come from the snapshot at entry, so the batch is a set,
        not a sequence. Returns the per-player applied deltas.
        """
        if k <= 0:
            raise InvalidParameterError(f"k must be positive, got {k}")
        deltas: Dict[str, List[float]] = {name: [] for name in self._ratings}
        for player, opponent, score in matches:
            score = float(score)
            if not 0.0 <= score <= 1.0:
                raise InvalidParameterError(
                    f"match score must be in [0, 1], got {score}"
                )
            expected = self.expected(player, opponent)
            deltas[str(player)].append(k * (score - expected))
            deltas[str(opponent)].append(k * ((1.0 - score) - (1.0 - expected)))
        applied: Dict[str, float] = {}
        for name, values in deltas.items():
            if not values:
                continue
            delta = math.fsum(sorted(values))
            self._ratings[name] += delta
            applied[name] = delta
        return applied


def _exact_mean(values: Sequence[float]) -> float:
    """Permutation-invariant mean (fsum over the sorted values)."""
    return math.fsum(sorted(float(v) for v in values)) / len(values)


def _exact_std(values: Sequence[float], mean: float) -> float:
    """Permutation-invariant population standard deviation."""
    squared = sorted((float(v) - mean) ** 2 for v in values)
    return math.sqrt(max(0.0, math.fsum(squared) / len(values)))


def leaderboard_from_ratings(
    per_seed_ratings: Dict[int, Dict[str, float]],
) -> List[Dict]:
    """Per-seed rating tables → ranked rows with confidence intervals.

    Each row carries the player's mean rating over seeds, the population
    std, and a normal-approximation 95% confidence half-width
    (``1.96 · std / sqrt(num_seeds)``). All statistics are computed with
    sorted :func:`math.fsum` reductions, so the leaderboard is exactly
    invariant under any permutation of the seed set. Rows are ranked by
    descending mean rating with the player name as a deterministic
    tie-break.
    """
    if not per_seed_ratings:
        raise InvalidParameterError("need at least one seed's ratings")
    seeds = sorted(per_seed_ratings)
    players = sorted(per_seed_ratings[seeds[0]])
    for seed in seeds:
        if sorted(per_seed_ratings[seed]) != players:
            raise InvalidParameterError(
                "every seed must rate the same player set"
            )
    rows = []
    for player in players:
        values = [per_seed_ratings[seed][player] for seed in seeds]
        mean = _exact_mean(values)
        std = _exact_std(values, mean)
        rows.append(
            {
                "player": player,
                "rating_mean": mean,
                "rating_std": std,
                "ci95": 1.96 * std / math.sqrt(len(values)),
                "per_seed": {str(seed): per_seed_ratings[seed][player]
                             for seed in seeds},
            }
        )
    rows.sort(key=lambda row: (-row["rating_mean"], row["player"]))
    for rank, row in enumerate(rows, start=1):
        row["rank"] = rank
    return rows


def _ratings_result(ratings: Dict[str, float], roles: Dict[str, str],
                    seed: int) -> ExperimentResult:
    """One seed's ratings as an ExperimentResult (fixed row order)."""
    result = ExperimentResult(
        experiment_id="TOURNAMENT",
        title="Adversary tournament Elo ratings",
        headers=["player", "role", "elo"],
    )
    for player in sorted(ratings):
        result.rows.append([player, roles[player], float(ratings[player])])
    result.notes.append(f"seed: {seed}")
    return result


# ----------------------------------------------------------------------
# Tournament driver
# ----------------------------------------------------------------------


def run_tournament(
    config: TournamentConfig,
    engine: Optional[SweepEngine] = None,
) -> Dict:
    """Run the full tournament; return the schema-versioned payload.

    Per tournament round, the *entire* cross-product (roster × bank, at
    each pairing's current tuning) is scheduled through ``engine.map``
    — :func:`_run_match_group` consults the match cache per seed, so
    only pairings whose configuration actually changed (re-tuned
    adaptive attacks, or cache misses from a killed run) cost compute.
    After each round, per-seed Elo tables ingest the round's matches as
    one batch per seed, and every adaptive pairing whose defending
    filter won more seeds than it lost escalates one palette step for
    the next round (the best-response iteration).

    The returned payload validates against :data:`TOURNAMENT_SCHEMA`;
    persist it with :func:`write_tournament_artifact`. Everything
    outside its ``"provenance"``/``"execution"`` keys is a deterministic
    function of ``config``.
    """
    from repro.observability.perf.bench_harness import collect_provenance

    if engine is None:
        engine = SweepEngine(parallel=False)
    roster = config.resolved_filters()
    specs = config.attacks
    for spec in specs:
        if spec.attack != BEST_RESPONSE_ATTACK and \
                spec.attack not in available_attacks():
            make_attack(spec.attack)  # raises the structured registry error
    seeds = config.seeds()
    instance_fields = config.instance_fields()
    players = list(roster) + [spec.name for spec in specs]
    if len(set(players)) != len(players):
        raise InvalidParameterError(
            "filter and attack-bank names must not collide: "
            f"{sorted(set(roster) & {s.name for s in specs})}"
        )
    roles = {name: "filter" for name in roster}
    roles.update({spec.name: "attack" for spec in specs})

    elo_tables = {
        seed: EloTable(players, initial=config.elo_initial) for seed in seeds
    }
    # Per (filter, attack-bank-name) palette escalation level.
    levels: Dict[Tuple[str, str], int] = {
        (filter_name, spec.name): 0
        for filter_name in roster for spec in specs
    }
    record = {
        player: {"wins": 0, "losses": 0, "draws": 0, "errors": 0}
        for player in players
    }
    rounds_payload: List[Dict] = []
    cache_hits = cache_misses = failed_matches = 0

    for round_index in range(config.rounds):
        pairings = [
            (filter_name, spec) for filter_name in roster for spec in specs
        ]
        tasks = [
            {
                "instance_fields": instance_fields,
                "filter": filter_name,
                "attack": spec.attack,
                "params": spec.params_at(levels[(filter_name, spec.name)]),
                "seeds": seeds,
                "cache_dir": engine.cache_dir,
            }
            for filter_name, spec in pairings
        ]
        grouped = engine.map(
            _run_match_group, tasks, on_item_error=_quarantined_match_group
        )
        matches: List[Dict] = []
        round_outcomes: Dict[Tuple[str, str], Dict[str, int]] = {
            (filter_name, spec.name): {"win": 0, "loss": 0, "draw": 0}
            for filter_name, spec in pairings
        }
        per_seed_batches: Dict[int, List[Tuple[str, str, float]]] = {
            seed: [] for seed in seeds
        }
        for (filter_name, spec), task, payloads in zip(pairings, tasks, grouped):
            for seed, payload in zip(seeds, payloads):
                state = payload.get("cache_state")
                if engine.cache_dir is not None and state is not None:
                    engine.events.emit(
                        f"cache_{state}", kind="tournament-match",
                        filter=filter_name, attack=spec.name,
                        round=round_index, seed=seed,
                    )
                    if state == "hit":
                        cache_hits += 1
                    else:
                        cache_misses += 1
                match = {
                    "round": round_index,
                    "filter": filter_name,
                    "attack": spec.name,
                    "attack_impl": spec.attack,
                    "params": {str(k): v for k, v in task["params"].items()},
                    "seed": seed,
                }
                if "error" in payload:
                    match["error"] = payload["error"]
                    match["outcome"] = "error"
                    failed_matches += 1
                    record[filter_name]["errors"] += 1
                    record[spec.name]["errors"] += 1
                    engine.events.emit(
                        "match_failed", filter=filter_name, attack=spec.name,
                        round=round_index, seed=seed, error=payload["error"],
                    )
                else:
                    final_error = float(payload["final_error"])
                    outcome = score_match(
                        final_error, config.win_threshold, config.loss_threshold
                    )
                    distances = np.asarray(payload["distances"], dtype=float)
                    settled = convergence_iteration(
                        distances, config.win_threshold
                    )
                    elimination = payload.get("elimination", {})
                    match.update(
                        final_error=final_error,
                        convergence_iteration=settled,
                        elimination_precision=elimination.get("precision"),
                        elimination_recall=elimination.get("recall"),
                        outcome=outcome,
                    )
                    round_outcomes[(filter_name, spec.name)][outcome] += 1
                    per_seed_batches[seed].append(
                        (filter_name, spec.name, _OUTCOME_SCORE[outcome])
                    )
                    if outcome == "win":
                        record[filter_name]["wins"] += 1
                        record[spec.name]["losses"] += 1
                    elif outcome == "loss":
                        record[filter_name]["losses"] += 1
                        record[spec.name]["wins"] += 1
                    else:
                        record[filter_name]["draws"] += 1
                        record[spec.name]["draws"] += 1
                matches.append(match)
        for seed in seeds:
            if per_seed_batches[seed]:
                elo_tables[seed].apply_batch(
                    per_seed_batches[seed], k=config.elo_k
                )
        # Best-response iteration: escalate adaptive pairings the
        # defending filter just beat.
        retuned = []
        for filter_name, spec in pairings:
            if spec.kind != "adaptive":
                continue
            outcome = round_outcomes[(filter_name, spec.name)]
            key = (filter_name, spec.name)
            if outcome["win"] > outcome["loss"] and \
                    levels[key] < spec.max_level():
                levels[key] += 1
                retuned.append(
                    {"filter": filter_name, "attack": spec.name,
                     "level": levels[key],
                     "params": spec.params_at(levels[key])}
                )
        if retuned:
            engine.events.emit(
                "tournament_retune", round=round_index, count=len(retuned)
            )
        rounds_payload.append(
            {"round": round_index, "matches": matches, "retuned": retuned}
        )

    per_seed_ratings = {
        seed: elo_tables[seed].ratings() for seed in seeds
    }
    leaderboard = leaderboard_from_ratings(per_seed_ratings)
    for row in leaderboard:
        row["role"] = roles[row["player"]]
        row.update(record[row["player"]])
    # Render the mean ± std table through the multiseed machinery — same
    # aggregation path as every other multi-seed experiment table.
    table = summarize_over_seeds(
        lambda seed: _ratings_result(per_seed_ratings[seed], roles, seed),
        seeds,
        precision=1,
    )
    payload = {
        "schema": TOURNAMENT_SCHEMA,
        "name": config.name,
        "config": _config_payload(config, roster),
        "seeds": [int(seed) for seed in seeds],
        "rounds": rounds_payload,
        "leaderboard": {
            "all": leaderboard,
            "filters": [r for r in leaderboard if r["role"] == "filter"],
            "attacks": [r for r in leaderboard if r["role"] == "attack"],
        },
        "table": {"headers": list(table.headers), "rows": table.rows},
        "counts": {
            "rounds": config.rounds,
            "filters": len(roster),
            "attacks": len(specs),
            "seeds": len(seeds),
            "matches": sum(len(r["matches"]) for r in rounds_payload),
            "failed": failed_matches,
        },
        "execution": {
            "cache_hits": cache_hits,
            "cache_misses": cache_misses,
            "cache_dir": engine.cache_dir,
            "parallel": engine.parallel,
        },
        "provenance": collect_provenance(),
    }
    validate_tournament_payload(payload)
    return payload


def _config_payload(config: TournamentConfig, roster: Tuple[str, ...]) -> Dict:
    return {
        "name": config.name,
        "filters": list(roster),
        "attacks": [
            {
                "name": spec.name,
                "attack": spec.attack,
                "kind": spec.kind,
                "params": dict(spec.params),
                "palette": [dict(p) for p in spec.palette],
            }
            for spec in config.attacks
        ],
        "rounds": config.rounds,
        "num_seeds": config.num_seeds,
        "master_seed": config.master_seed,
        **config.instance_fields(),
        "win_threshold": config.win_threshold,
        "loss_threshold": config.loss_threshold,
        "elo_k": config.elo_k,
        "elo_initial": config.elo_initial,
    }


# ----------------------------------------------------------------------
# Artifact IO
# ----------------------------------------------------------------------

_REQUIRED_TOP_LEVEL = (
    "schema", "name", "config", "seeds", "rounds", "leaderboard",
    "counts",
)
_REQUIRED_MATCH_FIELDS = ("round", "filter", "attack", "seed", "outcome")
_REQUIRED_ROW_FIELDS = (
    "player", "role", "rank", "rating_mean", "rating_std", "ci95",
)


def validate_tournament_payload(payload) -> Dict:
    """Validate a tournament document; return it, or raise.

    Raises :class:`~repro.exceptions.TournamentSchemaError` on a missing
    field, an unknown schema tag, or an internal inconsistency (a match
    outcome outside the vocabulary, a leaderboard that is not ranked by
    descending mean rating, a match count that disagrees with the rounds
    section).
    """
    if not isinstance(payload, dict):
        raise TournamentSchemaError(
            f"tournament payload must be a dict, got {type(payload).__name__}"
        )
    missing = [key for key in _REQUIRED_TOP_LEVEL if key not in payload]
    if missing:
        raise TournamentSchemaError(
            f"tournament payload missing fields: {', '.join(missing)}"
        )
    if payload["schema"] != TOURNAMENT_SCHEMA:
        raise TournamentSchemaError(
            f"unknown tournament schema {payload['schema']!r}; "
            f"expected {TOURNAMENT_SCHEMA!r}"
        )
    rounds = payload["rounds"]
    if not isinstance(rounds, list) or not rounds:
        raise TournamentSchemaError("'rounds' must be a non-empty list")
    total_matches = 0
    for round_doc in rounds:
        matches = round_doc.get("matches")
        if not isinstance(matches, list):
            raise TournamentSchemaError("every round needs a 'matches' list")
        total_matches += len(matches)
        for match in matches:
            for field_name in _REQUIRED_MATCH_FIELDS:
                if field_name not in match:
                    raise TournamentSchemaError(
                        f"match missing field {field_name!r}"
                    )
            if match["outcome"] not in ("win", "loss", "draw", "error"):
                raise TournamentSchemaError(
                    f"unknown match outcome {match['outcome']!r}"
                )
            if match["outcome"] != "error" and "final_error" not in match:
                raise TournamentSchemaError(
                    "scored matches must carry 'final_error'"
                )
    counts = payload["counts"]
    if counts.get("matches") != total_matches:
        raise TournamentSchemaError(
            f"counts.matches={counts.get('matches')} disagrees with the "
            f"rounds section ({total_matches} matches)"
        )
    leaderboard = payload["leaderboard"]
    if not isinstance(leaderboard, dict) or "all" not in leaderboard:
        raise TournamentSchemaError("'leaderboard' must carry an 'all' ranking")
    previous = None
    for row in leaderboard["all"]:
        for field_name in _REQUIRED_ROW_FIELDS:
            if field_name not in row:
                raise TournamentSchemaError(
                    f"leaderboard row missing field {field_name!r}"
                )
        if previous is not None and row["rating_mean"] > previous + 1e-12:
            raise TournamentSchemaError(
                "leaderboard is not sorted by descending mean rating"
            )
        previous = row["rating_mean"]
    return payload


def artifact_filename(name: str) -> str:
    """Canonical artifact filename for a tournament name."""
    safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in str(name))
    return f"TOURNAMENT_{safe}.json"


def write_tournament_artifact(payload: Dict, out_dir: str) -> str:
    """Validate and persist a tournament document; return its path."""
    validate_tournament_payload(payload)
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, artifact_filename(payload["name"]))
    return write_json_atomic(path, payload)


def load_tournament_artifact(path: str) -> Dict:
    """Read a checksummed tournament artifact; validate before returning.

    Raises :class:`~repro.exceptions.CacheIntegrityError` on a corrupt
    file and :class:`~repro.exceptions.TournamentSchemaError` on a
    document that parses but violates the schema.
    """
    return validate_tournament_payload(read_json_dict_checked(path))
