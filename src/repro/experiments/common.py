"""Shared plumbing for the experiment modules."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attacks.registry import make_attack
from repro.exceptions import InvalidParameterError
from repro.problems.linear_regression import RegressionInstance, paper_instance
from repro.system.batch import run_dgd_batch
from repro.system.runner import Trace, run_dgd
from repro.utils.rng import SeedLike

#: The initial estimate the paper's executions all share.
PAPER_X0 = (-0.0085, -0.5643)

#: The attack names exercised by the regression experiments.
REGRESSION_ATTACKS = ("gradient-reverse", "random", "sign-flip", "zero")

#: Execution backends understood by the experiment entry points.
BACKENDS = ("sequential", "batch")


def check_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown backend {backend!r}; available: {', '.join(BACKENDS)}"
        )
    return backend


def paper_setup(noise_std: float = 0.02, seed: SeedLike = 20200803) -> RegressionInstance:
    """The shared n=6, f=1, d=2 regression instance of E1-E3/E10."""
    return paper_instance(noise_std=noise_std, seed=seed)


def run_attacked(
    instance: RegressionInstance,
    filter_name: str,
    attack_name: str,
    faulty_ids: Sequence[int] = (0,),
    iterations: int = 500,
    seed: SeedLike = 1,
    attack_kwargs: Optional[Dict] = None,
    x0=PAPER_X0,
    backend: str = "sequential",
) -> Trace:
    """One attacked execution on a regression instance.

    ``backend="batch"`` routes through the vectorized engine
    (:func:`repro.system.batch.run_dgd_batch`), which is bit-identical to
    the sequential runner; use :func:`run_attacked_multiseed` to amortize
    its per-call overhead over many seeds.
    """
    check_backend(backend)
    behavior = make_attack(attack_name, **(attack_kwargs or {}))
    runner = run_dgd if backend == "sequential" else _run_single_batched
    return runner(
        instance.costs,
        behavior,
        gradient_filter=filter_name,
        faulty_ids=tuple(faulty_ids),
        iterations=iterations,
        seed=seed,
        x0=np.asarray(x0, dtype=float),
    )


def run_attacked_multiseed(
    instance: RegressionInstance,
    filter_name: str,
    attack_name: str,
    seeds: Sequence[SeedLike],
    faulty_ids: Sequence[int] = (0,),
    iterations: int = 500,
    attack_kwargs: Optional[Dict] = None,
    x0=PAPER_X0,
    backend: str = "batch",
) -> List[Trace]:
    """Replicate one attacked configuration across many seeds.

    With the default ``backend="batch"`` all runs execute as one stacked
    tensor computation; ``backend="sequential"`` loops :func:`run_dgd`
    (same numbers, for verification and benchmarking).
    """
    check_backend(backend)
    behavior = make_attack(attack_name, **(attack_kwargs or {}))
    if backend == "sequential":
        return [
            run_dgd(
                instance.costs,
                behavior,
                gradient_filter=filter_name,
                faulty_ids=tuple(faulty_ids),
                iterations=iterations,
                seed=seed,
                x0=np.asarray(x0, dtype=float),
            )
            for seed in seeds
        ]
    return run_dgd_batch(
        instance.costs,
        behavior,
        seeds=list(seeds),
        gradient_filter=filter_name,
        faulty_ids=tuple(faulty_ids),
        iterations=iterations,
        x0=np.asarray(x0, dtype=float),
    )


def run_fault_free(
    instance: RegressionInstance,
    honest_ids: Sequence[int],
    iterations: int = 500,
    seed: SeedLike = 1,
    x0=PAPER_X0,
    backend: str = "sequential",
) -> Trace:
    """The fault-free DGD baseline: faulty agents removed, plain summation."""
    check_backend(backend)
    honest_costs = [instance.costs[i] for i in honest_ids]
    runner = run_dgd if backend == "sequential" else _run_single_batched
    return runner(
        honest_costs,
        None,
        gradient_filter="sum",
        faulty_ids=(),
        iterations=iterations,
        seed=seed,
        x0=np.asarray(x0, dtype=float),
    )


def _run_single_batched(costs, behavior, seed=0, **config_overrides) -> Trace:
    """Run one execution through the batch engine (a batch of size one)."""
    return run_dgd_batch(costs, behavior, seeds=[seed], **config_overrides)[0]
