"""Shared plumbing for the experiment modules."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.attacks.registry import make_attack
from repro.problems.linear_regression import RegressionInstance, paper_instance
from repro.system.runner import Trace, run_dgd
from repro.utils.rng import SeedLike

#: The initial estimate the paper's executions all share.
PAPER_X0 = (-0.0085, -0.5643)

#: The attack names exercised by the regression experiments.
REGRESSION_ATTACKS = ("gradient-reverse", "random", "sign-flip", "zero")


def paper_setup(noise_std: float = 0.02, seed: SeedLike = 20200803) -> RegressionInstance:
    """The shared n=6, f=1, d=2 regression instance of E1-E3/E10."""
    return paper_instance(noise_std=noise_std, seed=seed)


def run_attacked(
    instance: RegressionInstance,
    filter_name: str,
    attack_name: str,
    faulty_ids: Sequence[int] = (0,),
    iterations: int = 500,
    seed: SeedLike = 1,
    attack_kwargs: Optional[Dict] = None,
    x0=PAPER_X0,
) -> Trace:
    """One attacked execution on a regression instance."""
    behavior = make_attack(attack_name, **(attack_kwargs or {}))
    return run_dgd(
        instance.costs,
        behavior,
        gradient_filter=filter_name,
        faulty_ids=tuple(faulty_ids),
        iterations=iterations,
        seed=seed,
        x0=np.asarray(x0, dtype=float),
    )


def run_fault_free(
    instance: RegressionInstance,
    honest_ids: Sequence[int],
    iterations: int = 500,
    seed: SeedLike = 1,
    x0=PAPER_X0,
) -> Trace:
    """The fault-free DGD baseline: faulty agents removed, plain summation."""
    honest_costs = [instance.costs[i] for i in honest_ids]
    return run_dgd(
        honest_costs,
        None,
        gradient_filter="sum",
        faulty_ids=(),
        iterations=iterations,
        seed=seed,
        x0=np.asarray(x0, dtype=float),
    )
