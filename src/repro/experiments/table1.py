"""E1 — Table 1: final estimation error per filter and attack.

Reconstruction of the paper's headline table: on the ``n = 6, f = 1,
d = 2`` regression instance (2f-redundant by design, small observation
noise), run the filtered DGD for 500 iterations under each Byzantine fault
model and report the output ``x_out = x^{500}`` and the approximation error
``dist(x_H, x_out)``. Plain averaging and the fault-free execution bracket
the robust filters.

Expected shape (recorded in EXPERIMENTS.md): CGE's and CWTM's errors are
small — below the instance's redundancy margin ``ε`` — while plain
averaging's error is an order of magnitude larger under adversarial faults.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.metrics import final_error
from repro.analysis.reporting import ExperimentResult
from repro.core.redundancy import measure_redundancy_margin
from repro.experiments.common import (
    PAPER_X0,
    paper_setup,
    run_attacked,
    run_fault_free,
)
from repro.utils.rng import SeedLike


def run_table1(
    iterations: int = 500,
    noise_std: float = 0.02,
    filters: Sequence[str] = ("cge", "cwtm", "average"),
    attacks: Sequence[str] = ("gradient-reverse", "random"),
    seed: SeedLike = 20200803,
) -> ExperimentResult:
    """Regenerate Table 1 (final errors under attack).

    Returns an :class:`ExperimentResult` whose rows are
    ``(filter, attack, x_out, dist(x_H, x_out))`` plus a fault-free
    reference row, and whose notes record the instance's measured
    redundancy margin ``ε``.
    """
    instance = paper_setup(noise_std=noise_std, seed=seed)
    faulty = (0,)
    honest = [i for i in range(instance.n) if i not in faulty]
    x_H = instance.honest_minimizer(honest)
    margin = measure_redundancy_margin(instance.costs, len(faulty)).margin

    result = ExperimentResult(
        experiment_id="E1",
        title="Final error of filtered DGD under Byzantine attacks "
        f"(n={instance.n}, f={len(faulty)}, d={instance.dimension})",
        headers=["filter", "attack", "x_out", "dist(x_H, x_out)", "within eps"],
    )
    for filter_name in filters:
        for attack_name in attacks:
            trace = run_attacked(
                instance,
                filter_name,
                attack_name,
                faulty_ids=faulty,
                iterations=iterations,
                seed=seed,
            )
            error = final_error(trace, x_H)
            result.rows.append(
                [
                    filter_name,
                    attack_name,
                    np.round(trace.final_estimate, 4),
                    error,
                    "yes" if error <= max(margin, 1e-6) else "no",
                ]
            )
    fault_free = run_fault_free(instance, honest, iterations=iterations, seed=seed)
    result.rows.append(
        [
            "fault-free",
            "(none)",
            np.round(fault_free.final_estimate, 4),
            float(np.linalg.norm(fault_free.final_estimate - x_H)),
            "yes",
        ]
    )
    result.notes.append(f"x_H = {np.round(x_H, 4)}, x0 = {PAPER_X0}")
    result.notes.append(f"measured (2f, eps)-redundancy margin eps = {margin:.4f}")
    result.notes.append(
        "expected shape: robust filters (cge, cwtm) stay within eps of x_H; "
        "plain averaging does not under adversarial faults"
    )
    return result
