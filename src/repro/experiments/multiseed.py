"""Multi-seed aggregation of experiments.

Every experiment in this repository is deterministic given its seed; this
module runs an experiment across several seeds and aggregates the numeric
cells into ``mean ± std`` entries, turning single-draw tables into
statistically honest ones. Non-numeric cells (labels, verdicts) must agree
across seeds — a disagreement means the quantity is seed-sensitive and is
reported as such rather than silently averaged.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from repro.analysis.reporting import ExperimentResult
from repro.exceptions import InvalidParameterError


def summarize_over_seeds(
    make_result: Callable[[int], ExperimentResult],
    seeds: Sequence[int],
    precision: int = 4,
    parallel: bool = False,
    max_workers=None,
) -> ExperimentResult:
    """Run ``make_result(seed)`` per seed and aggregate numeric cells.

    Parameters
    ----------
    make_result:
        Maps a seed to an :class:`ExperimentResult`. All runs must produce
        the same shape (headers, row count, series names/lengths).
    seeds:
        At least two seeds.
    precision:
        Decimal places in the ``mean ± std`` rendering.
    parallel:
        Fan the seeds over a process pool. ``make_result`` must then be
        picklable (a module-level function or ``functools.partial`` of
        one); non-picklable callables fall back to sequential execution
        with a warning.
    max_workers:
        Pool size when ``parallel`` is set.

    Returns
    -------
    ExperimentResult
        Same id/title (annotated), with numeric cells replaced by
        ``"mean ± std"`` strings, numeric series replaced by their
        seed-wise mean, and a ``<name>/std`` companion series added.
    """
    from repro.experiments.sweep import parallel_map

    seeds = [int(s) for s in seeds]
    if len(seeds) < 2:
        raise InvalidParameterError("multi-seed aggregation needs at least two seeds")
    results: List[ExperimentResult] = parallel_map(
        make_result, seeds, parallel=parallel, max_workers=max_workers
    )
    first = results[0]
    for other in results[1:]:
        if other.headers != first.headers or len(other.rows) != len(first.rows):
            raise InvalidParameterError(
                "experiment shape differs across seeds; cannot aggregate"
            )
        if set(other.series) != set(first.series):
            raise InvalidParameterError("series names differ across seeds")

    aggregated = ExperimentResult(
        experiment_id=first.experiment_id,
        title=f"{first.title} [mean ± std over {len(seeds)} seeds]",
        headers=list(first.headers),
        notes=[f"seeds: {seeds}"],
    )
    for row_index in range(len(first.rows)):
        row = []
        for col_index in range(len(first.headers)):
            cells = [r.rows[row_index][col_index] for r in results]
            if all(isinstance(c, (int, float, np.floating, np.integer))
                   and not isinstance(c, bool) for c in cells):
                values = np.asarray(cells, dtype=float)
                row.append(f"{values.mean():.{precision}f} ± {values.std():.{precision}f}")
            elif all(_cell_equal(c, cells[0]) for c in cells):
                row.append(cells[0])
            else:
                row.append("(seed-sensitive)")
        aggregated.rows.append(row)
    for name in first.series:
        stacked = np.stack([np.asarray(r.series[name], dtype=float) for r in results])
        aggregated.series[name] = stacked.mean(axis=0)
        aggregated.series[f"{name}/std"] = stacked.std(axis=0)
    return aggregated


def _cell_equal(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(np.asarray(a), np.asarray(b))
    return a == b
