"""E6 — Figure 5: fault-count sweep and the α > 0 condition.

Fix ``n`` and sweep the number of Byzantine agents ``f``. For each ``f``
(and a matching 2f-redundant instance) run every filter under the
gradient-reverse attack and record the final error, alongside the
theoretical CGE margin ``α(f) = 1 − (f/n)(1 + 2μ/γ)``. The paper's theory
predicts: error stays near zero while ``α > 0`` and filters may break down
beyond; plain averaging breaks down already at ``f = 1``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.metrics import final_error
from repro.analysis.reporting import ExperimentResult
from repro.core.conditions import cge_alpha, regularity_of_quadratics
from repro.experiments.common import run_attacked
from repro.problems.linear_regression import make_redundant_regression
from repro.utils.rng import SeedLike


def run_fault_sweep(
    n: int = 15,
    d: int = 2,
    fault_counts: Sequence[int] = (0, 1, 2, 3, 4),
    filters: Sequence[str] = ("cge", "cwtm", "multikrum", "geomed", "average"),
    attack: str = "gradient-reverse",
    iterations: int = 400,
    noise_std: float = 0.0,
    seed: SeedLike = 11,
    backend: str = "sequential",
) -> ExperimentResult:
    """Regenerate Figure 5 (final error vs number of faults, per filter).

    ``backend="batch"`` executes each run through the vectorized engine
    (bit-identical results, faster for large grids).
    """
    result = ExperimentResult(
        experiment_id="E6",
        title=f"Fault sweep (n={n}, d={d}, attack={attack})",
        headers=["f", "alpha(f)"] + [f"{name} error" for name in filters],
    )
    per_filter_series = {name: [] for name in filters}
    alphas = []
    max_f = max(fault_counts)
    for f in fault_counts:
        # One instance redundant enough for the largest f keeps the workload
        # comparable across the sweep.
        instance = make_redundant_regression(
            n=n, d=d, f=max(max_f, 1), noise_std=noise_std, seed=seed
        )
        faulty_ids = tuple(range(f))
        honest = [i for i in range(n) if i not in faulty_ids]
        x_H = instance.honest_minimizer(honest)
        constants = regularity_of_quadratics(instance.costs, f, honest=honest)
        alpha = cge_alpha(n, f, constants.mu, constants.gamma) if f > 0 else 1.0
        alphas.append(alpha)
        row = [f, alpha]
        for filter_name in filters:
            if f == 0:
                trace = run_attacked(
                    instance, filter_name, "zero", faulty_ids=(),
                    iterations=iterations, seed=seed, backend=backend,
                )
            else:
                trace = run_attacked(
                    instance, filter_name, attack, faulty_ids=faulty_ids,
                    iterations=iterations, seed=seed, backend=backend,
                )
            error = final_error(trace, x_H)
            row.append(error)
            per_filter_series[filter_name].append(error)
        result.rows.append(row)
    for name, series in per_filter_series.items():
        result.series[f"{name} error vs f"] = np.asarray(series)
    result.series["alpha vs f"] = np.asarray(alphas)
    result.notes.append(
        "expected shape: robust filters hold errors near zero while alpha > 0; "
        "plain averaging degrades immediately at f = 1"
    )
    return result
