"""E10 — Table 5: filter × attack robustness matrix.

Every registered gradient filter against every registered attack on the
paper's regression instance: a coverage grid that situates CGE among the
broader robust-aggregation design space (the novelty band notes CGE/CWTM
variants exist in FL libraries; this matrix is the apples-to-apples
comparison).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis.metrics import final_error
from repro.analysis.reporting import ExperimentResult
from repro.attacks.registry import make_attack
from repro.experiments.common import check_backend, paper_setup
from repro.experiments.sweep import parallel_map
from repro.exceptions import InvalidParameterError, ReproError
from repro.system.batch import run_dgd_batch
from repro.system.runner import run_dgd
from repro.utils.rng import SeedLike

_DEFAULT_FILTERS = ("cge", "cwtm", "median", "geomed", "krum", "multikrum", "mom", "gmom", "average")
_DEFAULT_ATTACKS = (
    "gradient-reverse", "random", "sign-flip", "zero", "alie", "ipm", "mimic",
)


def _matrix_cell(task: Dict):
    """Compute one (filter, attack) cell; module-level so a pool can run it.

    Rebuilds the (deterministic, seeded) instance in the worker: cheaper
    than shipping cost objects around, and keeps the task payload
    JSON-simple.
    """
    instance = paper_setup(noise_std=task["noise_std"], seed=task["seed"])
    faulty = tuple(task["faulty"])
    honest = [i for i in range(instance.n) if i not in faulty]
    x_H = instance.honest_minimizer(honest)
    behavior = make_attack(task["attack"], **task["attack_kwargs"])
    try:
        if task["backend"] == "batch":
            trace = run_dgd_batch(
                instance.costs,
                behavior,
                seeds=[task["seed"]],
                gradient_filter=task["filter"],
                faulty_ids=faulty,
                iterations=task["iterations"],
            )[0]
        else:
            trace = run_dgd(
                instance.costs,
                behavior,
                gradient_filter=task["filter"],
                faulty_ids=faulty,
                iterations=task["iterations"],
                seed=task["seed"],
            )
    except (InvalidParameterError, ReproError):
        return "n/a"
    return final_error(trace, x_H)


def run_robustness_matrix(
    filters: Sequence[str] = _DEFAULT_FILTERS,
    attacks: Sequence[str] = _DEFAULT_ATTACKS,
    iterations: int = 400,
    noise_std: float = 0.02,
    attack_kwargs: Optional[Dict[str, Dict]] = None,
    seed: SeedLike = 20200803,
    backend: str = "sequential",
    parallel: bool = False,
    max_workers: Optional[int] = None,
) -> ExperimentResult:
    """Regenerate Table 5 (final error for every filter × attack pair).

    A filter that cannot run in the configuration (e.g. Bulyan's
    ``n >= 4f + 3``) is reported as ``n/a`` rather than silently skipped.
    ``parallel=True`` fans the grid's cells over a process pool and
    ``backend="batch"`` routes each cell through the vectorized engine;
    both produce bit-identical numbers to the sequential defaults.
    """
    check_backend(backend)
    attack_kwargs = attack_kwargs or {}
    tasks = [
        {
            "filter": filter_name,
            "attack": attack_name,
            "attack_kwargs": attack_kwargs.get(attack_name, {}),
            "faulty": [0],
            "iterations": iterations,
            "noise_std": noise_std,
            "seed": seed,
            "backend": backend,
        }
        for filter_name in filters
        for attack_name in attacks
    ]
    cells = parallel_map(_matrix_cell, tasks, parallel=parallel, max_workers=max_workers)

    instance = paper_setup(noise_std=noise_std, seed=seed)
    result = ExperimentResult(
        experiment_id="E10",
        title=f"Robustness matrix (n={instance.n}, f=1)",
        headers=["filter"] + list(attacks),
    )
    cell_iter = iter(cells)
    for filter_name in filters:
        row: list = [filter_name]
        for _attack_name in attacks:
            row.append(next(cell_iter))
        result.rows.append(row)
    result.notes.append(
        "expected shape: robust filters keep errors bounded (graceful "
        "degradation) across attacks, with the paper's fault models "
        "(gradient-reverse, random) well inside the redundancy margin; "
        "norm-camouflaged attacks (zero, sign-flip, mimic) expose CGE's "
        "large guarantee constant; plain averaging is unbounded under "
        "random/ipm"
    )
    return result
