"""E10 — Table 5: filter × attack robustness matrix.

Every registered gradient filter against every registered attack on the
paper's regression instance: a coverage grid that situates CGE among the
broader robust-aggregation design space (the novelty band notes CGE/CWTM
variants exist in FL libraries; this matrix is the apples-to-apples
comparison).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.analysis.metrics import final_error
from repro.analysis.reporting import ExperimentResult
from repro.attacks.registry import make_attack
from repro.experiments.common import paper_setup
from repro.exceptions import InvalidParameterError, ReproError
from repro.system.runner import run_dgd
from repro.utils.rng import SeedLike

_DEFAULT_FILTERS = ("cge", "cwtm", "median", "geomed", "krum", "multikrum", "mom", "gmom", "average")
_DEFAULT_ATTACKS = (
    "gradient-reverse", "random", "sign-flip", "zero", "alie", "ipm", "mimic",
)


def run_robustness_matrix(
    filters: Sequence[str] = _DEFAULT_FILTERS,
    attacks: Sequence[str] = _DEFAULT_ATTACKS,
    iterations: int = 400,
    noise_std: float = 0.02,
    attack_kwargs: Optional[Dict[str, Dict]] = None,
    seed: SeedLike = 20200803,
) -> ExperimentResult:
    """Regenerate Table 5 (final error for every filter × attack pair).

    A filter that cannot run in the configuration (e.g. Bulyan's
    ``n >= 4f + 3``) is reported as ``n/a`` rather than silently skipped.
    """
    instance = paper_setup(noise_std=noise_std, seed=seed)
    faulty = (0,)
    honest = [i for i in range(instance.n) if i not in faulty]
    x_H = instance.honest_minimizer(honest)
    attack_kwargs = attack_kwargs or {}

    result = ExperimentResult(
        experiment_id="E10",
        title=f"Robustness matrix (n={instance.n}, f={len(faulty)})",
        headers=["filter"] + list(attacks),
    )
    for filter_name in filters:
        row: list = [filter_name]
        for attack_name in attacks:
            behavior = make_attack(attack_name, **attack_kwargs.get(attack_name, {}))
            try:
                trace = run_dgd(
                    instance.costs,
                    behavior,
                    gradient_filter=filter_name,
                    faulty_ids=faulty,
                    iterations=iterations,
                    seed=seed,
                )
            except (InvalidParameterError, ReproError):
                row.append("n/a")
                continue
            row.append(final_error(trace, x_H))
        result.rows.append(row)
    result.notes.append(
        "expected shape: robust filters keep errors bounded (graceful "
        "degradation) across attacks, with the paper's fault models "
        "(gradient-reverse, random) well inside the redundancy margin; "
        "norm-camouflaged attacks (zero, sign-flip, mimic) expose CGE's "
        "large guarantee constant; plain averaging is unbounded under "
        "random/ipm"
    )
    return result
