"""E7 — Table 3: distributed learning under attack.

Synthetic two-class distributed learning (the paper's second application
domain): ``n`` agents hold local datasets, ``f`` are Byzantine. Runs the
filtered DGD on the local loss gradients under data- and gradient-level
attacks, in both the i.i.d. (redundant) and heterogeneous regimes, and
reports final honest loss and test accuracy against the fault-free
baseline. The redundancy theory predicts the i.i.d. regime recovers
near-fault-free accuracy; heterogeneity (weakened redundancy) costs
accuracy in proportion.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.analysis.reporting import ExperimentResult
from repro.attacks.registry import make_attack
from repro.optimization.step_sizes import DiminishingStepSize
from repro.problems.learning import label_flip_attack, make_learning_instance
from repro.system.runner import run_dgd
from repro.utils.rng import SeedLike


def run_learning_eval(
    n: int = 10,
    d: int = 5,
    f: int = 3,
    samples_per_agent: int = 30,
    heterogeneity_levels: Sequence[float] = (0.0, 0.5),
    filters: Sequence[str] = ("cge", "cwtm", "average"),
    attacks: Sequence[str] = ("label-flip", "sign-flip", "alie"),
    iterations: int = 300,
    regularization: float = 0.05,
    loss: str = "logistic",
    seed: SeedLike = 3,
) -> ExperimentResult:
    """Regenerate Table 3 (learning accuracy under attack).

    ``loss="hinge"`` runs the SVM variant the paper's full version reports
    (smoothed hinge keeps the costs differentiable).
    """
    result = ExperimentResult(
        experiment_id="E7",
        title=f"Distributed learning under attack (n={n}, f={f}, d={d}, loss={loss})",
        headers=["heterogeneity", "filter", "attack", "honest loss", "accuracy"],
    )
    schedule = DiminishingStepSize(c=2.0, t0=5.0)
    for heterogeneity in heterogeneity_levels:
        instance = make_learning_instance(
            n=n,
            d=d,
            samples_per_agent=samples_per_agent,
            heterogeneity=heterogeneity,
            regularization=regularization,
            loss=loss,
            seed=seed,
        )
        faulty_ids = tuple(range(f))
        honest = [i for i in range(n) if i not in faulty_ids]

        # Fault-free reference: faulty agents removed entirely.
        reference = run_dgd(
            [instance.costs[i] for i in honest],
            None,
            gradient_filter="average",
            faulty_ids=(),
            iterations=iterations,
            step_sizes=schedule,
            seed=seed,
        )
        reference_accuracy = instance.accuracy(reference.final_estimate)
        result.rows.append(
            [heterogeneity, "fault-free", "(none)",
             float(sum(instance.costs[i].value(reference.final_estimate) for i in honest)),
             reference_accuracy]
        )

        for filter_name in filters:
            for attack_name in attacks:
                if attack_name == "label-flip":
                    # Data-level poisoning: faulty agents report true
                    # gradients of label-flipped local datasets.
                    behavior = label_flip_attack(instance, faulty_ids)
                elif attack_name == "sign-flip":
                    # Amplified sign-flip: the strength a rushing adversary
                    # would actually use (a unit-strength flip is mostly
                    # absorbed by the honest majority's average).
                    behavior = make_attack(attack_name, strength=5.0)
                else:
                    behavior = make_attack(attack_name)
                trace = run_dgd(
                    instance.costs,
                    behavior,
                    gradient_filter=filter_name,
                    faulty_ids=faulty_ids,
                    iterations=iterations,
                    step_sizes=schedule,
                    seed=seed,
                )
                honest_loss = float(
                    sum(instance.costs[i].value(trace.final_estimate) for i in honest)
                )
                accuracy = instance.accuracy(trace.final_estimate)
                result.rows.append(
                    [heterogeneity, filter_name, attack_name, honest_loss, accuracy]
                )
    result.notes.append(
        "expected shape: robust filters reach accuracy comparable to the "
        "fault-free reference in the iid (redundant) regime; plain averaging "
        "collapses under amplified sign-flip (and shows elevated honest loss "
        "under label-flip); heterogeneity reduces every filter's headroom"
    )
    return result
