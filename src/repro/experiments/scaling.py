"""E9 — Figure 6: aggregator wall-time scaling.

Filter cost as a function of the number of agents ``n`` and the problem
dimension ``d``. CGE and the trimmed mean are near-linear in the input
size; Krum-family filters pay an ``O(n²d)`` pairwise-distance term — the
practical argument for CGE the paper makes (the subset-enumeration
algorithm, by contrast, is exponential and appears here only via its solve
count).
"""

from __future__ import annotations

from math import comb
from typing import Optional, Sequence

import numpy as np

from repro.aggregators.registry import make_filter
from repro.analysis.reporting import ExperimentResult
from repro.observability import Telemetry
from repro.utils.rng import SeedLike, ensure_rng


def _time_filter(
    filter_name: str, n: int, d: int, f: int, rng, repeats: int,
    telemetry: Telemetry,
) -> float:
    """Median wall-time (seconds) of one aggregation call.

    Each call is timed with a :meth:`Telemetry.span` named after the cell
    (``filter:<name>[n=..,d=..]``), so the scaling experiment's timings
    land in the same trace schema as every other instrumented code path —
    a bench that forwards its handle here gets per-cell hotspot
    attribution — and the median is read back from the handle's running
    aggregates.
    """
    gradient_filter = make_filter(filter_name, f=f)
    gradients = rng.normal(size=(n, d))
    span_name = f"filter:{filter_name}[n={n},d={d}]"
    for _ in range(repeats):
        with telemetry.span(span_name):
            gradient_filter(gradients)
    return float(np.median(telemetry.span_durations(span_name)))


def run_aggregator_scaling(
    filters: Sequence[str] = ("cge", "cwtm", "median", "geomed", "krum"),
    agent_counts: Sequence[int] = (10, 25, 50, 100, 200),
    dimensions: Sequence[int] = (2, 100, 1000),
    fault_fraction: float = 0.2,
    repeats: int = 5,
    seed: SeedLike = 13,
    telemetry: Optional[Telemetry] = None,
) -> ExperimentResult:
    """Regenerate Figure 6 (aggregation wall-time vs n and d).

    ``telemetry`` may supply an external handle (the benchmark harness
    does) to receive the per-cell timing spans; measurement needs a *live*
    handle to read durations back, so a disabled/absent one is replaced
    with a private in-memory handle rather than ``NULL_TELEMETRY``.
    """
    tel = telemetry if telemetry else Telemetry()
    rng = ensure_rng(seed)
    result = ExperimentResult(
        experiment_id="E9",
        title="Aggregator wall-time scaling",
        headers=["filter", "n", "d", "seconds/call"],
    )
    for filter_name in filters:
        for n in agent_counts:
            f = max(int(n * fault_fraction), 1)
            for d in dimensions:
                seconds = _time_filter(filter_name, n, d, f, rng, repeats, tel)
                result.rows.append([filter_name, n, d, seconds])
        series = [
            row[3] for row in result.rows if row[0] == filter_name and row[2] == dimensions[-1]
        ]
        result.series[f"{filter_name} time vs n (d={dimensions[-1]})"] = np.asarray(series)
    largest_n = max(agent_counts)
    f = max(int(largest_n * fault_fraction), 1)
    result.notes.append(
        "subset-enumeration algorithm at the largest configuration would need "
        f"~{comb(largest_n, largest_n - f) + comb(largest_n, largest_n - 2 * f):.3g} "
        "aggregate argmin solves — the exponential gap motivating gradient filters"
    )
    result.notes.append(
        "expected shape: cge/cwtm/median scale ~linearly in n*d; krum grows "
        "quadratically in n"
    )
    return result
