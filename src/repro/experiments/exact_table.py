"""E4 — Table 2: exact fault-tolerance of the subset-enumeration algorithm.

The achievability half of the paper's characterization: under exact
2f-redundancy (zero observation noise), the subset-enumeration algorithm
must output *exactly* the honest minimizer no matter what cost functions the
Byzantine agents submit. This experiment runs the algorithm on small
instances against a battery of adversarial cost submissions and reports the
worst resulting error over the battery, together with the resilience
verdict from :func:`repro.core.resilience.evaluate_resilience`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import ExperimentResult
from repro.core.exact_algorithm import SubsetEnumerationAlgorithm
from repro.core.resilience import evaluate_resilience
from repro.optimization.cost_functions import CostFunction, LeastSquaresCost, TranslatedQuadratic
from repro.problems.linear_regression import make_redundant_regression
from repro.utils.rng import SeedLike, ensure_rng


def _adversarial_submissions(
    instance, faulty_ids: Sequence[int], rng
) -> List[Tuple[str, List[CostFunction]]]:
    """A battery of Byzantine cost-function submissions for the algorithm.

    Each entry replaces the faulty agents' true costs with an adversarial
    alternative: a cost pulling toward a far-away point, a rescaled copy of
    an honest cost, a cost agreeing with a *strict subset* of honest agents
    (the hardest case in the necessity proof), and a random quadratic.
    """
    batteries: List[Tuple[str, List[CostFunction]]] = []
    d = instance.dimension
    honest = [i for i in range(instance.n) if i not in faulty_ids]

    def with_replacement(name: str, replacement_for) -> None:
        submitted = list(instance.costs)
        for agent_id in faulty_ids:
            submitted[agent_id] = replacement_for(agent_id)
        batteries.append((name, submitted))

    far_point = 50.0 * np.ones(d)
    with_replacement("pull-to-far-point", lambda i: TranslatedQuadratic(far_point))
    with_replacement(
        "amplified-honest-copy",
        lambda i: LeastSquaresCost(10.0 * instance.A[honest[0]][None, :], 10.0 * instance.b[honest[0]][None]),
    )
    # Consistent-with-a-minority: fabricate an observation row consistent
    # with a shifted parameter, mimicking the necessity proof's scenario.
    shifted = instance.x_star + 5.0
    with_replacement(
        "consistent-with-shifted-parameter",
        lambda i: LeastSquaresCost(instance.A[i][None, :], (instance.A[i] @ shifted)[None]),
    )
    with_replacement(
        "random-quadratic",
        lambda i: TranslatedQuadratic(rng.normal(scale=20.0, size=d), weight=rng.uniform(0.5, 3.0)),
    )
    return batteries


def run_exact_algorithm_table(
    configurations: Sequence[Tuple[int, int, int]] = ((4, 1, 2), (6, 1, 2), (6, 2, 2), (8, 2, 3)),
    tolerance: float = 1e-6,
    seed: SeedLike = 7,
) -> ExperimentResult:
    """Regenerate Table 2 (exact fault-tolerance under 2f-redundancy).

    Parameters
    ----------
    configurations:
        ``(n, f, d)`` triples; each must satisfy ``n − 2f >= d``.
    tolerance:
        Numerical tolerance for the "exact" verdict.
    """
    rng = ensure_rng(seed)
    result = ExperimentResult(
        experiment_id="E4",
        title="Subset-enumeration algorithm under exact 2f-redundancy",
        headers=["n", "f", "d", "worst attack", "worst error", "exact"],
    )
    for n, f, d in configurations:
        instance = make_redundant_regression(n=n, d=d, f=f, noise_std=0.0, seed=seed)
        faulty_ids = tuple(range(f))
        honest = [i for i in range(n) if i not in faulty_ids]
        algorithm = SubsetEnumerationAlgorithm(n, f)
        worst_error = 0.0
        worst_name = "(none)"
        for name, submitted in _adversarial_submissions(instance, faulty_ids, rng):
            output = algorithm.run(submitted).output
            report = evaluate_resilience(
                output, instance.costs, honest, f, tolerance=tolerance
            )
            if report.epsilon > worst_error:
                worst_error = report.epsilon
                worst_name = name
        result.rows.append(
            [n, f, d, worst_name, worst_error, "yes" if worst_error <= tolerance else "NO"]
        )
    result.notes.append(
        "expected shape: every row exact — the algorithm recovers the honest "
        "minimizer for every adversarial submission when 2f-redundancy holds"
    )
    return result
