"""E16 — CGE under a degraded (partially-synchronous) network.

The paper's convergence guarantee is proved under perfect synchrony. This
experiment measures how far DGD+CGE drifts from the honest minimizer when
that assumption erodes in two independent directions:

- the **delay bound** ``B``: every link may hold a message up to ``B``
  rounds (the self-healing server compensates with bounded-staleness
  gradient reuse and partial aggregation);
- the **straggler fraction**: some honest agents periodically miss their
  round deadline outright.

Each grid cell runs the same 2f-redundant regression instance and the same
gradient-reverse adversary as the fault-free baseline (the ``B=0``,
``0 stragglers`` corner, which is bit-identical to the synchronous engine);
the reported error is ``dist(x_H, x_out)``, directly comparable across the
grid. Every fault draw is a pure function of the fault seed, so the whole
table is exactly reproducible.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.metrics import final_error
from repro.analysis.reporting import ExperimentResult
from repro.attacks.registry import make_attack
from repro.problems.linear_regression import make_redundant_regression
from repro.system.netfaults import FaultProfile, NetworkFaultModel
from repro.system.runner import run_dgd
from repro.utils.rng import SeedLike


def run_degraded_network(
    n: int = 6,
    d: int = 2,
    f: int = 1,
    delay_bounds: Sequence[int] = (0, 1, 2, 4),
    straggler_counts: Sequence[int] = (0, 1, 2),
    delay_prob: float = 0.3,
    straggle_every: int = 3,
    iterations: int = 400,
    noise_std: float = 0.0,
    seed: SeedLike = 11,
    fault_seed: int = 7,
) -> ExperimentResult:
    """CGE final error across the delay-bound × straggler-count grid."""
    instance = make_redundant_regression(n=n, d=d, f=f, noise_std=noise_std, seed=seed)
    faulty = tuple(range(f))
    honest = [i for i in range(n) if i not in faulty]
    x_H = instance.honest_minimizer(honest)
    result = ExperimentResult(
        experiment_id="E16",
        title=(
            f"DGD+CGE error under partial synchrony "
            f"(n={n}, f={f}, d={d}, T={iterations}, gradient-reverse attack)"
        ),
        headers=[
            "delay bound B", "stragglers", "dist(x_H, x_out)",
            "stale reuses", "stalled rounds", "dropped msgs",
        ],
    )
    for bound in delay_bounds:
        for stragglers in straggler_counts:
            if stragglers > len(honest):
                continue
            profiles = {}
            if bound > 0:
                base = FaultProfile(delay_prob=delay_prob, max_delay=bound)
                profiles.update({i: base for i in range(n)})
            # Stragglers are drawn from the highest-id agents — all honest,
            # so the attack and the degradation stress different agents.
            for agent_id in range(n - stragglers, n):
                existing = profiles.get(agent_id, FaultProfile())
                profiles[agent_id] = FaultProfile(
                    drop_prob=existing.drop_prob,
                    delay_prob=existing.delay_prob,
                    max_delay=existing.max_delay,
                    straggle_every=straggle_every,
                    straggle_delay=max(bound, 1),
                )
            model = (
                NetworkFaultModel(profiles=profiles, seed=int(fault_seed))
                if profiles
                else None
            )
            trace = run_dgd(
                instance.costs,
                make_attack("gradient-reverse"),
                gradient_filter="cge",
                faulty_ids=faulty,
                iterations=iterations,
                seed=seed,
                fault_model=model,
            )
            resilience = trace.extra.get("resilience", {})
            result.rows.append(
                [
                    bound,
                    stragglers,
                    final_error(trace, x_H),
                    resilience.get("stale_reuses", 0),
                    resilience.get("stalled_rounds", 0),
                    trace.messages_dropped,
                ]
            )
    result.notes.append(
        "the B=0 / 0-straggler corner runs the synchronous engine; every "
        "degraded cell runs the self-healing runtime with policy "
        "ResiliencePolicy.for_model (staleness bound 2B, no silence "
        "elimination), so no honest agent is ever eliminated"
    )
    return result
