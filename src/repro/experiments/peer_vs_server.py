"""E8 — Table 4: peer-to-peer equivalence with the server-based protocol.

The paper's architectural claim: for ``f < n/3`` the server-based algorithm
can be simulated peer-to-peer with Byzantine broadcast. This experiment
runs both architectures on the same instance, same filter, same schedule,
and the same deterministic adversary, and reports (a) the distance between
the two final estimates and (b) the broadcast message overhead the
peer-to-peer simulation pays.

With a deterministic attack (gradient-reverse), both executions see
identical values each round, so the trajectories must match to numerical
precision. Randomized attacks draw from different streams across the two
architectures, so only qualitative agreement is expected there — the table
reports the deterministic case.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.aggregators.registry import make_filter
from repro.analysis.reporting import ExperimentResult
from repro.attacks.registry import make_attack
from repro.optimization.step_sizes import suggest_diminishing
from repro.problems.linear_regression import make_redundant_regression
from repro.system.peer_to_peer import run_peer_to_peer_dgd
from repro.system.runner import run_dgd
from repro.utils.rng import SeedLike


def run_peer_vs_server(
    configurations: Sequence[Tuple[int, int]] = ((4, 1), (7, 2)),
    d: int = 2,
    iterations: int = 200,
    attack: str = "gradient-reverse",
    seed: SeedLike = 5,
) -> ExperimentResult:
    """Regenerate Table 4 (architecture equivalence for ``f < n/3``)."""
    result = ExperimentResult(
        experiment_id="E8",
        title="Server-based vs peer-to-peer filtered DGD",
        headers=[
            "n", "f", "server error", "p2p error",
            "|x_server - x_p2p|", "p2p error (equivocating)", "p2p broadcast msgs",
        ],
    )
    for n, f in configurations:
        instance = make_redundant_regression(n=n, d=d, f=f, noise_std=0.0, seed=seed)
        faulty_ids = tuple(range(f))
        honest = [i for i in range(n) if i not in faulty_ids]
        x_H = instance.honest_minimizer(honest)
        gradient_filter = make_filter("cge", f=f)
        schedule = suggest_diminishing(instance.costs, aggregation="sum")
        behavior = make_attack(attack)

        server_trace = run_dgd(
            instance.costs,
            behavior,
            gradient_filter=make_filter("cge", f=f),
            faulty_ids=faulty_ids,
            iterations=iterations,
            step_sizes=schedule,
            seed=seed,
        )
        peer_result = run_peer_to_peer_dgd(
            instance.costs,
            gradient_filter,
            faulty_ids=faulty_ids,
            behavior=make_attack(attack),
            iterations=iterations,
            step_sizes=schedule,
            seed=seed,
            equivocate=False,
        )
        # With equivocation, broadcast resolves the faulty sender's value to
        # ⊥ (delivered as the zero vector) — equivocating is never better
        # for the adversary than consistently sending the forged gradient.
        equivocating = run_peer_to_peer_dgd(
            instance.costs,
            make_filter("cge", f=f),
            faulty_ids=faulty_ids,
            behavior=make_attack(attack),
            iterations=iterations,
            step_sizes=schedule,
            seed=seed,
            equivocate=True,
        )
        server_error = float(np.linalg.norm(server_trace.final_estimate - x_H))
        peer_error = float(np.linalg.norm(peer_result.final_estimate - x_H))
        equivocating_error = float(
            np.linalg.norm(equivocating.final_estimate - x_H)
        )
        gap = float(
            np.linalg.norm(server_trace.final_estimate - peer_result.final_estimate)
        )
        result.rows.append(
            [n, f, server_error, peer_error, gap, equivocating_error,
             peer_result.broadcast_messages]
        )
    result.notes.append(
        "expected shape: per-row gap ~ 0 (identical trajectories under a "
        "deterministic, non-equivocating attack); broadcast message counts "
        "grow as O(T·n²·f); equivocation degenerates to the zero attack"
    )
    return result
