"""A4 — Ablation: step sizes under *stochastic* gradients (SGD extension).

With exact gradients (A2) every schedule converges and Robbins–Monro buys
nothing visible. This ablation switches the honest agents to noisy gradient
oracles — the SGD setting of the authors' follow-up work — where the
classical story re-emerges: gradient noise survives every aggregation rule,
so a constant step stalls at an O(η·σ) noise ball while a diminishing
schedule drives the error to zero.
"""

from __future__ import annotations

import warnings
from typing import Sequence

import numpy as np

from repro.analysis.reporting import ExperimentResult
from repro.attacks.registry import make_attack
from repro.experiments.common import PAPER_X0
from repro.optimization.step_sizes import (
    ConstantStepSize,
    DiminishingStepSize,
    suggest_diminishing,
)
from repro.optimization.stochastic import with_gradient_noise
from repro.problems.linear_regression import make_redundant_regression
from repro.system.runner import run_dgd
from repro.utils.rng import SeedLike


def run_stochastic_step_sizes(
    gradient_noise: float = 0.5,
    iterations: int = 6000,
    tail_fraction: float = 0.1,
    constant_steps: Sequence[float] = (0.05, 0.01),
    seed: SeedLike = 20200803,
) -> ExperimentResult:
    """Regenerate the A4 table (noise floors under stochastic gradients).

    Reports, per schedule, the *tail mean* of ``‖x^t − x_H‖`` over the last
    ``tail_fraction`` of iterations (the final point of a stochastic run is
    itself a random variable, so the tail mean is the honest summary).
    """
    instance = make_redundant_regression(n=6, d=2, f=1, noise_std=0.0, seed=seed)
    honest = list(range(1, 6))
    x_H = instance.honest_minimizer(honest)
    noisy_costs = with_gradient_noise(instance.costs, gradient_noise, seed=seed)

    # The SGD prescription needs c·γ > 1 strictly (the curvature-matched
    # default sits exactly at c·γ = 1, which is the boundary of the O(1/t)
    # regime) — boost it by 4 while keeping η_0 stable via t0.
    matched = suggest_diminishing(instance.costs, aggregation="sum")
    schedules = [
        (
            "diminishing 1/t (RM)",
            DiminishingStepSize(c=4.0 * matched.c, t0=4.0 * matched.t0),
        ),
    ]
    for eta in constant_steps:
        schedules.append((f"constant {eta} (not RM)", ConstantStepSize(eta)))

    result = ExperimentResult(
        experiment_id="A4",
        title=(
            f"Step sizes under stochastic gradients "
            f"(gradient noise std {gradient_noise}, CGE, gradient-reverse attack)"
        ),
        headers=["schedule", "robbins-monro", "tail-mean error"],
    )
    tail = max(int(iterations * tail_fraction), 1)
    for name, schedule in schedules:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            trace = run_dgd(
                noisy_costs,
                make_attack("gradient-reverse"),
                gradient_filter="cge",
                faulty_ids=(0,),
                iterations=iterations,
                step_sizes=schedule,
                seed=seed,
                x0=np.asarray(PAPER_X0),
            )
        distances = trace.distances_to(x_H)
        tail_mean = float(distances[-tail:].mean())
        result.rows.append(
            [name, "yes" if schedule.satisfies_robbins_monro else "no", tail_mean]
        )
        result.series[f"{name} distance"] = distances
    # Rate check: for strongly convex SGD with an RM schedule, the expected
    # squared error decays as O(1/t), i.e. the distance as ~ t^(-1/2). A
    # single trajectory's distance is noisy round-to-round, so the fit runs
    # on a running-median smoothed series.
    from repro.analysis.rates import fit_power_law

    rm_series = result.series["diminishing 1/t (RM) distance"]
    window = max(iterations // 50, 5)
    smoothed = np.array([
        np.median(rm_series[max(k - window, 0) : k + 1])
        for k in range(len(rm_series))
    ])
    fit = fit_power_law(smoothed, burn_in=max(iterations // 10, 10))
    result.notes.append(f"RM-schedule decay fit (smoothed): {fit.describe()}")
    result.notes.append(
        "expected shape: the diminishing (RM) schedule reaches the smallest "
        "tail error with a distance decay between ~t^(-1/2) (the stochastic "
        "O(1/t) squared-error rate) and ~t^(-1) (the deterministic bias "
        "component); constant steps stall at noise floors that scale with "
        "the step size — the behaviour the Robbins-Monro conditions exist "
        "to rule out"
    )
    return result
