"""Ablation experiments for the design choices DESIGN.md calls out.

- **CGE sum vs mean** (A1): the paper defines CGE as the *sum* of the
  ``n − f`` smallest-norm gradients; averaging them changes only the
  direction's scale. With a curvature-matched schedule both converge; with
  a fixed schedule the scale mismatch shows up as a speed difference.
- **Step-size schedules** (A2): the convergence theorem assumes
  Robbins–Monro schedules; this ablation compares them with constant steps
  in the deterministic-gradient setting (where CGE's norm cap on surviving
  Byzantine inputs removes the stochastic noise floor that usually
  penalizes constant steps).
- **Projection radius** (A3): the convergence theorem requires a compact
  ``W``; this ablation shrinks ``W`` until it excludes the honest
  minimizer, showing the projected method then converges to the boundary
  (distance = dist(x_H, W)) rather than diverging.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.aggregators.cge import ComparativeGradientElimination
from repro.analysis.metrics import final_error
from repro.analysis.reporting import ExperimentResult
from repro.attacks.registry import make_attack
from repro.experiments.common import PAPER_X0, paper_setup
from repro.optimization.projections import BoxSet
from repro.optimization.step_sizes import (
    ConstantStepSize,
    DiminishingStepSize,
    PolynomialStepSize,
    suggest_diminishing,
)
from repro.system.runner import run_dgd
from repro.utils.rng import SeedLike


def run_cge_sum_vs_mean(
    iterations: int = 500, seed: SeedLike = 20200803
) -> ExperimentResult:
    """A1: the paper's sum-form CGE vs the mean-form variant."""
    instance = paper_setup(seed=seed)
    faulty = (0,)
    honest = [i for i in range(instance.n) if i not in faulty]
    x_H = instance.honest_minimizer(honest)
    result = ExperimentResult(
        experiment_id="A1",
        title="CGE ablation: sum (paper) vs mean of kept gradients",
        headers=["variant", "schedule", "final error"],
    )
    for mode in ("sum", "mean"):
        for schedule_name, schedule in (
            ("matched", suggest_diminishing(instance.costs, aggregation=mode)),
            ("fixed c=0.5", DiminishingStepSize(c=0.5, t0=3.0)),
        ):
            trace = run_dgd(
                instance.costs,
                make_attack("gradient-reverse"),
                gradient_filter=ComparativeGradientElimination(f=1, mode=mode),
                faulty_ids=faulty,
                iterations=iterations,
                step_sizes=schedule,
                seed=seed,
                x0=np.asarray(PAPER_X0),
            )
            result.rows.append([mode, schedule_name, final_error(trace, x_H)])
    result.notes.append(
        "expected shape: with matched schedules the variants coincide (same "
        "direction, rescaled step); with one fixed schedule the scale mismatch "
        "appears as a convergence-speed gap"
    )
    return result


def run_step_size_ablation(
    iterations: int = 500, seed: SeedLike = 20200803
) -> ExperimentResult:
    """A2: Robbins–Monro vs constant schedules."""
    instance = paper_setup(seed=seed)
    faulty = (0,)
    honest = [i for i in range(instance.n) if i not in faulty]
    x_H = instance.honest_minimizer(honest)
    schedules = (
        ("diminishing 1/t (RM)", suggest_diminishing(instance.costs, aggregation="sum")),
        ("polynomial t^-0.7 (RM)", PolynomialStepSize(c=0.3, power=0.7, t0=3.0)),
        ("constant 0.05 (not RM)", ConstantStepSize(0.05)),
        ("constant 0.005 (not RM)", ConstantStepSize(0.005)),
    )
    result = ExperimentResult(
        experiment_id="A2",
        title="Step-size ablation (CGE, gradient-reverse attack)",
        headers=["schedule", "robbins-monro", "final error"],
    )
    import warnings

    for name, schedule in schedules:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            trace = run_dgd(
                instance.costs,
                make_attack("gradient-reverse"),
                gradient_filter="cge",
                faulty_ids=faulty,
                iterations=iterations,
                step_sizes=schedule,
                seed=seed,
                x0=np.asarray(PAPER_X0),
            )
        result.rows.append(
            [name, "yes" if schedule.satisfies_robbins_monro else "no",
             final_error(trace, x_H)]
        )
    result.notes.append(
        "expected shape: every schedule converges — with deterministic "
        "gradients and CGE's norm cap on surviving Byzantine inputs there is "
        "no stochastic noise floor for constant steps to stall at; the "
        "Robbins-Monro conditions buy the theorem's worst-case generality, "
        "not raw speed, and the conservative 1/t schedule is visibly the "
        "slowest at a fixed horizon"
    )
    return result


def run_projection_ablation(
    half_widths: Sequence[float] = (1000.0, 10.0, 1.5, 0.5),
    iterations: int = 500,
    seed: SeedLike = 20200803,
) -> ExperimentResult:
    """A3: effect of the compact set ``W``'s size."""
    instance = paper_setup(seed=seed)
    faulty = (0,)
    honest = [i for i in range(instance.n) if i not in faulty]
    x_H = instance.honest_minimizer(honest)
    result = ExperimentResult(
        experiment_id="A3",
        title="Projection-set ablation (CGE, gradient-reverse attack)",
        headers=["box half-width", "x_H inside W", "final error", "dist(x_H, W)"],
    )
    for half_width in half_widths:
        box = BoxSet.centered(instance.dimension, half_width)
        inside = box.contains(x_H)
        boundary_gap = float(np.linalg.norm(box.project(x_H) - x_H))
        trace = run_dgd(
            instance.costs,
            make_attack("gradient-reverse"),
            gradient_filter="cge",
            faulty_ids=faulty,
            iterations=iterations,
            projection=box,
            seed=seed,
            x0=np.zeros(instance.dimension),
        )
        result.rows.append(
            [half_width, "yes" if inside else "no", final_error(trace, x_H), boundary_gap]
        )
    result.notes.append(
        "expected shape: any W containing x_H gives the same answer; a W "
        "excluding x_H converges to the boundary, with error ~ dist(x_H, W)"
    )
    return result
