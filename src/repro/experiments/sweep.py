"""Parallel sweep executor for (filter × attack × f × seed) experiment grids.

The experiment modules were written as straight-line loops: readable, but a
robustness matrix over 9 filters × 7 attacks × 10 seeds is 630 independent
DGD executions that a laptop runs one at a time. :class:`SweepEngine`
provides the missing execution layer:

- **Batched replication.** Cells that differ only in their seed are one
  :func:`repro.system.batch.run_dgd_batch` call — the vectorized engine
  executes all replicate runs as stacked tensors, bit-identical to the
  sequential runner.
- **Process-pool fan-out.** Independent cell groups are scheduled onto a
  :class:`concurrent.futures.ProcessPoolExecutor` in contiguous chunks
  (one task per chunk keeps IPC overhead off the hot path). Results come
  back in submission order regardless of completion order.
- **Deterministic seed derivation.** Per-run seeds derive from one master
  seed through :func:`repro.utils.rng.spawn_rngs`, so a grid is a pure
  function of its declaration — rerunning it, resuming it, or running it
  with a different worker count yields the same numbers.
- **On-disk trace cache.** Each cell's trace is stored under a SHA-256
  hash of its full configuration; re-running a grid recomputes only the
  cells whose configuration changed.

Everything submitted to the pool must be picklable; the engine verifies
this up front and transparently falls back to in-process execution (with a
warning) when it is not, so ``parallel=True`` is always safe to request.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import ExperimentResult
from repro.exceptions import InvalidParameterError, ReproError
from repro.utils.rng import derive_seed, spawn_rngs

__all__ = [
    "SweepEngine",
    "RegressionGrid",
    "SweepCellResult",
    "derive_run_seeds",
    "parallel_map",
    "summarize_grid",
]


def derive_run_seeds(master_seed: int, count: int) -> List[int]:
    """``count`` independent integer run seeds derived from one master seed.

    Deterministic: the same master seed always yields the same sequence,
    and seed ``k`` does not depend on ``count`` (prefix-stable), so growing
    a sweep keeps every already-computed cell's seed — and therefore its
    cache entry — valid.
    """
    return [derive_seed(rng) for rng in spawn_rngs(int(master_seed), int(count))]


def _config_hash(payload: Dict) -> str:
    """Stable SHA-256 key for a cell configuration."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


def _run_chunk(worker: Callable, items: Sequence) -> List:
    """Pool task body: apply ``worker`` to one contiguous chunk of items."""
    return [worker(item) for item in items]


@dataclass(frozen=True)
class RegressionGrid:
    """Declarative (filter × attack × f × seed) grid on redundant regression.

    The instance parameters (``n``, ``d``, ``redundancy_f``, ``noise_std``,
    ``instance_seed``) fix one
    :func:`repro.problems.linear_regression.make_redundant_regression`
    problem; the grid axes multiply out to
    ``len(filters) · len(attacks) · len(fault_counts) · num_seeds`` cells.
    Per-run seeds derive from ``master_seed`` via :func:`derive_run_seeds`.
    """

    filters: Tuple[str, ...] = ("cge", "cwtm", "median", "average")
    attacks: Tuple[str, ...] = ("gradient-reverse", "random", "sign-flip", "zero")
    fault_counts: Tuple[int, ...] = (1,)
    num_seeds: int = 10
    master_seed: int = 20200803
    n: int = 6
    d: int = 2
    redundancy_f: Optional[int] = None
    noise_std: float = 0.0
    instance_seed: int = 20200803
    iterations: int = 300
    x0: Optional[Tuple[float, ...]] = None

    def resolved_redundancy_f(self) -> int:
        """The instance's redundancy degree (defaults to the largest f swept)."""
        if self.redundancy_f is not None:
            return int(self.redundancy_f)
        return max(1, max(self.fault_counts))

    def seeds(self) -> List[int]:
        return derive_run_seeds(self.master_seed, self.num_seeds)


@dataclass
class SweepCellResult:
    """One executed grid cell."""

    filter_name: str
    attack_name: str
    f: int
    seed: int
    final_error: float = float("nan")
    final_estimate: Optional[np.ndarray] = None
    estimates: Optional[np.ndarray] = field(default=None, repr=False)
    error: Optional[str] = None
    cached: bool = False

    @property
    def failed(self) -> bool:
        return self.error is not None


def _cell_cache_payload(grid_fields: Dict, filter_name: str, attack_name: str,
                        f: int, seed: int) -> Dict:
    """The exact configuration a cell's cache key is derived from.

    Excludes execution details (backend, worker count, chunking) on
    purpose: the batch engine is bit-identical to the sequential runner,
    so they cannot change the result.
    """
    return {
        "kind": "regression-dgd",
        "version": 1,
        **grid_fields,
        "filter": filter_name,
        "attack": attack_name,
        "f": f,
        "seed": seed,
    }


def _run_regression_group(task: Dict) -> List[Dict]:
    """Execute one (filter, attack, f) group across its seeds.

    Module-level (hence picklable) pool worker. Consults the cell cache
    first, batches all missing seeds through :func:`run_dgd_batch`, and
    writes fresh entries back. Returns one JSON-safe payload per seed, in
    the group's seed order.
    """
    from repro.attacks.registry import make_attack
    from repro.problems.linear_regression import make_redundant_regression
    from repro.system.batch import run_dgd_batch
    from repro.system.runner import DGDConfig, run_dgd

    grid_fields = task["grid_fields"]
    filter_name, attack_name, f = task["filter"], task["attack"], task["f"]
    seeds, cache_dir = task["seeds"], task["cache_dir"]
    backend = task["backend"]

    payloads: List[Optional[Dict]] = [None] * len(seeds)
    missing: List[int] = []
    for index, seed in enumerate(seeds):
        if cache_dir is not None:
            key = _config_hash(
                _cell_cache_payload(grid_fields, filter_name, attack_name, f, seed)
            )
            path = os.path.join(cache_dir, f"{key}.json")
            if os.path.exists(path):
                with open(path, "r", encoding="utf-8") as handle:
                    payload = json.load(handle)
                payload["cached"] = True
                payloads[index] = payload
                continue
        missing.append(index)

    if missing:
        instance = make_redundant_regression(
            n=grid_fields["n"],
            d=grid_fields["d"],
            f=grid_fields["redundancy_f"],
            noise_std=grid_fields["noise_std"],
            seed=grid_fields["instance_seed"],
        )
        faulty_ids = tuple(range(f))
        honest = [i for i in range(grid_fields["n"]) if i not in faulty_ids]
        x_H = instance.honest_minimizer(honest)
        behavior = make_attack(attack_name) if f > 0 else None
        config = DGDConfig(
            iterations=grid_fields["iterations"],
            gradient_filter=filter_name,
            faulty_ids=faulty_ids,
            f=f if f > 0 else None,
            x0=grid_fields["x0"],
            seed=0,
        )
        missing_seeds = [seeds[i] for i in missing]
        try:
            if backend == "batch":
                traces = run_dgd_batch(instance.costs, behavior, config, seeds=missing_seeds)
            else:
                traces = [
                    run_dgd(instance.costs, behavior, config, seed=s)
                    for s in missing_seeds
                ]
            fresh = []
            for trace in traces:
                final_estimate = trace.final_estimate
                fresh.append(
                    {
                        "final_error": float(np.linalg.norm(final_estimate - x_H)),
                        "final_estimate": final_estimate.tolist(),
                        "estimates": trace.estimates.tolist(),
                        "cached": False,
                    }
                )
        except (InvalidParameterError, ReproError) as exc:
            # Infeasible configuration (e.g. Bulyan's n >= 4f + 3): the
            # whole group fails identically for every seed.
            fresh = [
                {"error": f"{type(exc).__name__}: {exc}", "cached": False}
                for _ in missing_seeds
            ]
        for index, payload in zip(missing, fresh):
            payloads[index] = payload
            if cache_dir is not None:
                key = _config_hash(
                    _cell_cache_payload(
                        grid_fields, filter_name, attack_name, f, seeds[index]
                    )
                )
                path = os.path.join(cache_dir, f"{key}.json")
                stored = dict(payload)
                stored.pop("cached", None)
                tmp_path = f"{path}.tmp.{os.getpid()}"
                with open(tmp_path, "w", encoding="utf-8") as handle:
                    json.dump(stored, handle)
                os.replace(tmp_path, path)

    return payloads  # type: ignore[return-value]


class SweepEngine:
    """Chunked process-pool executor with per-cell caching for sweep grids.

    Parameters
    ----------
    parallel:
        Fan work out over a process pool; ``False`` executes in-process
        (still batched, still cached).
    max_workers:
        Pool size; defaults to ``os.cpu_count()`` capped at the number of
        scheduled chunks.
    cache_dir:
        Directory for the on-disk trace cache; ``None`` disables caching.
    backend:
        ``"batch"`` (vectorized multi-run engine, default) or
        ``"sequential"`` — numerically identical, the switch exists for
        benchmarking and for paranoia-mode verification.
    """

    def __init__(
        self,
        parallel: bool = True,
        max_workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        backend: str = "batch",
    ):
        if backend not in ("batch", "sequential"):
            raise InvalidParameterError(
                f"backend must be 'batch' or 'sequential', got {backend!r}"
            )
        if max_workers is not None and max_workers <= 0:
            raise InvalidParameterError(
                f"max_workers must be positive, got {max_workers}"
            )
        self._parallel = bool(parallel)
        self._max_workers = max_workers
        self._cache_dir = cache_dir
        self._backend = backend
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)

    @property
    def cache_dir(self) -> Optional[str]:
        return self._cache_dir

    @property
    def backend(self) -> str:
        return self._backend

    def map(
        self,
        worker: Callable,
        items: Sequence,
        chunk_size: Optional[int] = None,
    ) -> List:
        """Apply a picklable ``worker`` to every item, preserving order.

        Items are scheduled in contiguous chunks (one pool task per chunk)
        so that fine-grained grids do not pay one IPC round-trip per cell.
        Falls back to in-process execution — with a warning — when the
        worker or an item cannot be pickled or the pool cannot start.
        """
        items = list(items)
        if not items:
            return []
        if not self._parallel or len(items) == 1:
            return [worker(item) for item in items]
        try:
            pickle.dumps((worker, items))
        except Exception as exc:  # pragma: no cover - exercised via multiseed
            warnings.warn(
                f"sweep work is not picklable ({type(exc).__name__}: {exc}); "
                "running sequentially in-process",
                stacklevel=2,
            )
            return [worker(item) for item in items]
        workers = self._max_workers or os.cpu_count() or 1
        workers = max(1, min(workers, len(items)))
        if chunk_size is None:
            # Aim for a few chunks per worker so stragglers rebalance.
            chunk_size = max(1, -(-len(items) // (4 * workers)))
        chunks = [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(_run_chunk, worker, chunk) for chunk in chunks]
                results: List = []
                for future in futures:
                    results.extend(future.result())
                return results
        except (OSError, RuntimeError) as exc:
            warnings.warn(
                f"process pool unavailable ({type(exc).__name__}: {exc}); "
                "running sequentially in-process",
                stacklevel=2,
            )
            return [worker(item) for item in items]

    def run_regression_grid(self, grid: RegressionGrid) -> List[SweepCellResult]:
        """Execute every cell of a :class:`RegressionGrid`.

        Cells are grouped by (f, filter, attack); each group's seeds run as
        one batched DGD execution, and groups fan out over the pool.
        Results are ordered by (f, filter, attack, seed) — the grid's
        declaration order — independent of scheduling.
        """
        seeds = grid.seeds()
        grid_fields = {
            "n": grid.n,
            "d": grid.d,
            "redundancy_f": grid.resolved_redundancy_f(),
            "noise_std": grid.noise_std,
            "instance_seed": grid.instance_seed,
            "iterations": grid.iterations,
            "x0": list(grid.x0) if grid.x0 is not None else None,
        }
        tasks = [
            {
                "grid_fields": grid_fields,
                "filter": filter_name,
                "attack": attack_name,
                "f": f,
                "seeds": seeds,
                "cache_dir": self._cache_dir,
                "backend": self._backend,
            }
            for f in grid.fault_counts
            for filter_name in grid.filters
            for attack_name in grid.attacks
        ]
        grouped_payloads = self.map(_run_regression_group, tasks)
        results: List[SweepCellResult] = []
        for task, payloads in zip(tasks, grouped_payloads):
            for seed, payload in zip(seeds, payloads):
                cell = SweepCellResult(
                    filter_name=task["filter"],
                    attack_name=task["attack"],
                    f=task["f"],
                    seed=seed,
                    cached=bool(payload.get("cached", False)),
                )
                if "error" in payload:
                    cell.error = payload["error"]
                else:
                    cell.final_error = float(payload["final_error"])
                    cell.final_estimate = np.asarray(payload["final_estimate"])
                    cell.estimates = np.asarray(payload["estimates"])
                results.append(cell)
        return results


def parallel_map(
    worker: Callable,
    items: Sequence,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List:
    """Order-preserving map with optional process-pool fan-out.

    Convenience wrapper used by the sweep-style experiment modules: with
    ``parallel=False`` (the default everywhere) this is a plain list
    comprehension, byte-for-byte the old behaviour.
    """
    engine = SweepEngine(parallel=parallel, max_workers=max_workers)
    return engine.map(worker, items, chunk_size=chunk_size)


def summarize_grid(results: Sequence[SweepCellResult]) -> ExperimentResult:
    """Aggregate grid cells into a per-(f, filter, attack) summary table."""
    groups: Dict[Tuple[int, str, str], List[SweepCellResult]] = {}
    for cell in results:
        groups.setdefault((cell.f, cell.filter_name, cell.attack_name), []).append(cell)
    summary = ExperimentResult(
        experiment_id="SWEEP",
        title="Sweep grid summary",
        headers=["f", "filter", "attack", "seeds", "mean error", "std", "cached"],
    )
    for (f, filter_name, attack_name), cells in sorted(groups.items()):
        failed = [c for c in cells if c.failed]
        if failed:
            summary.rows.append(
                [f, filter_name, attack_name, len(cells), "n/a", "n/a",
                 sum(c.cached for c in cells)]
            )
            continue
        errors = np.asarray([c.final_error for c in cells])
        summary.rows.append(
            [f, filter_name, attack_name, len(cells),
             float(errors.mean()), float(errors.std()),
             sum(c.cached for c in cells)]
        )
    return summary
