"""Fault-tolerant parallel sweep executor for experiment grids.

The experiment modules were written as straight-line loops: readable, but a
robustness matrix over 9 filters × 7 attacks × 10 seeds is 630 independent
DGD executions that a laptop runs one at a time. :class:`SweepEngine`
provides the missing execution layer:

- **Batched replication.** Cells that differ only in their seed are one
  :func:`repro.system.batch.run_dgd_batch` call — the vectorized engine
  executes all replicate runs as stacked tensors, bit-identical to the
  sequential runner.
- **Process-pool fan-out.** Independent cell groups are scheduled onto a
  :class:`concurrent.futures.ProcessPoolExecutor` in contiguous chunks
  (one task per chunk keeps IPC overhead off the hot path). Results come
  back in submission order regardless of completion order.
- **Deterministic seed derivation.** Per-run seeds derive from one master
  seed through :func:`repro.utils.rng.spawn_rngs`, so a grid is a pure
  function of its declaration — rerunning it, resuming it, or running it
  with a different worker count yields the same numbers.
- **Checksummed on-disk trace cache.** Each cell's trace is stored under a
  SHA-256 hash of its full configuration, written atomically
  (write-then-rename) with an end-to-end content checksum. Truncated or
  bit-flipped entries are detected on read, discarded, and recomputed —
  corruption can cost time, never correctness.

The engine is built to survive the faults infrastructure actually
exhibits, mirroring how CGE survives Byzantine gradients (the paper's own
subject). The failure ladder, applied per chunk:

1. **Retry with backoff.** A chunk whose worker raises, whose process
   dies (``BrokenProcessPool``), or which exceeds ``timeout`` seconds is
   retried up to ``retries`` times with exponential backoff and jitter.
   Timeouts and crashes poison the pool, so it is killed and rebuilt
   before resubmission; still-pending chunks are resubmitted to the fresh
   pool (workers are pure functions of their task, so re-execution is
   bit-identical).
2. **Degrade to in-process.** A chunk that keeps raising *soft*
   exceptions after all pool retries is rerun in-process one item at a
   time, so a single poison item cannot take down its chunk-mates.
   (Timed-out and hard-crashed chunks skip this step — re-executing a
   hang or an ``os._exit`` in the parent would take the engine down.)
3. **Quarantine.** Items that still fail become per-item error results
   (:class:`SweepCellResult` with ``failed=True, quarantined=True``)
   instead of aborting the grid — the sweep analogue of eliminating a
   Byzantine agent rather than crashing the protocol.

Every decision is recorded in a structured :class:`SweepEvents` log
(optionally mirrored to a JSONL file): retries, timeouts, pool rebuilds,
quarantines, cache hits/misses/corruptions, and per-chunk wall time.
``resume()`` re-executes a grid against its cache manifest, recomputing
only cells that never completed — the event log's cache-hit count is the
proof.

Everything submitted to the pool must be picklable; the engine verifies
this up front and transparently falls back to in-process execution (with
one warning per engine instance) when it is not, so ``parallel=True`` is
always safe to request.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import random
import threading
import time
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as PoolTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.reporting import ExperimentResult
from repro.exceptions import CacheIntegrityError, InvalidParameterError, ReproError
from repro.observability.tracing import TraceContext
from repro.observability.exporters import (
    JSONLSink,
    MemorySink,
    count_events,
    load_jsonl,
)
from repro.utils.atomicio import read_json_checked, write_json_atomic
from repro.utils.rng import derive_seed, spawn_rngs

__all__ = [
    "SweepEngine",
    "SweepEvents",
    "SharedProcessPool",
    "RegressionGrid",
    "SweepCellResult",
    "derive_run_seeds",
    "parallel_map",
    "summarize_grid",
]


def derive_run_seeds(master_seed: int, count: int) -> List[int]:
    """``count`` independent integer run seeds derived from one master seed.

    Deterministic: the same master seed always yields the same sequence,
    and seed ``k`` does not depend on ``count`` (prefix-stable), so growing
    a sweep keeps every already-computed cell's seed — and therefore its
    cache entry — valid.
    """
    return [derive_seed(rng) for rng in spawn_rngs(int(master_seed), int(count))]


def _config_hash(payload: Dict) -> str:
    """Stable SHA-256 key for a cell configuration."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


def _run_chunk(worker: Callable, items: Sequence) -> List:
    """Pool task body: apply ``worker`` to one contiguous chunk of items."""
    return [worker(item) for item in items]


class SweepEvents:
    """Structured, append-only event log for one engine's activity.

    Built on the observability layer's sinks
    (:mod:`repro.observability.exporters`), so sweep event logs and run
    telemetry streams share one schema — flat JSON objects with an
    ``"event"`` key, one per line — and one set of post-mortem tools:
    ``SweepEvents.load`` *is* :func:`~repro.observability.load_jsonl`, and
    either kind of stream can be counted or summarized interchangeably.
    With ``path`` given, each record is mirrored to disk the moment it is
    emitted, so a killed run leaves a readable prefix; the reader side
    skips unparsable lines — a truncated final line from a killed writer
    must not take the post-mortem down with it.

    Event vocabulary: ``chunk_done`` (with ``elapsed`` wall seconds),
    ``chunk_retry``, ``chunk_timeout``, ``chunk_crash``, ``chunk_degraded``,
    ``pool_rebuild``, ``fallback`` (pool → in-process), ``item_retry``,
    ``quarantine``, ``cache_hit``, ``cache_miss``, ``cache_corrupt``,
    ``cell_failed``, ``manifest``, ``resume``.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._memory = MemorySink()
        self._sinks = [self._memory]
        self._trace_fields: Optional[Dict[str, str]] = None
        if path is not None:
            # JSONLSink owns the file: each engine run starts a fresh log.
            self._sinks.append(JSONLSink(path))

    @property
    def records(self) -> List[Dict]:
        return self._memory.records

    def bind_trace(self, context: Optional["TraceContext"]) -> None:
        """Stamp subsequent records with ``context``'s trace lineage.

        The engine binds its own trace context here, so every event it
        logs (chunk_done, cache_hit, ...) references the engine's span in
        the reconstructed cross-process tree. Records that already carry
        ``trace_id`` (explicit span records) are left untouched.
        """
        self._trace_fields = (
            None if context is None
            else {"trace_id": context.trace_id, "span_id": context.span_id}
        )

    def emit(self, event: str, **fields) -> Dict:
        record = {"event": event, **fields}
        if self._trace_fields is not None and "trace_id" not in record:
            record.update(self._trace_fields)
        for sink in self._sinks:
            sink.emit(record)
        return record

    def counts(self) -> Dict[str, int]:
        """Event name → number of occurrences."""
        return count_events(self.records)

    load = staticmethod(load_jsonl)


@dataclass(frozen=True)
class RegressionGrid:
    """Declarative (filter × attack × f × seed) grid on redundant regression.

    The instance parameters (``n``, ``d``, ``redundancy_f``, ``noise_std``,
    ``instance_seed``) fix one
    :func:`repro.problems.linear_regression.make_redundant_regression`
    problem; the grid axes multiply out to
    ``len(filters) · len(attacks) · len(fault_counts) · num_seeds`` cells.
    Per-run seeds derive from ``master_seed`` via :func:`derive_run_seeds`.
    """

    filters: Tuple[str, ...] = ("cge", "cwtm", "median", "average")
    attacks: Tuple[str, ...] = ("gradient-reverse", "random", "sign-flip", "zero")
    fault_counts: Tuple[int, ...] = (1,)
    num_seeds: int = 10
    master_seed: int = 20200803
    n: int = 6
    d: int = 2
    redundancy_f: Optional[int] = None
    noise_std: float = 0.0
    instance_seed: int = 20200803
    iterations: int = 300
    x0: Optional[Tuple[float, ...]] = None

    def resolved_redundancy_f(self) -> int:
        """The instance's redundancy degree (defaults to the largest f swept)."""
        if self.redundancy_f is not None:
            return int(self.redundancy_f)
        return max(1, max(self.fault_counts))

    def seeds(self) -> List[int]:
        return derive_run_seeds(self.master_seed, self.num_seeds)


@dataclass
class SweepCellResult:
    """One executed grid cell."""

    filter_name: str
    attack_name: str
    f: int
    seed: int
    final_error: float = float("nan")
    final_estimate: Optional[np.ndarray] = None
    estimates: Optional[np.ndarray] = field(default=None, repr=False)
    error: Optional[str] = None
    cached: bool = False
    quarantined: bool = False

    @property
    def failed(self) -> bool:
        return self.error is not None


def _cell_cache_payload(grid_fields: Dict, filter_name: str, attack_name: str,
                        f: int, seed: int, array_backend: str = "numpy",
                        dtype: str = "float64") -> Dict:
    """The exact configuration a cell's cache key is derived from.

    Excludes execution details (batch-vs-sequential engine, worker count,
    chunking, timeout, retries) on purpose: the batch engine is
    bit-identical to the sequential runner and the resilience machinery
    only re-executes pure work, so none of them can change the result.

    A non-default ``array_backend`` or ``dtype`` *does* enter the key:
    tolerance-class backends and float32 produce different (close, not
    identical) numbers, so their cells must not collide with the
    bit-identity-pinned default entries. The defaults are omitted rather
    than written as explicit keys, keeping every pre-existing cache entry
    and manifest valid.
    """
    payload = {
        "kind": "regression-dgd",
        "version": 1,
        **grid_fields,
        "filter": filter_name,
        "attack": attack_name,
        "f": f,
        "seed": seed,
    }
    if array_backend != "numpy":
        payload["array_backend"] = array_backend
    if dtype != "float64":
        payload["dtype"] = dtype
    return payload


def _valid_cell_payload(payload) -> bool:
    """Does a cache document have the shape a cell payload must have?

    Guards the read path beyond the checksum: a legacy (pre-checksum)
    entry has no digest to verify, and single-bit corruption of a wrapper
    can demote a checksummed document to an apparently-legacy one — the
    shape check rejects both instead of poisoning results.
    """
    if not isinstance(payload, dict):
        return False
    if "error" in payload:
        return isinstance(payload["error"], str)
    return all(key in payload for key in ("final_error", "final_estimate",
                                          "estimates"))


def _load_cache_entry(path: str) -> Optional[Dict]:
    """Read one cache entry; ``None`` means corrupt/invalid (recompute).

    Never raises on bad content: truncated JSON, checksum mismatches, and
    shape violations all report as a miss, and the damaged file is removed
    so the rewrite is clean.
    """
    try:
        payload = read_json_checked(path)
    except CacheIntegrityError:
        payload = None
    if payload is not None and not _valid_cell_payload(payload):
        payload = None
    if payload is None:
        try:
            os.remove(path)
        except OSError:
            pass
        return None
    return payload


def _run_regression_group(task: Dict) -> List[Dict]:
    """Execute one (filter, attack, f) group across its seeds.

    Module-level (hence picklable) pool worker. Consults the cell cache
    first — discarding corrupt entries — batches all missing seeds through
    :func:`run_dgd_batch`, and writes fresh entries back atomically with
    checksums. Returns one JSON-safe payload per seed, in the group's seed
    order; each payload carries ``cache_state`` (``"hit"``, ``"miss"``, or
    ``"corrupt"``) so the parent can log cache events.
    """
    from repro.attacks.registry import make_attack
    from repro.observability import Telemetry, TraceContext
    from repro.problems.linear_regression import make_redundant_regression
    from repro.system.batch import run_dgd_batch
    from repro.system.runner import DGDConfig, run_dgd

    grid_fields = task["grid_fields"]
    filter_name, attack_name, f = task["filter"], task["attack"], task["f"]
    seeds, cache_dir = task["seeds"], task["cache_dir"]
    backend = task["backend"]
    array_backend = task.get("array_backend", "numpy")
    dtype = task.get("dtype", "float64")
    telemetry_dir = task.get("telemetry_dir")
    trace_payload = task.get("trace")

    payloads: List[Optional[Dict]] = [None] * len(seeds)
    cache_states: List[str] = ["miss"] * len(seeds)
    missing: List[int] = []
    for index, seed in enumerate(seeds):
        if cache_dir is not None:
            key = _config_hash(
                _cell_cache_payload(grid_fields, filter_name, attack_name, f,
                                    seed, array_backend, dtype)
            )
            path = os.path.join(cache_dir, f"{key}.json")
            if os.path.exists(path):
                payload = _load_cache_entry(path)
                if payload is not None:
                    payload["cached"] = True
                    payload["cache_state"] = "hit"
                    payloads[index] = payload
                    continue
                cache_states[index] = "corrupt"
        missing.append(index)

    if missing:
        instance = make_redundant_regression(
            n=grid_fields["n"],
            d=grid_fields["d"],
            f=grid_fields["redundancy_f"],
            noise_std=grid_fields["noise_std"],
            seed=grid_fields["instance_seed"],
        )
        faulty_ids = tuple(range(f))
        honest = [i for i in range(grid_fields["n"]) if i not in faulty_ids]
        x_H = instance.honest_minimizer(honest)
        behavior = make_attack(attack_name) if f > 0 else None
        config = DGDConfig(
            iterations=grid_fields["iterations"],
            gradient_filter=filter_name,
            faulty_ids=faulty_ids,
            f=f if f > 0 else None,
            x0=grid_fields["x0"],
            seed=0,
        )
        missing_seeds = [seeds[i] for i in missing]
        telemetry = None
        if telemetry_dir is not None:
            # One JSONL stream per (f, filter, attack) group, produced by
            # the worker that executes it (safe under the process pool:
            # no two workers share a group, hence a file). Cached cells
            # emit nothing — telemetry records actual execution.
            stream = os.path.join(
                telemetry_dir, f"f{f}-{filter_name}-{attack_name}.jsonl"
            )
            group_name = f"group-f{f}-{filter_name}-{attack_name}"
            group_trace = None
            if trace_payload is not None:
                # The chunk context travelled across the process boundary
                # inside the task payload; derive this group's span under
                # it so the worker's stream links back to the job's tree.
                group_trace = TraceContext.from_payload(
                    trace_payload
                ).child(group_name)
            telemetry = Telemetry(
                stream,
                byzantine_ids=faulty_ids,
                reference_point=x_H,
                trace=group_trace,
                trace_name=group_name if group_trace is not None else None,
            )
        try:
            if backend == "batch":
                traces = run_dgd_batch(
                    instance.costs, behavior, config, seeds=missing_seeds,
                    telemetry=telemetry, backend=array_backend,
                    dtype=None if dtype == "float64" else dtype,
                )
            else:
                traces = []
                for run_index, s in enumerate(missing_seeds):
                    if telemetry is not None:
                        telemetry.emit("run_start", run=run_index, seed=int(s))
                    traces.append(
                        run_dgd(
                            instance.costs, behavior, config, seed=s,
                            telemetry=telemetry,
                        )
                    )
            fresh = []
            for trace in traces:
                final_estimate = trace.final_estimate
                fresh.append(
                    {
                        "final_error": float(np.linalg.norm(final_estimate - x_H)),
                        "final_estimate": final_estimate.tolist(),
                        "estimates": trace.estimates.tolist(),
                        "cached": False,
                    }
                )
        except (InvalidParameterError, ReproError) as exc:
            # Infeasible configuration (e.g. Bulyan's n >= 4f + 3): the
            # whole group fails identically for every seed.
            fresh = [
                {"error": f"{type(exc).__name__}: {exc}", "cached": False}
                for _ in missing_seeds
            ]
        finally:
            if telemetry is not None:
                telemetry.close()  # flush the trailing counters + summary
        for index, payload in zip(missing, fresh):
            payload["cache_state"] = cache_states[index]
            payloads[index] = payload
            if cache_dir is not None:
                key = _config_hash(
                    _cell_cache_payload(
                        grid_fields, filter_name, attack_name, f, seeds[index],
                        array_backend, dtype,
                    )
                )
                stored = dict(payload)
                stored.pop("cached", None)
                stored.pop("cache_state", None)
                write_json_atomic(os.path.join(cache_dir, f"{key}.json"), stored)

    return payloads  # type: ignore[return-value]


class _PoolUnavailable(ReproError):
    """Internal: the process pool could not be (re)created at all.

    Distinct from chunk-level failures so :meth:`SweepEngine.map` can
    degrade the whole map to in-process execution without accidentally
    swallowing worker exceptions (note ``TimeoutError`` is an ``OSError``
    subclass on modern Pythons — a broad ``except OSError`` around the
    pool loop would eat quarantine re-raises).
    """


class SharedProcessPool:
    """One process pool multiplexed across many :class:`SweepEngine` owners.

    The long-lived aggregation service runs one engine per job so that each
    job keeps its own event/telemetry streams and cache namespace, but a
    persistent server must not spawn one worker fleet per job. This handle
    is the explicit serialization layer: engines that share it take turns
    using one :class:`~concurrent.futures.ProcessPoolExecutor` — an engine
    acquires exclusive use for the duration of one pooled ``map``, and the
    failure ladder's kill/rebuild goes through :meth:`invalidate` so a
    rebuilt pool is visible to every sharer. Serialization makes the
    failure ladder sound under sharing: a pool is only ever killed by the
    engine currently using it, so no other engine can have futures in
    flight on the executor being torn down.

    Workers are spawned lazily on first use and survive between jobs
    (amortizing process start-up across the service's lifetime). After
    :meth:`close`, engines fall back to in-process execution — the same
    degradation path they take when a pool cannot be created at all.
    """

    def __init__(self, max_workers: Optional[int] = None):
        if max_workers is not None and max_workers <= 0:
            raise InvalidParameterError(
                f"max_workers must be positive, got {max_workers}"
            )
        self._max_workers = max_workers
        self._lock = threading.RLock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False
        self._rebuilds = 0

    @property
    def max_workers(self) -> Optional[int]:
        return self._max_workers

    @property
    def rebuilds(self) -> int:
        """How many times the failure ladder has replaced the executor."""
        return self._rebuilds

    @property
    def live_workers(self) -> int:
        """Count of worker processes currently alive.

        Deliberately lock-free: the health endpoints scrape this while an
        engine may hold the pool lock for an entire pooled map, and a
        monitoring read must never block on (or be blocked by) job
        execution. The racy read is fine — a worker set mid-churn yields
        a momentarily stale count, never a crash.
        """
        pool = self._pool
        if pool is None:
            return 0
        processes = getattr(pool, "_processes", None)
        if not processes:
            return 0
        try:
            return sum(1 for p in list(processes.values()) if p.is_alive())
        except Exception:  # pragma: no cover - interpreter-internal churn
            return 0

    def acquire(self) -> None:
        """Take exclusive use of the pool (blocks other sharers)."""
        self._lock.acquire()

    def release(self) -> None:
        self._lock.release()

    def get(self, workers: int) -> ProcessPoolExecutor:
        """The live executor, created lazily. Caller must hold the lock."""
        if self._closed:
            raise _PoolUnavailable("shared pool is closed")
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self._max_workers or workers
                )
            except (OSError, RuntimeError) as exc:
                raise _PoolUnavailable(f"{type(exc).__name__}: {exc}") from exc
        return self._pool

    def invalidate(self) -> None:
        """Kill the current executor so the next :meth:`get` rebuilds it.

        Called by the failure ladder after a hang or worker crash poisons
        the pool. Caller must hold the lock.
        """
        if self._pool is not None:
            SweepEngine._kill_pool(self._pool)
            self._pool = None
            self._rebuilds += 1

    def close(self) -> None:
        """Shut the pool down for good; engines degrade to in-process."""
        with self._lock:
            self._closed = True
            if self._pool is not None:
                SweepEngine._kill_pool(self._pool)
                self._pool = None

    def __enter__(self) -> "SharedProcessPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _quarantined_group(exc: BaseException, task: Dict) -> List[Dict]:
    """Per-seed error payloads for a group the engine gave up on."""
    message = f"quarantined: {type(exc).__name__}: {exc}"
    return [
        {"error": message, "quarantined": True, "cached": False,
         "cache_state": "miss"}
        for _ in task["seeds"]
    ]


class SweepEngine:
    """Chunked, fault-tolerant process-pool executor with per-cell caching.

    Parameters
    ----------
    parallel:
        Fan work out over a process pool; ``False`` executes in-process
        (still batched, still cached, still retried/quarantined).
    max_workers:
        Pool size; defaults to ``os.cpu_count()`` capped at the number of
        scheduled chunks.
    cache_dir:
        Directory for the on-disk trace cache; ``None`` disables caching.
    backend:
        ``"batch"`` (vectorized multi-run engine, default) or
        ``"sequential"`` — numerically identical, the switch exists for
        benchmarking and for paranoia-mode verification.
    array_backend:
        Array backend name for the batch engine's hot kernels (see
        :mod:`repro.system.backends`); ``"numpy"`` (default) keeps the
        bit-identity contract, other registered backends run under the
        tolerance contract and get their own cache-key namespace.
        Requires ``backend="batch"``. Resolved eagerly so a missing
        optional dependency fails at engine construction, not mid-grid.
    dtype:
        ``"float64"`` (default) or ``"float32"`` — the batch engine's
        working precision. Float32 results live under their own cache
        keys, like non-default array backends. Requires
        ``backend="batch"``.
    timeout:
        Per-chunk wall-clock budget in seconds (pool mode only). A chunk
        exceeding it counts as one failed attempt; the pool is killed and
        rebuilt so a hung worker cannot wedge the grid. ``None`` waits
        forever (the pre-hardening behaviour).
    retries:
        Failed attempts allowed per chunk beyond the first, and per item
        on the in-process path. Exhausting them quarantines (with
        ``on_item_error``) or re-raises.
    retry_backoff:
        Base of the exponential backoff: retry ``k`` sleeps
        ``retry_backoff · 2^(k-1) · u`` seconds with jitter
        ``u ∈ [0.5, 1.5)`` to decorrelate contending retries.
    events:
        A :class:`SweepEvents` instance, a path for a JSONL event file, or
        ``None`` for an in-memory log (always available via ``.events``).
    worker_wrapper:
        Applied to the worker before execution — the seam the chaos suite
        uses to wrap grid workers in
        :class:`repro.system.faultinjection.FaultyWorker` without patching
        engine internals.
    chunk_size:
        Default chunk size for :meth:`map` (``None`` auto-sizes to a few
        chunks per worker).
    telemetry_dir:
        Directory for per-group run-telemetry JSONL streams. When set,
        every recomputed (f, filter, attack) group writes
        ``f{f}-{filter}-{attack}.jsonl`` with one ``"round"`` record per
        round per run slice (kept/eliminated agents, gradient norms, step
        size, distance to the group's honest minimizer) in the same event
        schema as :class:`SweepEvents`. Cache hits produce no telemetry —
        the stream records actual execution. ``None`` (default) disables.
    pool:
        A :class:`SharedProcessPool` to execute on instead of a private
        per-``map`` pool. Engines sharing one handle take turns using its
        workers (the aggregation service's execution substrate: one worker
        fleet, many per-job engines, each keeping its own events/telemetry
        streams and cache keys). ``max_workers`` is ignored when a shared
        pool is given — the handle fixes the fleet size.

    Thread safety
    -------------
    :meth:`map` (and everything built on it) is serialized by an internal
    lock, so concurrent callers — the service's job slots, or any two
    threads sharing one engine — are safe and produce results bit-identical
    to running the same calls sequentially. Cross-engine pool sharing is
    serialized by the :class:`SharedProcessPool` handle itself.
    """

    def __init__(
        self,
        parallel: bool = True,
        max_workers: Optional[int] = None,
        cache_dir: Optional[str] = None,
        backend: str = "batch",
        timeout: Optional[float] = None,
        retries: int = 2,
        retry_backoff: float = 0.05,
        events: Union[SweepEvents, str, None] = None,
        worker_wrapper: Optional[Callable[[Callable], Callable]] = None,
        chunk_size: Optional[int] = None,
        telemetry_dir: Optional[str] = None,
        array_backend: str = "numpy",
        dtype: str = "float64",
        pool: Optional[SharedProcessPool] = None,
        trace: Optional[TraceContext] = None,
    ):
        if backend not in ("batch", "sequential"):
            raise InvalidParameterError(
                f"backend must be 'batch' or 'sequential', got {backend!r}"
            )
        if dtype not in ("float64", "float32"):
            raise InvalidParameterError(
                f"dtype must be 'float64' or 'float32', got {dtype!r}"
            )
        if backend == "sequential" and (array_backend != "numpy" or dtype != "float64"):
            raise InvalidParameterError(
                "array_backend/dtype apply to the batch engine only; "
                "backend='sequential' supports neither"
            )
        if array_backend != "numpy":
            # Fail fast (unknown name or missing optional dependency) at
            # construction instead of inside every pool worker.
            from repro.system.backends import resolve_backend

            resolve_backend(array_backend)
        if max_workers is not None and max_workers <= 0:
            raise InvalidParameterError(
                f"max_workers must be positive, got {max_workers}"
            )
        if timeout is not None and timeout <= 0:
            raise InvalidParameterError(f"timeout must be positive, got {timeout}")
        if retries < 0:
            raise InvalidParameterError(f"retries must be non-negative, got {retries}")
        if retry_backoff < 0:
            raise InvalidParameterError(
                f"retry_backoff must be non-negative, got {retry_backoff}"
            )
        self._parallel = bool(parallel)
        self._max_workers = max_workers
        self._cache_dir = cache_dir
        self._backend = backend
        self._timeout = timeout
        self._retries = int(retries)
        self._retry_backoff = float(retry_backoff)
        self._worker_wrapper = worker_wrapper
        self._chunk_size = chunk_size
        self._events = events if isinstance(events, SweepEvents) else SweepEvents(events)
        self._warned: set = set()
        self._retry_rng = random.Random(0x5EED)
        self._shared_pool = pool
        self._map_lock = threading.RLock()
        self._telemetry_dir = telemetry_dir
        self._array_backend = str(array_backend)
        self._dtype = dtype
        self._trace = trace
        self._trace_map_seq = 0
        if trace is not None:
            self._events.bind_trace(trace)
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)
        if telemetry_dir is not None:
            os.makedirs(telemetry_dir, exist_ok=True)

    @property
    def parallel(self) -> bool:
        return self._parallel

    @property
    def shared_pool(self) -> Optional[SharedProcessPool]:
        return self._shared_pool

    @property
    def cache_dir(self) -> Optional[str]:
        return self._cache_dir

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def events(self) -> SweepEvents:
        return self._events

    @property
    def telemetry_dir(self) -> Optional[str]:
        return self._telemetry_dir

    @property
    def array_backend(self) -> str:
        return self._array_backend

    @property
    def dtype(self) -> str:
        return self._dtype

    @property
    def trace(self) -> Optional[TraceContext]:
        return self._trace

    # ------------------------------------------------------------------
    # Trace propagation
    # ------------------------------------------------------------------

    def _trace_chunk_contexts(
        self, count: int
    ) -> Optional[List[TraceContext]]:
        """Per-chunk child contexts for one ``map`` call, or ``None``.

        The map sequence number keys the derivation, so two maps on one
        engine (a run plus its resume) produce distinct chunk span ids
        while a *retry* of the same chunk within one map re-derives the
        same id (the reconstructor deduplicates re-executions).
        """
        if self._trace is None:
            return None
        self._trace_map_seq += 1
        seq = self._trace_map_seq
        return [
            self._trace.child(f"chunk-{index}", index=seq)
            for index in range(count)
        ]

    @staticmethod
    def _inject_trace(items: Sequence, context: TraceContext) -> List:
        """Copy dict items with the chunk context in their payload."""
        payload = context.to_payload()
        return [
            {**item, "trace": payload}
            if isinstance(item, dict) and "trace" not in item
            else item
            for item in items
        ]

    def _emit_chunk_span(
        self, context: TraceContext, index: int, ts: float, seconds: float
    ) -> None:
        self._events.emit(
            "span",
            name=f"chunk-{index}",
            seconds=seconds,
            ts=ts,
            **context.fields(),
        )

    # ------------------------------------------------------------------
    # Resilience plumbing
    # ------------------------------------------------------------------

    def _warn_once(self, key: str, message: str) -> None:
        """Emit ``message`` at most once per engine instance per ``key``."""
        if key in self._warned:
            return
        self._warned.add(key)
        warnings.warn(message, stacklevel=3)

    def _backoff(self, attempt: int) -> None:
        if self._retry_backoff <= 0:
            return
        jitter = 0.5 + self._retry_rng.random()
        time.sleep(self._retry_backoff * (2 ** max(0, attempt - 1)) * jitter)

    def _new_pool(self, workers: int) -> ProcessPoolExecutor:
        try:
            return ProcessPoolExecutor(max_workers=workers)
        except (OSError, RuntimeError) as exc:
            raise _PoolUnavailable(f"{type(exc).__name__}: {exc}") from exc

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down without waiting on hung or dead workers."""
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - shutdown is best-effort
            pass
        for process in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                process.kill()
            except Exception:  # pragma: no cover - already dead
                pass

    def _run_items_inprocess(
        self,
        worker: Callable,
        items: Sequence,
        on_item_error: Optional[Callable],
        retries: int,
    ) -> List:
        """Sequential per-item execution with retry and quarantine."""
        results: List = []
        for item in items:
            attempt = 0
            while True:
                try:
                    results.append(worker(item))
                    break
                except Exception as exc:
                    attempt += 1
                    if attempt > retries:
                        if on_item_error is None:
                            raise
                        self._events.emit(
                            "quarantine",
                            error=f"{type(exc).__name__}: {exc}",
                            attempts=attempt,
                        )
                        results.append(on_item_error(exc, item))
                        break
                    self._events.emit(
                        "item_retry", attempt=attempt,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                    self._backoff(attempt)
        return results

    def _quarantine_chunk(
        self,
        chunk: Sequence,
        exc: BaseException,
        on_item_error: Optional[Callable],
        chunk_index: int,
    ) -> List:
        if on_item_error is None:
            raise exc
        out = []
        for item in chunk:
            self._events.emit(
                "quarantine", chunk=chunk_index,
                error=f"{type(exc).__name__}: {exc}",
            )
            out.append(on_item_error(exc, item))
        return out

    def _acquire_pool(self, workers: int) -> ProcessPoolExecutor:
        """A live executor: the shared handle's (lazily built) or a private one."""
        if self._shared_pool is not None:
            return self._shared_pool.get(workers)
        return self._new_pool(workers)

    def _rebuild_pool(self, pool: ProcessPoolExecutor,
                      workers: int) -> ProcessPoolExecutor:
        """Replace a poisoned executor after a hang or worker crash."""
        if self._shared_pool is not None:
            self._shared_pool.invalidate()
            return self._shared_pool.get(workers)
        self._kill_pool(pool)
        return self._new_pool(workers)

    def _release_pool(self, pool: Optional[ProcessPoolExecutor]) -> None:
        """Private pools die with their map; shared workers live on."""
        if self._shared_pool is None and pool is not None:
            self._kill_pool(pool)

    def _map_pooled(
        self,
        worker: Callable,
        chunks: List[Sequence],
        workers: int,
        on_item_error: Optional[Callable],
        chunk_contexts: Optional[List[TraceContext]] = None,
    ) -> List:
        """Pool execution of ``chunks`` with the retry/rebuild/quarantine ladder.

        Each round submits every pending chunk and collects results in
        order. The first timeout or pool break in a round marks the pool
        for rebuild: completed chunks are salvaged (a salvaged chunk that
        actually *failed* is charged an attempt — its exception must never
        vanish into the rebuild), everything still running is resubmitted
        to a fresh pool without charging an attempt — only chunks that
        demonstrably failed pay one, so an innocent chunk queued behind a
        hang is never quarantined for it. Every round charges at least one
        attempt to some chunk, so the loop terminates.
        """
        results: Dict[int, List] = {}
        attempts = [0] * len(chunks)
        pending = list(range(len(chunks)))
        if self._shared_pool is not None:
            self._shared_pool.acquire()
        pool = None
        try:
            pool = self._acquire_pool(workers)
            while pending:
                futures: Dict[int, object] = {}
                submitted_at: Dict[int, float] = {}
                submitted_ts: Dict[int, float] = {}
                rebuild = False
                next_round: List[int] = []

                def charge_failure(index: int, exc: BaseException, event: str,
                                   **extra) -> None:
                    attempts[index] += 1
                    self._events.emit(
                        event, chunk=index, attempt=attempts[index], **extra
                    )
                    if attempts[index] > self._retries:
                        results[index] = self._quarantine_chunk(
                            chunks[index], exc, on_item_error, index
                        )
                    else:
                        next_round.append(index)

                for index in pending:
                    if rebuild:
                        next_round.append(index)
                        continue
                    try:
                        submitted_at[index] = time.perf_counter()
                        if chunk_contexts is not None:
                            submitted_ts[index] = time.time()
                        futures[index] = pool.submit(_run_chunk, worker, chunks[index])
                    except Exception as exc:
                        rebuild = True
                        charge_failure(
                            index, exc, "chunk_crash",
                            error=f"{type(exc).__name__}: {exc}",
                        )
                for index in sorted(futures):
                    if rebuild:
                        # Salvage chunks that finished before the pool was
                        # marked dead; resubmit still-running ones,
                        # attempt-free. A chunk that is done but *failed*
                        # pays for its failure like any other: swallowing
                        # it here would let a deterministically-failing
                        # chunk loop through rebuilds forever without its
                        # exception ever surfacing or counting against
                        # ``retries``.
                        future = futures[index]
                        if future.done():
                            try:
                                results[index] = future.result(timeout=0)
                                elapsed = time.perf_counter() - submitted_at[index]
                                self._events.emit(
                                    "chunk_done", chunk=index,
                                    size=len(chunks[index]),
                                    attempt=attempts[index] + 1,
                                    elapsed=elapsed,
                                )
                                if chunk_contexts is not None:
                                    self._emit_chunk_span(
                                        chunk_contexts[index], index,
                                        submitted_ts[index], elapsed,
                                    )
                            except Exception as exc:
                                charge_failure(
                                    index, exc, "chunk_salvage_failed",
                                    error=f"{type(exc).__name__}: {exc}",
                                )
                            continue
                        next_round.append(index)
                        continue
                    try:
                        results[index] = futures[index].result(timeout=self._timeout)
                        elapsed = time.perf_counter() - submitted_at[index]
                        self._events.emit(
                            "chunk_done", chunk=index, size=len(chunks[index]),
                            attempt=attempts[index] + 1,
                            elapsed=elapsed,
                        )
                        if chunk_contexts is not None:
                            self._emit_chunk_span(
                                chunk_contexts[index], index,
                                submitted_ts[index], elapsed,
                            )
                    except PoolTimeoutError:
                        rebuild = True
                        charge_failure(
                            index,
                            TimeoutError(
                                f"chunk exceeded timeout={self._timeout}s"
                            ),
                            "chunk_timeout",
                            timeout=self._timeout,
                        )
                    except BrokenExecutor as exc:
                        rebuild = True
                        charge_failure(
                            index, exc, "chunk_crash",
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    except Exception as exc:
                        attempts[index] += 1
                        if attempts[index] > self._retries:
                            # Soft failure out of retries: isolate the poison
                            # item in-process (one attempt each).
                            self._events.emit(
                                "chunk_degraded", chunk=index,
                                error=f"{type(exc).__name__}: {exc}",
                            )
                            results[index] = self._run_items_inprocess(
                                worker, chunks[index], on_item_error, retries=0
                            )
                            if chunk_contexts is not None:
                                self._emit_chunk_span(
                                    chunk_contexts[index], index,
                                    submitted_ts[index],
                                    time.perf_counter() - submitted_at[index],
                                )
                        else:
                            self._events.emit(
                                "chunk_retry", chunk=index, attempt=attempts[index],
                                error=f"{type(exc).__name__}: {exc}",
                            )
                            next_round.append(index)
                if rebuild and next_round:
                    self._events.emit("pool_rebuild", pending=len(next_round))
                    pool = self._rebuild_pool(pool, workers)
                if next_round:
                    self._backoff(max(attempts[i] for i in next_round))
                pending = sorted(next_round)
        finally:
            self._release_pool(pool)
            if self._shared_pool is not None:
                self._shared_pool.release()
        return [item for index in range(len(chunks)) for item in results[index]]

    # ------------------------------------------------------------------
    # Public execution API
    # ------------------------------------------------------------------

    def map(
        self,
        worker: Callable,
        items: Sequence,
        chunk_size: Optional[int] = None,
        on_item_error: Optional[Callable] = None,
    ) -> List:
        """Apply a picklable ``worker`` to every item, preserving order.

        Items are scheduled in contiguous chunks (one pool task per chunk)
        so that fine-grained grids do not pay one IPC round-trip per cell.
        Chunks ride the failure ladder documented on the class: bounded
        retries with backoff, pool rebuild on timeout/crash, degradation
        to in-process per-item execution, and — when ``on_item_error`` is
        given — quarantine via ``on_item_error(exc, item)`` in place of the
        item's result. Without ``on_item_error`` a persistent failure
        re-raises after the retries are spent.

        Workers must be effectively idempotent: a chunk interrupted by a
        timeout or crash is re-executed from scratch.

        Thread-safe: concurrent calls are serialized on an internal lock
        (shared mutable state — the event log, the retry RNG, the pool —
        admits one map at a time), so racing callers see exactly the
        results of some sequential ordering of their calls.
        """
        with self._map_lock:
            return self._map_locked(worker, items, chunk_size, on_item_error)

    def _map_locked(
        self,
        worker: Callable,
        items: Sequence,
        chunk_size: Optional[int],
        on_item_error: Optional[Callable],
    ) -> List:
        items = list(items)
        if not items:
            return []
        if self._worker_wrapper is not None:
            worker = self._worker_wrapper(worker)
        use_pool = self._parallel and len(items) > 1
        if use_pool:
            try:
                pickle.dumps((worker, items))
            except Exception as exc:
                self._warn_once(
                    "unpicklable",
                    f"sweep work is not picklable ({type(exc).__name__}: {exc}); "
                    "running sequentially in-process",
                )
                self._events.emit(
                    "fallback", reason="unpicklable",
                    error=f"{type(exc).__name__}: {exc}",
                )
                use_pool = False
        if not use_pool:
            contexts = self._trace_chunk_contexts(1)
            if contexts is None:
                return self._run_items_inprocess(
                    worker, items, on_item_error, retries=self._retries
                )
            # Traced in-process execution is modelled as one chunk so the
            # span chain (engine -> chunk -> worker group) is identical
            # in shape to the pooled path.
            items = self._inject_trace(items, contexts[0])
            started_ts = time.time()
            started = time.perf_counter()
            results = self._run_items_inprocess(
                worker, items, on_item_error, retries=self._retries
            )
            self._emit_chunk_span(
                contexts[0], 0, started_ts, time.perf_counter() - started
            )
            return results
        workers = self._max_workers or os.cpu_count() or 1
        workers = max(1, min(workers, len(items)))
        if chunk_size is None:
            chunk_size = self._chunk_size
        if chunk_size is None:
            # Aim for a few chunks per worker so stragglers rebalance.
            chunk_size = max(1, -(-len(items) // (4 * workers)))
        chunks = [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]
        workers = min(workers, len(chunks))
        contexts = self._trace_chunk_contexts(len(chunks))
        if contexts is not None:
            chunks = [
                self._inject_trace(chunk, context)
                for chunk, context in zip(chunks, contexts)
            ]
            items = [item for chunk in chunks for item in chunk]
        try:
            return self._map_pooled(
                worker, chunks, workers, on_item_error,
                chunk_contexts=contexts,
            )
        except _PoolUnavailable as exc:
            self._warn_once(
                "pool-unavailable",
                f"process pool unavailable ({type(exc).__name__}: {exc}); "
                "running sequentially in-process",
            )
            self._events.emit(
                "fallback", reason="pool-unavailable",
                error=f"{type(exc).__name__}: {exc}",
            )
            return self._run_items_inprocess(
                worker, items, on_item_error, retries=self._retries
            )

    # ------------------------------------------------------------------
    # Grid execution, manifest, resume
    # ------------------------------------------------------------------

    def _grid_cells(self, grid: RegressionGrid) -> List[Dict]:
        """Flat cell descriptors (declaration order) with their cache keys."""
        seeds = grid.seeds()
        grid_fields = self._grid_fields(grid)
        cells = []
        for f in grid.fault_counts:
            for filter_name in grid.filters:
                for attack_name in grid.attacks:
                    for seed in seeds:
                        cells.append(
                            {
                                "filter": filter_name,
                                "attack": attack_name,
                                "f": f,
                                "seed": seed,
                                "key": _config_hash(
                                    _cell_cache_payload(
                                        grid_fields, filter_name, attack_name,
                                        f, seed, self._array_backend, self._dtype,
                                    )
                                ),
                            }
                        )
        return cells

    @staticmethod
    def _grid_fields(grid: RegressionGrid) -> Dict:
        return {
            "n": grid.n,
            "d": grid.d,
            "redundancy_f": grid.resolved_redundancy_f(),
            "noise_std": grid.noise_std,
            "instance_seed": grid.instance_seed,
            "iterations": grid.iterations,
            "x0": list(grid.x0) if grid.x0 is not None else None,
        }

    def _grid_hash(self, grid: RegressionGrid) -> str:
        payload = {
            **self._grid_fields(grid),
            "filters": list(grid.filters),
            "attacks": list(grid.attacks),
            "fault_counts": list(grid.fault_counts),
            "num_seeds": grid.num_seeds,
            "master_seed": grid.master_seed,
        }
        return _config_hash(payload)[:16]

    def manifest_path(self, grid: RegressionGrid) -> Optional[str]:
        """Where the grid's resume manifest lives (``None`` without a cache)."""
        if self._cache_dir is None:
            return None
        return os.path.join(self._cache_dir, f"manifest-{self._grid_hash(grid)}.json")

    def grid_progress(self, grid: RegressionGrid) -> Dict:
        """Completion state of ``grid`` against the on-disk cache.

        Counts a cell as completed only when its entry exists *and* passes
        the checksum/shape verification, so a corrupt entry reads as
        pending. Pure inspection: computes nothing, mutates nothing.
        """
        cells = self._grid_cells(grid)
        completed = 0
        pending: List[str] = []
        for cell in cells:
            done = False
            if self._cache_dir is not None:
                path = os.path.join(self._cache_dir, f"{cell['key']}.json")
                if os.path.exists(path):
                    try:
                        done = _valid_cell_payload(read_json_checked(path))
                    except CacheIntegrityError:
                        done = False
            if done:
                completed += 1
            else:
                pending.append(cell["key"])
        return {
            "grid_hash": self._grid_hash(grid),
            "total": len(cells),
            "completed": completed,
            "pending": pending,
        }

    def _write_manifest(self, grid: RegressionGrid,
                        results: Sequence["SweepCellResult"]) -> None:
        path = self.manifest_path(grid)
        if path is None:
            return
        cells = self._grid_cells(grid)
        failed = [
            cell["key"]
            for cell, result in zip(cells, results)
            if result.failed
        ]
        manifest = {
            "grid_hash": self._grid_hash(grid),
            "grid": {
                **self._grid_fields(grid),
                "filters": list(grid.filters),
                "attacks": list(grid.attacks),
                "fault_counts": list(grid.fault_counts),
                "num_seeds": grid.num_seeds,
                "master_seed": grid.master_seed,
            },
            "cells": [cell["key"] for cell in cells],
            "failed": failed,
        }
        write_json_atomic(path, manifest)
        self._events.emit(
            "manifest", path=path, cells=len(cells), failed=len(failed)
        )

    def run_regression_grid(self, grid: RegressionGrid) -> List[SweepCellResult]:
        """Execute every cell of a :class:`RegressionGrid`.

        Cells are grouped by (f, filter, attack); each group's seeds run as
        one batched DGD execution, and groups fan out over the pool through
        the failure ladder — a group that cannot be computed after all
        retries is quarantined into per-seed failed cells rather than
        aborting the grid. Results are ordered by (f, filter, attack,
        seed) — the grid's declaration order — independent of scheduling.
        With a cache directory configured, a resume manifest is written
        after every run.
        """
        started_ts = time.time()
        started = time.perf_counter()
        seeds = grid.seeds()
        grid_fields = self._grid_fields(grid)
        tasks = [
            {
                "grid_fields": grid_fields,
                "filter": filter_name,
                "attack": attack_name,
                "f": f,
                "seeds": seeds,
                "cache_dir": self._cache_dir,
                "backend": self._backend,
                "array_backend": self._array_backend,
                "dtype": self._dtype,
                "telemetry_dir": self._telemetry_dir,
            }
            for f in grid.fault_counts
            for filter_name in grid.filters
            for attack_name in grid.attacks
        ]
        grouped_payloads = self.map(
            _run_regression_group, tasks, on_item_error=_quarantined_group
        )
        results: List[SweepCellResult] = []
        for task, payloads in zip(tasks, grouped_payloads):
            for seed, payload in zip(seeds, payloads):
                cell = SweepCellResult(
                    filter_name=task["filter"],
                    attack_name=task["attack"],
                    f=task["f"],
                    seed=seed,
                    cached=bool(payload.get("cached", False)),
                    quarantined=bool(payload.get("quarantined", False)),
                )
                state = payload.get("cache_state")
                if self._cache_dir is not None and state is not None:
                    self._events.emit(
                        f"cache_{state}",
                        filter=cell.filter_name, attack=cell.attack_name,
                        f=cell.f, seed=cell.seed,
                    )
                if "error" in payload:
                    cell.error = payload["error"]
                    self._events.emit(
                        "cell_failed",
                        filter=cell.filter_name, attack=cell.attack_name,
                        f=cell.f, seed=cell.seed, error=cell.error,
                        quarantined=cell.quarantined,
                    )
                else:
                    cell.final_error = float(payload["final_error"])
                    cell.final_estimate = np.asarray(payload["final_estimate"])
                    cell.estimates = np.asarray(payload["estimates"])
                results.append(cell)
        self._write_manifest(grid, results)
        if self._trace is not None:
            # The engine's own context *is* the sweep span; emitting it
            # after the grid closes the engine node in the span tree.
            self._events.emit(
                "span",
                name="sweep",
                seconds=time.perf_counter() - started,
                ts=started_ts,
                **self._trace.fields(),
            )
        return results

    def resume(self, grid: RegressionGrid) -> List[SweepCellResult]:
        """Re-execute ``grid``, recomputing only cells not already cached.

        This is the recovery path after an interrupted run (killed
        process, power loss, quarantined chunks): completed cells are
        served from the checksum-verified cache — the event log records
        one ``cache_hit`` per served cell and one ``cache_miss`` per
        recomputed cell, so the "only the missing work was redone" claim
        is checkable — and the manifest is rewritten to reflect the new
        state. Requires a cache directory.
        """
        if self._cache_dir is None:
            raise InvalidParameterError(
                "resume() requires a cache_dir; without one there is nothing "
                "to resume from"
            )
        progress = self.grid_progress(grid)
        self._events.emit(
            "resume",
            grid_hash=progress["grid_hash"],
            total=progress["total"],
            completed=progress["completed"],
            missing=len(progress["pending"]),
        )
        return self.run_regression_grid(grid)


def parallel_map(
    worker: Callable,
    items: Sequence,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List:
    """Order-preserving map with optional process-pool fan-out.

    Convenience wrapper used by the sweep-style experiment modules: with
    ``parallel=False`` (the default everywhere) this is a plain sequential
    map, byte-for-byte the old behaviour. Failures propagate immediately
    (``retries=0``) — experiment modules that want the resilience ladder
    construct a :class:`SweepEngine` explicitly.
    """
    engine = SweepEngine(parallel=parallel, max_workers=max_workers, retries=0)
    return engine.map(worker, items, chunk_size=chunk_size)


def summarize_grid(results: Sequence[SweepCellResult]) -> ExperimentResult:
    """Aggregate grid cells into a per-(f, filter, attack) summary table."""
    groups: Dict[Tuple[int, str, str], List[SweepCellResult]] = {}
    for cell in results:
        groups.setdefault((cell.f, cell.filter_name, cell.attack_name), []).append(cell)
    summary = ExperimentResult(
        experiment_id="SWEEP",
        title="Sweep grid summary",
        headers=["f", "filter", "attack", "seeds", "mean error", "std", "cached"],
    )
    for (f, filter_name, attack_name), cells in sorted(groups.items()):
        failed = [c for c in cells if c.failed]
        if failed:
            summary.rows.append(
                [f, filter_name, attack_name, len(cells), "n/a", "n/a",
                 sum(c.cached for c in cells)]
            )
            continue
        errors = np.asarray([c.final_error for c in cells])
        summary.rows.append(
            [f, filter_name, attack_name, len(cells),
             float(errors.mean()), float(errors.std()),
             sum(c.cached for c in cells)]
        )
    return summary
