"""E13 — Table 8: empirical worst-case certification of the filters.

For each filter, run the φ-minimizing best-response adversary (which knows
the filter, the honest gradients, and the honest minimizer, and plays the
per-round forged gradient minimizing the convergence inner product
``φ_t = ⟨x^t − x_H, GradFilter(·)⟩``) and compare the resulting error
against the strongest *fixed* attack from the standard battery.

Two regimes are certified:

- the paper instance (``n = 6, f = 1``), where ``α = 1 − (f/n)(1 + 2μ/γ)``
  is *negative* — the CGE sufficient condition is violated, and indeed the
  best-response adversary finds errors far beyond any fixed attack against
  CGE (while CWTM/median hold);
- a large instance (``n = 15, f = 1``) with ``α > 0`` — the best-response
  adversary cannot move CGE beyond its fault-free optimization floor,
  an empirical validation that the condition is load-bearing.

Plain averaging is driven toward the projection boundary in both regimes.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.aggregators.registry import make_filter
from repro.analysis.metrics import final_error
from repro.analysis.reporting import ExperimentResult
from repro.attacks.best_response import PhiMinimizingAttack
from repro.attacks.registry import make_attack
from repro.core.conditions import cge_alpha, regularity_of_quadratics
from repro.core.redundancy import measure_redundancy_margin
from repro.experiments.common import paper_setup
from repro.problems.linear_regression import make_redundant_regression
from repro.system.runner import run_dgd
from repro.utils.rng import SeedLike

_FIXED_ATTACKS = ("gradient-reverse", "random", "sign-flip", "zero", "alie", "ipm")


def _certify(instance, filters, iterations, seed, rows, regime_label):
    faulty = (0,)
    honest = [i for i in range(instance.n) if i not in faulty]
    x_H = instance.honest_minimizer(honest)
    constants = regularity_of_quadratics(instance.costs, 1, honest=honest)
    alpha = cge_alpha(instance.n, 1, constants.mu, constants.gamma)
    for filter_name in filters:
        worst_fixed = 0.0
        worst_name = "(none)"
        for attack_name in _FIXED_ATTACKS:
            trace = run_dgd(
                instance.costs,
                make_attack(attack_name),
                gradient_filter=filter_name,
                faulty_ids=faulty,
                iterations=iterations,
                seed=seed,
            )
            error = final_error(trace, x_H)
            if error > worst_fixed:
                worst_fixed = error
                worst_name = attack_name
        adversary = PhiMinimizingAttack(make_filter(filter_name, f=1), x_H)
        trace = run_dgd(
            instance.costs,
            adversary,
            gradient_filter=filter_name,
            faulty_ids=faulty,
            iterations=iterations,
            seed=seed,
        )
        best_response = final_error(trace, x_H)
        rows.append(
            [regime_label, round(alpha, 3), filter_name, worst_name,
             worst_fixed, best_response]
        )
    return alpha


def run_worst_case_certification(
    filters: Sequence[str] = ("cge", "cwtm", "median", "average"),
    iterations: int = 400,
    noise_std: float = 0.02,
    seed: SeedLike = 20200803,
) -> ExperimentResult:
    """Regenerate Table 8 (best-response vs fixed-attack errors per filter)."""
    result = ExperimentResult(
        experiment_id="E13",
        title="Empirical worst-case certification (phi-minimizing best response)",
        headers=[
            "regime", "alpha", "filter", "worst fixed attack",
            "worst fixed error", "best-response error",
        ],
    )
    small = paper_setup(noise_std=noise_std, seed=seed)
    _certify(small, filters, iterations, seed, result.rows, "n=6 (paper)")
    large = make_redundant_regression(n=15, d=2, f=1, noise_std=0.0, seed=2)
    _certify(large, filters, iterations, seed, result.rows, "n=15")
    margin = measure_redundancy_margin(small.costs, 1).margin
    result.notes.append(f"paper-instance redundancy margin eps = {margin:.4f}")
    result.notes.append(
        "expected shape: with alpha < 0 (n=6) the best-response adversary "
        "finds CGE errors well beyond any fixed attack; with alpha > 0 "
        "(n=15) it cannot move CGE beyond the optimization floor — the "
        "paper's sufficient condition is empirically load-bearing; plain "
        "averaging is driven toward the projection boundary in both regimes"
    )
    return result
