"""E12 — Table 7: the CWTM condition's dimension dependence.

The trimmed-mean filter's guarantee requires the gradient-skew constant to
satisfy ``λ < γ / (μ √d)`` — a threshold that *shrinks* with the problem
dimension while the skew of a fixed cost family stays flat. The sweep uses
the family where the skew is exactly controllable: quadratics
``Q_i(x) = w_i ||x − c||²`` with a **common** target ``c`` and per-agent
weights ``w_i ∈ [1 − δ, 1 + δ]``. Then

- ``∇Q_i(x) = 2 w_i (x − c)`` are parallel, so the skew is the weight
  spread ``λ = (w_max − w_min) / w_max`` — independent of ``d`` and of
  where it is measured;
- ``μ = 2 w_max``, ``γ`` is the smallest honest-average weight (×2); and
- the common minimizer makes the family exactly 2f-redundant (margin 0),
  so the guaranteed radius is 0 wherever the condition holds.

Reported per dimension: threshold, measured λ, the condition's verdict,
the guaranteed radius, and the empirical CWTM error under attack — which
stays small even after the verdict flips (the condition is sufficient, not
necessary).
"""

from __future__ import annotations

from math import inf
from typing import Sequence

import numpy as np

from repro.analysis.metrics import final_error
from repro.analysis.reporting import ExperimentResult
from repro.analysis.theory import guarantee_for_cwtm
from repro.attacks.registry import make_attack
from repro.experiments.sweep import parallel_map
from repro.optimization.cost_functions import TranslatedQuadratic
from repro.optimization.projections import BallSet
from repro.system.runner import run_dgd
from repro.utils.rng import SeedLike


def _weighted_family(n: int, d: int, weight_spread: float):
    """``n`` quadratics with a common target and weights in ``[1−δ, 1+δ]``."""
    target = np.ones(d)
    weights = 1.0 + weight_spread * np.linspace(-1.0, 1.0, n)
    costs = [TranslatedQuadratic(target, weight=float(w)) for w in weights]
    return costs, target


def _dimension_row(task: dict) -> list:
    """One dimension's guarantee + attacked run (pool worker)."""
    d, n, f = task["d"], task["n"], task["f"]
    costs, target = _weighted_family(n, d, task["weight_spread"])
    honest = list(range(f, n))
    region = BallSet(np.zeros(d), 5.0)
    guarantee = guarantee_for_cwtm(costs, f, region, honest=honest, seed=task["seed"])
    trace = run_dgd(
        costs,
        make_attack("gradient-reverse"),
        gradient_filter="cwtm",
        faulty_ids=tuple(range(f)),
        iterations=task["iterations"],
        seed=task["seed"],
    )
    error = final_error(trace, target)
    return [
        d,
        guarantee.skew,
        guarantee.skew_threshold,
        "holds" if guarantee.applicable else "fails",
        guarantee.error_radius if guarantee.error_radius != inf else "inf",
        error,
    ]


def run_cwtm_dimension_sweep(
    dimensions: Sequence[int] = (2, 4, 9, 16, 36),
    n: int = 8,
    f: int = 1,
    weight_spread: float = 0.12,
    iterations: int = 800,
    seed: SeedLike = 23,
    parallel: bool = False,
    max_workers=None,
) -> ExperimentResult:
    """Regenerate Table 7 (CWTM guarantee vs dimension).

    ``parallel=True`` fans the dimensions over a process pool (each
    dimension's run is independent); results are identical.
    """
    result = ExperimentResult(
        experiment_id="E12",
        title=(
            f"CWTM condition vs dimension (n={n}, f={f}, "
            f"weight spread {weight_spread})"
        ),
        headers=[
            "d", "skew lambda", "threshold g/(m sqrt(d))", "condition",
            "guaranteed radius", "measured error",
        ],
    )
    tasks = [
        {
            "d": d, "n": n, "f": f, "weight_spread": weight_spread,
            "iterations": iterations, "seed": seed,
        }
        for d in dimensions
    ]
    result.rows.extend(
        parallel_map(_dimension_row, tasks, parallel=parallel, max_workers=max_workers)
    )
    result.notes.append(
        "expected shape: the threshold decays as 1/sqrt(d) while the measured "
        "skew stays flat, so the condition's verdict flips as d grows; the "
        "empirical CWTM error stays near zero throughout — the condition is "
        "sufficient, not necessary"
    )
    return result
