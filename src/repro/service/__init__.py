"""Long-lived aggregation service: ``repro serve``.

Everything else in this package turns the batch sweep machinery into a
persistent, multi-tenant job server — the "many small fault-tolerant DGD
jobs from many clients" shape the ROADMAP's north star calls for:

- :mod:`repro.service.jobs` — job specs (``run`` / ``sweep`` / ``bench``),
  durable job records, and the on-disk :class:`~repro.service.jobs.JobStore`
  whose atomically-written manifests make jobs survive ``kill -9``.
- :mod:`repro.service.queue` — the priority queue with admission control
  (bounded depth, per-client caps, structured 429-style rejection).
- :mod:`repro.service.executor` — executes claimed jobs on one shared
  :class:`~repro.experiments.sweep.SharedProcessPool` through per-job
  :class:`~repro.experiments.sweep.SweepEngine` instances, so every job
  keeps its own event/telemetry streams while the worker fleet and the
  sha256 cell cache are shared across tenants.
- :mod:`repro.service.server` — the asyncio HTTP front end (unix socket or
  TCP) with submit/status/stream/result endpoints.
- :mod:`repro.service.client` — the blocking client used by
  ``repro submit`` / ``repro status`` and the test/CI harnesses.
"""

from repro.service.client import ServiceClient
from repro.service.executor import JobExecutor
from repro.service.jobs import (
    JOB_KINDS,
    JOB_STATES,
    TERMINAL_STATES,
    JobRecord,
    JobSpec,
    JobStore,
    grid_from_params,
    validate_job_spec,
)
from repro.service.queue import JobQueue
from repro.service.server import ReproService, ServiceConfig

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobExecutor",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "ReproService",
    "ServiceClient",
    "ServiceConfig",
    "grid_from_params",
    "validate_job_spec",
]
