"""The ``repro serve`` asyncio HTTP service.

A deliberately small HTTP/1.1 implementation on ``asyncio`` streams — the
repository's only runtime dependency is numpy, so the wire layer is
stdlib-only. One request per connection (the server answers with
``Connection: close``), JSON bodies both ways, over a unix socket (the
default: filesystem permissions are the auth model) or a TCP port.

Endpoints
---------
``GET  /healthz``              liveness + job-state counts + cache/pool health
``GET  /stats``                queue/admission/pool/cache statistics
``GET  /metrics``              Prometheus text exposition (counters, gauges,
                               job-latency histogram)
``POST /jobs``                 submit a job; ``201`` with the record,
                               ``400`` on a malformed spec, ``429`` with a
                               structured admission rejection
``GET  /jobs``                 all job records (summaries)
``GET  /jobs/<id>``            one job record
``GET  /jobs/<id>/events``     the job's JSONL event/telemetry stream;
                               ``?follow=1`` keeps streaming until the job
                               reaches a terminal state
``GET  /jobs/<id>/result``     the result document (``409`` until terminal)
``POST /jobs/<id>/cancel``     cancel a queued job
``POST /shutdown``             graceful stop (used by tests and CI)

Concurrency model: handlers and the job-slot scheduler all run on the
event loop; every blocking step (job execution) is pushed to a worker
thread. Each slot drains the priority queue; each claimed job runs on a
per-job :class:`~repro.experiments.sweep.SweepEngine` multiplexed onto the
service-wide :class:`~repro.experiments.sweep.SharedProcessPool`.

Durability: job manifests are rewritten atomically at every transition, so
``kill -9`` at any instant is recoverable — on restart, jobs that were
queued or running are re-enqueued (in their original submission order,
bypassing admission control: they were already admitted once) and sweep
jobs resume against the shared cell cache, recomputing only cells that
never finished.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.exceptions import (
    AdmissionRejectedError,
    InvalidParameterError,
    ReproError,
)
from repro.observability.metrics import (
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
)
from repro.service.executor import JobExecutor
from repro.service.jobs import JobRecord, JobStore, validate_job_spec
from repro.service.queue import JobQueue
from repro.utils.atomicio import write_json_atomic

__all__ = ["ServiceConfig", "ReproService"]

#: Largest request body the server will read (a job spec is tiny).
_MAX_BODY = 1 << 20
#: Largest request line / header line.
_MAX_LINE = 16 * 1024


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` needs to come up."""

    state_dir: str
    socket_path: Optional[str] = None
    host: Optional[str] = None
    port: Optional[int] = None
    job_slots: int = 2
    pool_workers: Optional[int] = None
    max_queue: int = 64
    per_client: int = 8
    parallel: bool = True
    backend: str = "batch"
    timeout: Optional[float] = None
    retries: int = 2
    job_ttl: Optional[float] = None

    def __post_init__(self):
        tcp = self.host is not None or self.port is not None
        if self.socket_path and tcp:
            raise InvalidParameterError(
                "give either a unix socket path or host/port, not both"
            )
        if not self.socket_path and not tcp:
            self.socket_path = os.path.join(self.state_dir, "repro.sock")
        if tcp and (self.host is None or self.port is None):
            raise InvalidParameterError("TCP serving needs both host and port")
        if self.job_slots <= 0:
            raise InvalidParameterError(
                f"job_slots must be positive, got {self.job_slots}"
            )
        if self.job_ttl is not None and self.job_ttl < 0:
            raise InvalidParameterError(
                f"job_ttl must be >= 0 (seconds), got {self.job_ttl}"
            )


class ReproService:
    """The long-lived aggregation service (queue + executor + HTTP)."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        os.makedirs(config.state_dir, exist_ok=True)
        self.store = JobStore(config.state_dir)
        self.queue = JobQueue(
            max_depth=config.max_queue, per_client=config.per_client
        )
        self.metrics = MetricsRegistry()
        self.executor = JobExecutor(
            self.store,
            parallel=config.parallel,
            pool_workers=config.pool_workers,
            backend=config.backend,
            timeout=config.timeout,
            retries=config.retries,
            metrics=self.metrics,
        )
        self._requests_total = self.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, by top-level path and method",
        )
        self._jobs_submitted_total = self.metrics.counter(
            "repro_jobs_submitted_total",
            "Jobs accepted past admission control",
        )
        self._admission_rejected_total = self.metrics.counter(
            "repro_admission_rejected_total",
            "Job submissions rejected by admission control, by reason",
        )
        self._jobs_completed_total = self.metrics.counter(
            "repro_jobs_completed_total",
            "Jobs that reached a terminal state in a job slot, by state",
        )
        self._job_latency = self.metrics.histogram(
            "repro_job_latency_seconds",
            "Wall-clock seconds from job start to terminal state",
        )
        #: Live view of every job this process knows (id → record).
        self.records: Dict[str, JobRecord] = {}
        self.started_at = time.time()
        self.recovered: List[str] = []
        self._wake = asyncio.Event()
        self._stopping = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._slots: List[asyncio.Task] = []

    # -- lifecycle -----------------------------------------------------

    def recover(self) -> List[str]:
        """Rebuild the job table from disk; re-enqueue interrupted jobs.

        Returns the ids of jobs that were queued or running when the
        previous process died — in submission order, enqueued past
        admission control (they were admitted once; a restart must not
        drop accepted work).
        """
        recovered = []
        if self.config.job_ttl is not None:
            self.prune_jobs()
        for record in self.store.load_all():
            self.records[record.job_id] = record
            if record.state in ("queued", "running"):
                record.state = "queued"
                record.error = None
                self.store.save(record)
                self.queue.requeue(record)
                recovered.append(record.job_id)
        self.recovered = recovered
        return recovered

    async def start(self) -> None:
        self.recover()
        if self.config.socket_path:
            # A stale socket file from a killed predecessor must not block
            # the restart — by construction only one server owns state_dir.
            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.config.socket_path
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.config.host,
                port=self.config.port,
            )
        self._slots = [
            asyncio.create_task(self._job_slot(i))
            for i in range(self.config.job_slots)
        ]
        if self.config.job_ttl is not None:
            self._slots.append(asyncio.create_task(self._prune_loop()))
        if self.queue.depth:
            self._wake.set()

    async def stop(self) -> None:
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._slots:
            task.cancel()
        await asyncio.gather(*self._slots, return_exceptions=True)
        # Flush every live per-job telemetry stream before tearing the
        # pool down, then persist a final metrics snapshot: a SIGTERM
        # mid-job must not lose stream tails or the scrape state.
        self.executor.shutdown_flush()
        try:
            write_json_atomic(
                os.path.join(self.config.state_dir, "metrics.json"),
                self.metrics.snapshot(),
                checksum=False,
            )
        except OSError:
            pass  # snapshot is best-effort; shutdown must still finish
        self.executor.close()
        if self.config.socket_path:
            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass

    async def serve_forever(self) -> None:
        """Start, then block until :meth:`stop` (or ``POST /shutdown``)."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self._stopping.set)
            except (NotImplementedError, RuntimeError, OSError, ValueError):
                pass  # non-main threads / non-unix loops: ctrl-C still works
        try:
            await self._stopping.wait()
        finally:
            await self.stop()

    @property
    def bound_port(self) -> Optional[int]:
        """The TCP port actually bound (for ``port=0`` auto-assignment)."""
        if self._server is None or self.config.socket_path:
            return None
        return self._server.sockets[0].getsockname()[1]

    # -- job slots -----------------------------------------------------

    async def _job_slot(self, slot: int) -> None:
        """One consumer: claim → execute in a thread → persist the outcome."""
        while True:
            record = self.queue.pop()
            if record is None:
                self._wake.clear()
                await self._wake.wait()
                continue
            record.state = "running"
            record.attempts += 1
            record.started_at = time.time()
            self.store.save(record)
            try:
                summary = await asyncio.to_thread(self.executor.execute, record)
                record.state = "done"
                record.summary = dict(summary)
            except asyncio.CancelledError:
                # Shutdown mid-job: leave the manifest saying "running" so
                # the next recover() re-enqueues it.
                raise
            except BaseException as exc:
                record.state = "failed"
                record.error = f"{type(exc).__name__}: {exc}"
            record.finished_at = time.time()
            self.store.save(record)
            self.queue.finish(record)
            self._jobs_completed_total.inc(
                kind=record.spec.kind, state=record.state
            )
            if record.started_at is not None:
                self._job_latency.observe(
                    record.finished_at - record.started_at,
                    kind=record.spec.kind,
                )

    # -- job GC --------------------------------------------------------

    def prune_jobs(self) -> List[str]:
        """GC terminal jobs older than ``job_ttl``; returns pruned ids.

        Live state is kept consistent with the disk table: every pruned
        id is also dropped from the in-memory record map (pruned jobs are
        terminal, so they are never sitting in the queue or a job slot).
        """
        if self.config.job_ttl is None:
            return []
        pruned = self.store.prune(self.config.job_ttl)
        for job_id in pruned:
            self.records.pop(job_id, None)
        return pruned

    async def _prune_loop(self) -> None:
        """Periodic GC sweep; period tracks the ttl but stays responsive."""
        interval = max(min(self.config.job_ttl, 60.0), 0.05)
        while True:
            await asyncio.sleep(interval)
            try:
                self.prune_jobs()
            except OSError:
                pass  # a transient fs error must not kill the sweeper

    # -- HTTP plumbing -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, body = request
            await self._route(writer, method, path, query, body)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # a handler bug must not kill the server
            try:
                await self._respond(
                    writer, 500,
                    {"error": {"reason": "internal",
                               "detail": f"{type(exc).__name__}: {exc}"}},
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    @staticmethod
    async def _read_request(reader) -> Optional[Tuple[str, str, Dict, Dict]]:
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return None
        method, target = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(line) > _MAX_LINE:
                return None
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return None
        if content_length > _MAX_BODY:
            return None
        body: Dict = {}
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                body = {"__malformed__": True}
        split = urlsplit(target)
        query = {k: v[-1] for k, v in parse_qs(split.query).items()}
        return method, split.path, query, body

    @staticmethod
    async def _respond(writer, status: int, payload: Dict) -> None:
        reasons = {200: "OK", 201: "Created", 400: "Bad Request",
                   404: "Not Found", 405: "Method Not Allowed",
                   409: "Conflict", 429: "Too Many Requests",
                   500: "Internal Server Error"}
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    @staticmethod
    async def _respond_text(writer, status: int, body: str,
                            content_type: str) -> None:
        data = body.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {'OK' if status == 200 else 'Error'}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + data)
        await writer.drain()

    async def _respond_stream_head(self, writer) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head)
        await writer.drain()

    # -- routing -------------------------------------------------------

    async def _route(self, writer, method: str, path: str, query: Dict,
                     body: Dict) -> None:
        segments = [s for s in path.split("/") if s]
        self._requests_total.inc(
            path=segments[0] if segments else "/", method=method
        )
        if path == "/healthz" and method == "GET":
            await self._respond(writer, 200, self._healthz())
        elif path == "/stats" and method == "GET":
            await self._respond(writer, 200, self._stats())
        elif path == "/metrics" and method == "GET":
            self._refresh_gauges()
            await self._respond_text(
                writer, 200, self.metrics.render_prometheus(),
                PROMETHEUS_CONTENT_TYPE,
            )
        elif path == "/shutdown" and method == "POST":
            await self._respond(writer, 200, {"stopping": True})
            self._stopping.set()
        elif segments[:1] == ["jobs"] and len(segments) == 1:
            if method == "POST":
                await self._submit(writer, body)
            elif method == "GET":
                await self._respond(writer, 200, {
                    "jobs": [r.to_payload()
                             for r in sorted(self.records.values(),
                                             key=lambda r: r.seq)],
                })
            else:
                await self._respond(writer, 405, _err("method", method))
        elif segments[:1] == ["jobs"] and len(segments) >= 2:
            record = self.records.get(segments[1])
            if record is None:
                await self._respond(
                    writer, 404, _err("unknown-job", segments[1]))
                return
            if len(segments) == 2 and method == "GET":
                await self._respond(writer, 200, record.to_payload())
            elif segments[2:] == ["events"] and method == "GET":
                await self._stream_events(writer, record,
                                          follow=query.get("follow") == "1")
            elif segments[2:] == ["result"] and method == "GET":
                await self._result(writer, record)
            elif segments[2:] == ["cancel"] and method == "POST":
                await self._cancel(writer, record)
            else:
                await self._respond(writer, 405, _err("method", method))
        else:
            await self._respond(writer, 404, _err("unknown-path", path))

    # -- handlers ------------------------------------------------------

    def _job_states(self) -> Dict[str, int]:
        states: Dict[str, int] = {}
        for record in self.records.values():
            states[record.state] = states.get(record.state, 0) + 1
        return states

    def _cache_health(self) -> Dict:
        hits = self.executor.cache_hits
        misses = self.executor.cache_misses
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_ratio": (hits / total) if total else None,
        }

    def _pool_health(self) -> Dict:
        pool = self.executor.pool
        return {
            "shared": pool is not None,
            "max_workers": pool.max_workers if pool is not None else None,
            "rebuilds": pool.rebuilds if pool is not None else 0,
            "live_workers": pool.live_workers if pool is not None else 0,
        }

    def _refresh_gauges(self) -> None:
        """Set scrape-time gauges from live state, just before rendering."""
        gauges = self.metrics
        gauges.gauge(
            "repro_uptime_seconds", "Seconds since the service started",
        ).set(time.time() - self.started_at)
        gauges.gauge(
            "repro_queue_depth", "Jobs currently waiting in the queue",
        ).set(self.queue.depth)
        jobs = gauges.gauge(
            "repro_jobs", "Known jobs by state",
        )
        for state in ("queued", "running", "done", "failed", "cancelled"):
            jobs.set(0, state=state)
        for state, count in self._job_states().items():
            jobs.set(count, state=state)
        pool = self._pool_health()
        gauges.gauge(
            "repro_pool_rebuilds", "Shared process pool rebuilds",
        ).set(pool["rebuilds"])
        gauges.gauge(
            "repro_pool_live_workers", "Live shared-pool worker processes",
        ).set(pool["live_workers"])

    def _healthz(self) -> Dict:
        return {
            "ok": True,
            "uptime": time.time() - self.started_at,
            "jobs": self._job_states(),
            "recovered": list(self.recovered),
            "cache": self._cache_health(),
            "pool": self._pool_health(),
        }

    def _stats(self) -> Dict:
        cache_cells = sum(
            1 for name in os.listdir(self.executor.cache_dir)
            if name.endswith(".json") and not name.startswith("manifest")
        )
        cache = self._cache_health()
        cache.update({"dir": self.executor.cache_dir, "cells": cache_cells})
        return {
            "uptime": time.time() - self.started_at,
            "queue": self.queue.snapshot(),
            "job_slots": self.config.job_slots,
            "pool": self._pool_health(),
            "cache": cache,
        }

    async def _submit(self, writer, body: Dict) -> None:
        if body.get("__malformed__"):
            self._admission_rejected_total.inc(reason="malformed-json")
            await self._respond(
                writer, 400, _err("malformed-json", "request body"))
            return
        try:
            spec = validate_job_spec(body)
        except InvalidParameterError as exc:
            self._admission_rejected_total.inc(reason="invalid-spec")
            await self._respond(writer, 400, _err("invalid-spec", str(exc)))
            return
        record = self.store.create(spec)
        try:
            self.queue.submit(record)
        except AdmissionRejectedError as exc:
            self._admission_rejected_total.inc(reason=exc.reason)
            record.state = "cancelled"
            record.error = str(exc)
            record.finished_at = time.time()
            self.store.save(record)
            await self._respond(writer, 429, {
                "error": {
                    "reason": exc.reason,
                    "detail": exc.detail,
                    "limit": exc.limit,
                    "queue_depth": exc.queue_depth,
                },
            })
            return
        self.records[record.job_id] = record
        self._jobs_submitted_total.inc(kind=record.spec.kind)
        self._wake.set()
        await self._respond(writer, 201, record.to_payload())

    async def _result(self, writer, record: JobRecord) -> None:
        if record.state == "done":
            try:
                payload = await asyncio.to_thread(
                    self.store.load_result, record.job_id
                )
            except (ReproError, OSError) as exc:
                await self._respond(
                    writer, 500, _err("result-unreadable", str(exc)))
                return
            await self._respond(writer, 200, payload)
        elif record.state in ("failed", "cancelled"):
            await self._respond(writer, 409, _err(record.state,
                                                  record.error or ""))
        else:
            await self._respond(
                writer, 409, _err("not-finished", record.state))

    async def _cancel(self, writer, record: JobRecord) -> None:
        cancelled = self.queue.cancel(record.job_id)
        if cancelled is None:
            await self._respond(
                writer, 409,
                _err("not-cancellable",
                     f"job is {record.state}, only queued jobs cancel"))
            return
        record.state = "cancelled"
        record.finished_at = time.time()
        self.store.save(record)
        await self._respond(writer, 200, record.to_payload())

    async def _stream_events(self, writer, record: JobRecord,
                             follow: bool) -> None:
        """Serve the job's JSONL stream; ``follow`` tails until terminal."""
        path = self.store.events_path(record.job_id)
        await self._respond_stream_head(writer)
        offset = 0
        while True:
            chunk = b""
            if os.path.exists(path):
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    chunk = handle.read()
            if chunk:
                offset += len(chunk)
                writer.write(chunk)
                await writer.drain()
            if not follow:
                break
            live = self.records.get(record.job_id)
            if live is None or live.terminal:
                break
            await asyncio.sleep(0.05)


def _err(reason: str, detail: str) -> Dict:
    return {"error": {"reason": reason, "detail": str(detail)}}
