"""Job execution on one shared process pool.

One :class:`~repro.experiments.sweep.SharedProcessPool` is the service's
entire worker fleet. Each job gets its **own**
:class:`~repro.experiments.sweep.SweepEngine` pointed at that pool, which
buys the isolation/sharing split the service needs:

- *isolated per job*: the JSONL event stream (``events.jsonl`` — what the
  streaming status endpoint serves), optional run telemetry, and the
  failure ladder's retry/quarantine accounting;
- *shared across tenants*: the worker processes (amortized start-up, one
  fleet regardless of job count) and the sha256 cell cache directory — two
  clients sweeping overlapping grids pay for each cell once, and a job
  resumed after a crash recomputes only cells no one ever finished.

Each job also anchors a distributed trace: the record's deterministic
``trace_id`` becomes the root ``"job"`` span, the engine's context is its
``"sweep"`` child, and chunk payloads carry the lineage across the
process boundary (see :mod:`repro.observability.tracing`). Live cache and
latency counters are accumulated into the service's
:class:`~repro.observability.metrics.MetricsRegistry`.

Everything here is blocking by design; the server runs :meth:`execute` in
worker threads (``asyncio.to_thread``) and keeps its event loop free. The
engine's internal lock plus the shared pool's serialization make the
concurrent calls safe, and results bit-identical to batch execution.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.experiments.sweep import SharedProcessPool, SweepEngine
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import TraceContext
from repro.service.jobs import JobRecord, JobStore, grid_from_params

__all__ = ["JobExecutor"]


class JobExecutor:
    """Executes claimed jobs; owns the shared pool and the shared cache."""

    def __init__(
        self,
        store: JobStore,
        parallel: bool = True,
        pool_workers: Optional[int] = None,
        backend: str = "batch",
        timeout: Optional[float] = None,
        retries: int = 2,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.store = store
        self.cache_dir = os.path.join(store.root, "cache")
        os.makedirs(self.cache_dir, exist_ok=True)
        self._parallel = bool(parallel)
        self._backend = backend
        self._timeout = timeout
        self._retries = int(retries)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._cache_hits_total = self.metrics.counter(
            "repro_cache_hits_total",
            "Cross-tenant cell-cache hits served by executed jobs",
        )
        self._cache_misses_total = self.metrics.counter(
            "repro_cache_misses_total",
            "Cross-tenant cell-cache misses (cells actually computed)",
        )
        self._active_lock = threading.Lock()
        self._active_handles: Dict[str, List] = {}
        self.pool: Optional[SharedProcessPool] = (
            SharedProcessPool(max_workers=pool_workers) if parallel else None
        )

    def close(self) -> None:
        if self.pool is not None:
            self.pool.close()

    @property
    def cache_hits(self) -> int:
        """Cross-tenant cell-cache hits across every executed job."""
        return int(self._cache_hits_total.total())

    @property
    def cache_misses(self) -> int:
        """Cells actually computed (cache misses) across every job."""
        return int(self._cache_misses_total.total())

    # -- graceful-shutdown flush --------------------------------------

    def _register_handle(self, job_id: str, handle) -> None:
        with self._active_lock:
            self._active_handles.setdefault(job_id, []).append(handle)

    def _unregister_handles(self, job_id: str) -> None:
        with self._active_lock:
            self._active_handles.pop(job_id, None)

    def shutdown_flush(self) -> None:
        """Close every live per-job telemetry handle.

        Called by the server on SIGTERM / ``POST /shutdown`` *before* the
        pool is torn down: a job interrupted mid-execution still gets its
        trailing ``counters``/``summary`` records (and its root span, if
        traced) flushed to its stream instead of losing the tail.
        ``Telemetry.close`` is idempotent, so racing with the job thread's
        own ``finally`` close is harmless.
        """
        with self._active_lock:
            handles = [
                handle
                for per_job in self._active_handles.values()
                for handle in per_job
            ]
            self._active_handles.clear()
        for handle in handles:
            try:
                handle.close()
            except Exception:  # pragma: no cover - flush is best-effort
                pass

    # -- tracing -------------------------------------------------------

    @staticmethod
    def _trace_root(record: JobRecord) -> Optional[TraceContext]:
        """The job's root span context (``None`` for pre-tracing jobs)."""
        if not record.trace_id:
            return None
        return TraceContext.root(record.trace_id, name="job")

    def engine_for(self, record: JobRecord,
                   telemetry: bool = False) -> SweepEngine:
        """A fresh per-job engine on the shared pool and shared cache."""
        root = self._trace_root(record)
        return SweepEngine(
            parallel=self._parallel,
            pool=self.pool,
            cache_dir=self.cache_dir,
            backend=self._backend,
            timeout=self._timeout,
            retries=self._retries,
            events=self.store.events_path(record.job_id),
            telemetry_dir=(
                self.store.telemetry_dir(record.job_id) if telemetry else None
            ),
            trace=None if root is None else root.child("sweep"),
        )

    # -- dispatch ------------------------------------------------------

    def execute(self, record: JobRecord) -> Dict:
        """Run one job to completion; persist and return its result summary.

        Blocking. Raises on *infrastructure* failure (which the server
        maps to job state ``failed``); per-cell computation failures are
        data, not exceptions — they land in the result document exactly as
        the batch CLI reports them.
        """
        handler = {
            "sweep": self._execute_sweep,
            "run": self._execute_run,
            "bench": self._execute_bench,
        }.get(record.spec.kind)
        if handler is None:
            raise InvalidParameterError(
                f"unknown job kind {record.spec.kind!r}"
            )
        try:
            result = handler(record)
        finally:
            self._unregister_handles(record.job_id)
        self.store.write_result(record.job_id, result)
        return result.get("counts", {})

    # -- sweep ---------------------------------------------------------

    def _execute_sweep(self, record: JobRecord) -> Dict:
        grid = grid_from_params(record.spec.params)
        engine = self.engine_for(
            record, telemetry=bool(record.spec.params.get("telemetry", False))
        )
        root = self._trace_root(record)
        started_ts = time.time()
        started = time.perf_counter()
        # A restarted attempt is a resume: the event log then proves how
        # much of the grid was recovered from the shared cell cache.
        if record.attempts > 1:
            cells = engine.resume(grid)
        else:
            cells = engine.run_regression_grid(grid)
        if root is not None:
            # Close the root "job" span over the engine's own stream so
            # the whole tree reconstructs from the job directory alone.
            engine.events.emit(
                "span",
                name="job",
                seconds=time.perf_counter() - started,
                ts=started_ts,
                **root.fields(),
            )
        counts = engine.events.counts()
        self._cache_hits_total.inc(counts.get("cache_hit", 0))
        self._cache_misses_total.inc(counts.get("cache_miss", 0))
        cell_rows = [
            {
                "filter": cell.filter_name,
                "attack": cell.attack_name,
                "f": cell.f,
                "seed": cell.seed,
                "final_error": cell.final_error,
                "final_estimate": (
                    None if cell.final_estimate is None
                    else np.asarray(cell.final_estimate).tolist()
                ),
                "error": cell.error,
                "cached": cell.cached,
                "quarantined": cell.quarantined,
            }
            for cell in cells
        ]
        return {
            "kind": "sweep",
            "cells": cell_rows,
            "counts": {
                "cells": len(cells),
                "failed": sum(cell.failed for cell in cells),
                "quarantined": sum(cell.quarantined for cell in cells),
                "cached": sum(cell.cached for cell in cells),
                "cache_hits": counts.get("cache_hit", 0),
                "cache_misses": counts.get("cache_miss", 0),
            },
            "events": counts,
        }

    # -- single run ----------------------------------------------------

    def _execute_run(self, record: JobRecord) -> Dict:
        from repro.analysis.metrics import final_error
        from repro.attacks.registry import make_attack
        from repro.observability import JSONLSink, MemorySink, Telemetry
        from repro.problems.linear_regression import make_redundant_regression
        from repro.system.runner import run_dgd

        params = dict(record.spec.params)
        n = int(params.get("n", 6))
        d = int(params.get("d", 2))
        f = int(params.get("f", 1))
        noise_std = float(params.get("noise_std", 0.02))
        filter_name = params.get("filter", "cge")
        attack_name = params.get("attack", "gradient-reverse")
        iterations = int(params.get("iterations", 500))
        seed = int(params.get("seed", 0))

        instance = make_redundant_regression(
            n=n, d=d, f=f, noise_std=noise_std, seed=seed
        )
        faulty = tuple(range(f))
        honest = [i for i in range(n) if i not in faulty]
        x_H = instance.honest_minimizer(honest)
        behavior = make_attack(attack_name) if faulty else None
        root = self._trace_root(record)
        telemetry = Telemetry(
            [MemorySink(), JSONLSink(self.store.events_path(record.job_id))],
            byzantine_ids=faulty,
            reference_point=x_H,
            trace=root,
            trace_name="job" if root is not None else None,
        )
        self._register_handle(record.job_id, telemetry)
        try:
            trace = run_dgd(
                instance.costs,
                behavior,
                gradient_filter=filter_name,
                faulty_ids=faulty,
                iterations=iterations,
                seed=seed,
                telemetry=telemetry,
            )
        finally:
            telemetry.close()
        error = final_error(trace, x_H)
        return {
            "kind": "run",
            "final_error": float(error),
            "final_estimate": trace.final_estimate.tolist(),
            "honest_minimizer": np.asarray(x_H).tolist(),
            "wall_time": float(trace.wall_time),
            "counts": {
                "iterations": iterations,
                "telemetry_records": telemetry.emitted,
            },
        }

    # -- bench ---------------------------------------------------------

    def _execute_bench(self, record: JobRecord) -> Dict:
        from repro.observability.perf import load_default_workloads, run_registered

        load_default_workloads()
        params = dict(record.spec.params)
        outcome = run_registered(
            params["name"],
            repeats=int(params.get("repeats", 1)),
            output_dir=self.store.job_dir(record.job_id),
        )
        timings = outcome.result.timings
        return {
            "kind": "bench",
            "name": params["name"],
            "artifact": outcome.path,
            "best_seconds": timings["best_seconds"],
            "mean_seconds": timings["mean_seconds"],
            "counts": {"repeats": int(params.get("repeats", 1))},
        }
