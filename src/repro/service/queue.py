"""Priority job queue with admission control.

The queue is the service's backpressure boundary. Admission control is
deliberately *rejecting*, not buffering: a server that accepts every job
eventually falls over with an unbounded backlog, so past the configured
bounds a submission fails fast with a structured
:class:`~repro.exceptions.AdmissionRejectedError` (HTTP 429 at the wire)
carrying the reason code, the bound that was hit, and the observed depth —
the client decides whether to back off, retry elsewhere, or drop.

Two bounds compose:

- ``max_depth`` — total jobs queued (running jobs do not count: they hold
  a slot, not a queue place);
- ``per_client`` — jobs one client may have queued **or** running, so a
  single noisy tenant cannot monopolize the service.

Ordering is by descending ``priority``, then submission order within a
priority level (a heap over ``(-priority, seq)``).

The queue is not thread-safe by design: the service confines it to the
event-loop thread (handlers and job slots both run there), which is the
cheapest correct concurrency discipline. Blocking work never touches the
queue — it happens in executor threads that report back via the loop.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set

from repro.exceptions import AdmissionRejectedError
from repro.service.jobs import JobRecord

__all__ = ["JobQueue"]


class JobQueue:
    """Bounded priority queue of :class:`~repro.service.jobs.JobRecord`."""

    def __init__(self, max_depth: int = 64, per_client: int = 8):
        if max_depth <= 0:
            raise ValueError(f"max_depth must be positive, got {max_depth}")
        if per_client <= 0:
            raise ValueError(f"per_client must be positive, got {per_client}")
        self.max_depth = int(max_depth)
        self.per_client = int(per_client)
        self._heap: List = []
        self._records: Dict[str, JobRecord] = {}
        self._cancelled: Set[str] = set()
        self._active_per_client: Dict[str, int] = {}

    # -- inspection ----------------------------------------------------

    @property
    def depth(self) -> int:
        """Jobs currently queued (excludes running and cancelled)."""
        return len(self._records)

    def active_for(self, client: str) -> int:
        """Jobs ``client`` currently has queued or running."""
        return self._active_per_client.get(client, 0)

    def snapshot(self) -> Dict:
        return {
            "depth": self.depth,
            "max_depth": self.max_depth,
            "per_client": self.per_client,
            "clients": dict(sorted(self._active_per_client.items())),
        }

    # -- admission -----------------------------------------------------

    def submit(self, record: JobRecord) -> None:
        """Admit ``record`` or raise a structured rejection.

        Raises
        ------
        AdmissionRejectedError
            ``reason="queue-full"`` when the queue is at ``max_depth``;
            ``reason="client-cap"`` when the submitting client already has
            ``per_client`` jobs queued or running. Nothing is enqueued on
            rejection — the submission left no trace.
        """
        if self.depth >= self.max_depth:
            raise AdmissionRejectedError(
                reason="queue-full",
                detail=f"queue is at its depth bound ({self.max_depth})",
                limit=self.max_depth,
                queue_depth=self.depth,
            )
        client = record.spec.client
        if self.active_for(client) >= self.per_client:
            raise AdmissionRejectedError(
                reason="client-cap",
                detail=(
                    f"client {client!r} already has {self.active_for(client)} "
                    f"job(s) queued or running (cap {self.per_client})"
                ),
                limit=self.per_client,
                queue_depth=self.depth,
            )
        self.requeue(record)

    def requeue(self, record: JobRecord) -> None:
        """Enqueue bypassing admission — the restart-recovery path.

        A job the service already admitted must be re-enqueued after a
        crash even if the bounds have since tightened; rejecting it now
        would drop accepted work.
        """
        self._records[record.job_id] = record
        self._cancelled.discard(record.job_id)
        heapq.heappush(self._heap, (-record.spec.priority, record.seq,
                                    record.job_id))
        client = record.spec.client
        self._active_per_client[client] = self.active_for(client) + 1

    # -- scheduling ----------------------------------------------------

    def pop(self) -> Optional[JobRecord]:
        """Highest-priority queued job, or ``None`` when idle.

        The popped job stays charged against its client's cap until
        :meth:`finish` is called for it.
        """
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            if job_id in self._cancelled:
                self._cancelled.discard(job_id)
                continue
            record = self._records.pop(job_id, None)
            if record is not None:
                return record
        return None

    def cancel(self, job_id: str) -> Optional[JobRecord]:
        """Remove a queued job; returns its record or ``None`` if unknown."""
        record = self._records.pop(job_id, None)
        if record is None:
            return None
        self._cancelled.add(job_id)
        self._release(record.spec.client)
        return record

    def finish(self, record: JobRecord) -> None:
        """Release the client-cap charge of a job that left the running set."""
        self._release(record.spec.client)

    def _release(self, client: str) -> None:
        count = self.active_for(client) - 1
        if count > 0:
            self._active_per_client[client] = count
        else:
            self._active_per_client.pop(client, None)
