"""Blocking client for the ``repro serve`` HTTP API.

Used by the ``repro submit`` / ``repro status`` CLI commands and by the
test and CI harnesses. Pure stdlib: :mod:`http.client` over TCP, or over a
unix socket via a tiny connection subclass (the server's default and the
recommended deployment — filesystem permissions are the auth model).

Error mapping: any non-2xx response raises
:class:`~repro.exceptions.ServiceError`; a 429 specifically raises
:class:`~repro.exceptions.AdmissionRejectedError` rebuilt from the
server's structured rejection payload, so callers can branch on
``exc.reason`` exactly as in-process queue users do.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Dict, Iterator, List, Optional

from repro.exceptions import AdmissionRejectedError, ServiceError

__all__ = ["ServiceClient"]


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` socket."""

    def __init__(self, socket_path: str, timeout: Optional[float] = None):
        super().__init__("localhost", timeout=timeout)
        self._socket_path = socket_path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._socket_path)
        self.sock = sock


class ServiceClient:
    """Talk to a running :class:`~repro.service.server.ReproService`."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 30.0,
    ):
        if socket_path and (host or port):
            raise ValueError("give a socket path or host/port, not both")
        if not socket_path and not (host and port):
            raise ValueError("give a socket path or both host and port")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- wire ----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self.socket_path:
            return _UnixHTTPConnection(self.socket_path, timeout=self.timeout)
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None) -> Dict:
        conn = self._connection()
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"service unreachable at {self._target()}: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            try:
                document = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServiceError(
                    f"malformed response from service "
                    f"(status {response.status})"
                ) from exc
            if response.status >= 400:
                raise self._error_for(response.status, document)
            return document
        finally:
            conn.close()

    def _target(self) -> str:
        if self.socket_path:
            return self.socket_path
        return f"{self.host}:{self.port}"

    @staticmethod
    def _error_for(status: int, document: Dict) -> ServiceError:
        error = document.get("error", {})
        reason = error.get("reason", "unknown")
        detail = error.get("detail", "")
        if status == 429:
            return AdmissionRejectedError(
                reason=reason,
                detail=detail,
                limit=error.get("limit", 0),
                queue_depth=error.get("queue_depth", 0),
            )
        return ServiceError(f"{reason}: {detail}", status=status)

    # -- API -----------------------------------------------------------

    def healthz(self) -> Dict:
        return self._request("GET", "/healthz")

    def stats(self) -> Dict:
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """Raw Prometheus text from ``GET /metrics`` (not JSON)."""
        conn = self._connection()
        try:
            try:
                conn.request("GET", "/metrics")
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"service unreachable at {self._target()}: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            if response.status >= 400:
                try:
                    document = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    document = {}
                raise self._error_for(response.status, document)
            return raw.decode("utf-8")
        finally:
            conn.close()

    def submit(self, kind: str, params: Dict, client: str = "anonymous",
               priority: int = 0) -> Dict:
        """Submit a job; returns its record. Raises on 400/429."""
        return self._request("POST", "/jobs", body={
            "kind": kind,
            "params": params,
            "client": client,
            "priority": priority,
        })

    def jobs(self) -> List[Dict]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> Dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def shutdown(self) -> Dict:
        return self._request("POST", "/shutdown")

    def events(self, job_id: str, follow: bool = False) -> Iterator[Dict]:
        """Yield the job's JSONL events; ``follow`` tails until terminal."""
        conn = self._connection()
        try:
            suffix = "?follow=1" if follow else ""
            try:
                conn.request("GET", f"/jobs/{job_id}/events{suffix}")
                response = conn.getresponse()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"service unreachable at {self._target()}: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            if response.status >= 400:
                raw = response.read()
                try:
                    document = json.loads(raw.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    document = {}
                raise self._error_for(response.status, document)
            buffer = b""
            while True:
                chunk = response.read(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        try:
                            yield json.loads(line.decode("utf-8"))
                        except (UnicodeDecodeError, json.JSONDecodeError):
                            continue  # torn trailing line mid-write
            if buffer.strip():
                try:
                    yield json.loads(buffer.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    pass
        finally:
            conn.close()

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.2) -> Dict:
        """Block until the job reaches a terminal state; return its record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout:.0f}s waiting for {job_id} "
                    f"(still {record['state']})"
                )
            time.sleep(poll)
