"""Job specs, durable job records, and the on-disk job store.

A *job* is one unit of client-submitted work: a single filtered-DGD
execution (``run``), a full (filter × attack × f × seed) grid (``sweep``),
or a registered benchmark (``bench``). Specs are validated at admission —
unknown parameters, unregistered filter/attack/bench names, and ill-typed
values are rejected with a structured error before anything is enqueued,
so a malformed job can never reach a worker.

Durability follows the cache discipline of :mod:`repro.utils.atomicio`:
every state transition rewrites the job's ``job.json`` manifest atomically
with a checksum, so a server killed at any instant leaves every manifest
either in its old state or its new state — never torn. On restart,
:meth:`JobStore.load_all` recovers the full job table and jobs that were
``queued``/``running`` at the kill are re-enqueued; a resumed ``sweep``
job recomputes only the cells its shared cell cache does not already hold
(:meth:`repro.experiments.sweep.SweepEngine.resume` is the substrate).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.exceptions import InvalidParameterError, ReproError
from repro.utils.atomicio import read_json_dict_checked, write_json_atomic

__all__ = [
    "JOB_KINDS",
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobSpec",
    "JobRecord",
    "JobStore",
    "validate_job_spec",
    "grid_from_params",
]

#: Supported job kinds.
JOB_KINDS = ("run", "sweep", "bench")
#: Every state a job can be in.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Grid parameters a ``sweep`` job may set (mirrors ``RegressionGrid``).
_SWEEP_KEYS = {
    "filters", "attacks", "fault_counts", "num_seeds", "master_seed",
    "n", "d", "redundancy_f", "noise_std", "instance_seed", "iterations",
    "x0", "telemetry",
}
#: Parameters a ``run`` job may set.
_RUN_KEYS = {"n", "d", "f", "noise_std", "filter", "attack", "iterations", "seed"}
#: Parameters a ``bench`` job may set.
_BENCH_KEYS = {"name", "repeats"}


@dataclass(frozen=True)
class JobSpec:
    """A validated, immutable description of one submitted job."""

    kind: str
    params: Dict
    client: str = "anonymous"
    priority: int = 0

    def to_payload(self) -> Dict:
        return {
            "kind": self.kind,
            "params": dict(self.params),
            "client": self.client,
            "priority": self.priority,
        }

    def spec_hash(self) -> str:
        """Stable digest of the spec (used in job ids and dedup hints)."""
        canonical = json.dumps(self.to_payload(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _require_int(params: Dict, key: str, minimum: Optional[int] = None) -> None:
    value = params[key]
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidParameterError(
            f"job parameter {key!r} must be an integer, got {value!r}"
        )
    if minimum is not None and value < minimum:
        raise InvalidParameterError(
            f"job parameter {key!r} must be >= {minimum}, got {value}"
        )


def _require_number(params: Dict, key: str) -> None:
    value = params[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise InvalidParameterError(
            f"job parameter {key!r} must be a number, got {value!r}"
        )


def _require_name_list(params: Dict, key: str, available, kind: str) -> None:
    values = params[key]
    if not isinstance(values, (list, tuple)) or not values:
        raise InvalidParameterError(
            f"job parameter {key!r} must be a non-empty list of names"
        )
    unknown = [v for v in values if v not in available]
    if unknown:
        raise InvalidParameterError(
            f"unknown {kind}(s) {', '.join(map(repr, unknown))}; "
            f"available: {', '.join(available)}"
        )
    params[key] = [str(v) for v in values]


def _validate_sweep_params(params: Dict) -> None:
    from repro.aggregators.registry import available_filters
    from repro.attacks.registry import available_attacks

    if "filters" in params:
        _require_name_list(params, "filters", available_filters(), "filter")
    if "attacks" in params:
        _require_name_list(params, "attacks", available_attacks(), "attack")
    if "fault_counts" in params:
        counts = params["fault_counts"]
        if not isinstance(counts, (list, tuple)) or not counts or any(
            isinstance(c, bool) or not isinstance(c, int) or c < 0 for c in counts
        ):
            raise InvalidParameterError(
                "job parameter 'fault_counts' must be a non-empty list of "
                "non-negative integers"
            )
    for key, minimum in (("num_seeds", 1), ("n", 1), ("d", 1),
                         ("iterations", 1)):
        if key in params:
            _require_int(params, key, minimum)
    for key in ("master_seed", "instance_seed"):
        if key in params:
            _require_int(params, key)
    if "redundancy_f" in params and params["redundancy_f"] is not None:
        _require_int(params, "redundancy_f", 1)
    if "noise_std" in params:
        _require_number(params, "noise_std")
    if "x0" in params and params["x0"] is not None:
        if not isinstance(params["x0"], (list, tuple)):
            raise InvalidParameterError(
                "job parameter 'x0' must be a list of numbers"
            )
    if "telemetry" in params and not isinstance(params["telemetry"], bool):
        raise InvalidParameterError("job parameter 'telemetry' must be a bool")


def _validate_run_params(params: Dict) -> None:
    from repro.aggregators.registry import available_filters
    from repro.attacks.registry import available_attacks

    for key, minimum in (("n", 2), ("d", 1), ("iterations", 1)):
        if key in params:
            _require_int(params, key, minimum)
    if "f" in params:
        _require_int(params, "f", 0)
    if "seed" in params:
        _require_int(params, "seed")
    if "noise_std" in params:
        _require_number(params, "noise_std")
    if "filter" in params and params["filter"] not in available_filters():
        raise InvalidParameterError(
            f"unknown filter {params['filter']!r}; "
            f"available: {', '.join(available_filters())}"
        )
    if "attack" in params and params["attack"] not in available_attacks():
        raise InvalidParameterError(
            f"unknown attack {params['attack']!r}; "
            f"available: {', '.join(available_attacks())}"
        )


def _validate_bench_params(params: Dict) -> None:
    from repro.observability.perf import get_bench, load_default_workloads

    if "name" not in params:
        raise InvalidParameterError("bench jobs require a 'name' parameter")
    load_default_workloads()
    get_bench(params["name"])  # raises with the known-name list
    if "repeats" in params:
        _require_int(params, "repeats", 1)


def validate_job_spec(payload: Dict) -> JobSpec:
    """Validate one submission payload into a :class:`JobSpec`.

    Raises :class:`~repro.exceptions.InvalidParameterError` — mapped to an
    HTTP 400 by the server — on an unknown kind, unknown parameter keys,
    ill-typed values, or unregistered filter/attack/bench names.
    """
    if not isinstance(payload, dict):
        raise InvalidParameterError("job submission must be a JSON object")
    kind = payload.get("kind")
    if kind not in JOB_KINDS:
        raise InvalidParameterError(
            f"unknown job kind {kind!r}; available: {', '.join(JOB_KINDS)}"
        )
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise InvalidParameterError("job 'params' must be a JSON object")
    params = dict(params)
    allowed = {"run": _RUN_KEYS, "sweep": _SWEEP_KEYS, "bench": _BENCH_KEYS}[kind]
    unknown = sorted(set(params) - allowed)
    if unknown:
        raise InvalidParameterError(
            f"unknown {kind}-job parameter(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )
    {"run": _validate_run_params, "sweep": _validate_sweep_params,
     "bench": _validate_bench_params}[kind](params)
    client = payload.get("client", "anonymous")
    if not isinstance(client, str) or not client:
        raise InvalidParameterError("job 'client' must be a non-empty string")
    priority = payload.get("priority", 0)
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise InvalidParameterError(
            f"job 'priority' must be an integer, got {priority!r}"
        )
    return JobSpec(kind=kind, params=params, client=client, priority=priority)


def grid_from_params(params: Dict):
    """Materialize a ``sweep`` job's parameters into a ``RegressionGrid``."""
    from repro.experiments.sweep import RegressionGrid

    fields = {k: v for k, v in params.items() if k != "telemetry"}
    for key in ("filters", "attacks", "fault_counts"):
        if key in fields:
            fields[key] = tuple(fields[key])
    if fields.get("x0") is not None:
        fields["x0"] = tuple(float(v) for v in fields["x0"])
    return RegressionGrid(**fields)


@dataclass
class JobRecord:
    """One job's full lifecycle state, as persisted in its manifest."""

    job_id: str
    seq: int
    spec: JobSpec
    state: str = "queued"
    attempts: int = 0
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    summary: Dict = field(default_factory=dict)
    trace_id: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_payload(self) -> Dict:
        return {
            "version": 1,
            "job_id": self.job_id,
            "seq": self.seq,
            "spec": self.spec.to_payload(),
            "state": self.state,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "summary": self.summary,
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "JobRecord":
        spec_doc = payload["spec"]
        spec = JobSpec(
            kind=spec_doc["kind"],
            params=dict(spec_doc.get("params", {})),
            client=spec_doc.get("client", "anonymous"),
            priority=int(spec_doc.get("priority", 0)),
        )
        state = payload.get("state", "queued")
        if state not in JOB_STATES:
            raise ReproError(f"job manifest carries unknown state {state!r}")
        return cls(
            job_id=payload["job_id"],
            seq=int(payload["seq"]),
            spec=spec,
            state=state,
            attempts=int(payload.get("attempts", 0)),
            submitted_at=float(payload.get("submitted_at", 0.0)),
            started_at=payload.get("started_at"),
            finished_at=payload.get("finished_at"),
            error=payload.get("error"),
            summary=dict(payload.get("summary", {})),
            trace_id=payload.get("trace_id"),
        )


class JobStore:
    """Durable job table under ``<state_dir>/jobs/``.

    Layout, one directory per job::

        jobs/<job_id>/job.json      # checksummed atomic manifest
        jobs/<job_id>/events.jsonl  # the job's streaming event/telemetry log
        jobs/<job_id>/result.json   # checksummed result document (terminal)

    Manifests are the recovery substrate: every transition is persisted
    *before* it takes externally visible effect, so a ``kill -9`` at any
    point leaves a table from which :meth:`load_all` reconstructs exactly
    which jobs still need work.
    """

    def __init__(self, root: str):
        self.root = root
        self.jobs_dir = os.path.join(root, "jobs")
        os.makedirs(self.jobs_dir, exist_ok=True)

    # -- paths ---------------------------------------------------------

    def job_dir(self, job_id: str) -> str:
        return os.path.join(self.jobs_dir, job_id)

    def manifest_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "job.json")

    def events_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "events.jsonl")

    def result_path(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "result.json")

    def telemetry_dir(self, job_id: str) -> str:
        return os.path.join(self.job_dir(job_id), "telemetry")

    # -- lifecycle -----------------------------------------------------

    def next_seq(self) -> int:
        highest = 0
        for name in os.listdir(self.jobs_dir):
            if name.startswith("j") and "-" in name:
                try:
                    highest = max(highest, int(name[1:].split("-", 1)[0]))
                except ValueError:
                    continue
        return highest + 1

    def create(self, spec: JobSpec, seq: Optional[int] = None) -> JobRecord:
        """Allocate a new job id, persist its manifest, return the record.

        Every job is born with a deterministic trace id derived from its
        id and spec hash (the seed/cache-key discipline of
        :mod:`repro.observability.tracing`), so the cross-process span
        tree of a recovered job links up exactly like a fresh one's.
        """
        from repro.observability.tracing import derive_trace_id

        if seq is None:
            seq = self.next_seq()
        job_id = f"j{seq:05d}-{spec.spec_hash()[:8]}"
        record = JobRecord(
            job_id=job_id,
            seq=seq,
            spec=spec,
            submitted_at=time.time(),
            trace_id=derive_trace_id("job", job_id, spec.spec_hash()),
        )
        os.makedirs(self.job_dir(job_id), exist_ok=True)
        self.save(record)
        return record

    def save(self, record: JobRecord) -> None:
        os.makedirs(self.job_dir(record.job_id), exist_ok=True)
        write_json_atomic(self.manifest_path(record.job_id), record.to_payload())

    def load(self, job_id: str) -> JobRecord:
        return JobRecord.from_payload(
            read_json_dict_checked(self.manifest_path(job_id))
        )

    def load_all(self) -> List[JobRecord]:
        """Every recoverable job record, in submission (seq) order.

        A manifest a killed writer managed to corrupt despite the atomic
        path (e.g. filesystem damage) is skipped, not fatal: the service
        must come back up with whatever part of the table survived.
        """
        records = []
        for name in sorted(os.listdir(self.jobs_dir)):
            path = self.manifest_path(name)
            if not os.path.exists(path):
                continue
            try:
                records.append(self.load(name))
            except (ReproError, KeyError, ValueError, OSError):
                continue
        records.sort(key=lambda record: record.seq)
        return records

    def write_result(self, job_id: str, payload: Dict) -> str:
        return write_json_atomic(self.result_path(job_id), payload)

    def load_result(self, job_id: str) -> Dict:
        return read_json_dict_checked(self.result_path(job_id))

    # -- garbage collection --------------------------------------------

    def prune(self, ttl: float, now: Optional[float] = None) -> List[str]:
        """Delete terminal jobs whose age exceeds ``ttl`` seconds.

        Age is measured from ``finished_at`` (falling back to
        ``submitted_at`` for manifests that predate the field). Only jobs
        in a :data:`TERMINAL_STATES` state are candidates — queued and
        running jobs are never touched, however old, and a manifest that
        cannot be parsed is left alone rather than guessed at. The whole
        job directory (manifest, events, result, telemetry) is removed.

        Returns the pruned job ids in submission order.
        """
        if ttl < 0:
            raise InvalidParameterError(f"prune ttl must be >= 0, got {ttl}")
        if now is None:
            now = time.time()
        pruned = []
        for record in self.load_all():
            if not record.terminal:
                continue
            stamp = record.finished_at or record.submitted_at
            if now - stamp < ttl:
                continue
            shutil.rmtree(self.job_dir(record.job_id), ignore_errors=True)
            pruned.append(record.job_id)
        return pruned
