"""Distributed sensing / linear state estimation.

A system state ``x* ∈ R^d`` is observed by ``n`` sensors; sensor ``i``
measures ``y_i = H_i x* + noise`` through its own observation matrix ``H_i``
(possibly multiple rows). Estimating ``x*`` despite ``f`` faulty sensors is
the state-estimation application the paper cites: there, resilient
estimation is possible iff the system is *2f-sparse observable* — the state
is determined by every ``n − 2f`` sensors — which is exactly 2f-redundancy
of the local costs ``Q_i(x) = ||y_i − H_i x||²``.

The generator assigns each sensor a bundle of observation directions such
that every ``(n − 2f)``-sensor union is full rank (built on the same Vandermonde
construction as the regression generator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import LeastSquaresCost
from repro.problems.linear_regression import design_rows
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.subsets import iter_fixed_size_subsets
from repro.utils.validation import check_fault_bound, check_vector


@dataclass
class SensingInstance:
    """A generated distributed sensing problem.

    Attributes
    ----------
    observation_matrices:
        Per-sensor ``(rows_i, d)`` observation matrices ``H_i``.
    observations:
        Per-sensor measurement vectors ``y_i``.
    x_star:
        True system state.
    costs:
        Per-sensor least-squares costs.
    """

    observation_matrices: List[np.ndarray]
    observations: List[np.ndarray]
    x_star: np.ndarray
    noise_std: float
    costs: List[LeastSquaresCost] = field(repr=False)

    @property
    def n(self) -> int:
        return len(self.observation_matrices)

    @property
    def dimension(self) -> int:
        return self.x_star.shape[0]

    def is_sparse_observable(self, f: int) -> bool:
        """Whether the system is 2f-sparse observable.

        True iff the stacked observation matrix of every ``(n − 2f)``-sensor
        subset has full column rank — the classical condition for resilient
        state estimation, equivalent to 2f-redundancy of the sensing costs.
        """
        check_fault_bound(self.n, f)
        size = self.n - 2 * f
        for subset in iter_fixed_size_subsets(range(self.n), size):
            stacked = np.vstack([self.observation_matrices[i] for i in subset])
            if np.linalg.matrix_rank(stacked) < self.dimension:
                return False
        return True

    def honest_state_estimate(self, honest: Sequence[int]) -> np.ndarray:
        """Least-squares state estimate from the honest sensors' data."""
        honest = sorted(set(int(i) for i in honest))
        if not honest:
            raise InvalidParameterError("honest set must be non-empty")
        H = np.vstack([self.observation_matrices[i] for i in honest])
        y = np.concatenate([self.observations[i] for i in honest])
        estimate, *_ = np.linalg.lstsq(H, y, rcond=None)
        return estimate


def make_sensing_instance(
    n: int,
    d: int,
    f: int,
    rows_per_sensor: int = 1,
    x_star=None,
    noise_std: float = 0.0,
    seed: SeedLike = 0,
) -> SensingInstance:
    """Generate a 2f-sparse-observable sensing instance.

    Parameters
    ----------
    n, d, f:
        Sensors, state dimension, fault bound; requires
        ``(n − 2f) · rows_per_sensor >= d``.
    rows_per_sensor:
        Observation rows per sensor (partial observations when ``< d``).
    noise_std:
        Measurement-noise σ (``0`` keeps redundancy exact).
    """
    check_fault_bound(n, f)
    if rows_per_sensor <= 0:
        raise InvalidParameterError(
            f"rows_per_sensor must be positive, got {rows_per_sensor}"
        )
    if (n - 2 * f) * rows_per_sensor < d:
        raise InvalidParameterError(
            "2f-sparse observability needs (n - 2f) * rows_per_sensor >= d; "
            f"got n={n}, f={f}, rows={rows_per_sensor}, d={d}"
        )
    if noise_std < 0:
        raise InvalidParameterError(f"noise_std must be non-negative, got {noise_std}")
    x_star = (
        np.ones(d) if x_star is None else check_vector(x_star, dimension=d, name="x_star")
    )
    # One global design matrix sliced into per-sensor bundles keeps the
    # any-d-rows-independent property across sensor boundaries.
    all_rows = design_rows(n * rows_per_sensor, d)
    rng = ensure_rng(seed)
    matrices: List[np.ndarray] = []
    observations: List[np.ndarray] = []
    costs: List[LeastSquaresCost] = []
    for i in range(n):
        H = all_rows[i * rows_per_sensor : (i + 1) * rows_per_sensor]
        noise = rng.normal(scale=noise_std, size=rows_per_sensor) if noise_std > 0 else 0.0
        y = H @ x_star + noise
        matrices.append(H)
        observations.append(np.atleast_1d(y))
        costs.append(LeastSquaresCost(H, np.atleast_1d(y)))
    return SensingInstance(
        observation_matrices=matrices,
        observations=observations,
        x_star=x_star,
        noise_std=float(noise_std),
        costs=costs,
    )
