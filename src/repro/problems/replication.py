"""Redundancy by design: achieving 2f-redundancy through data replication.

The paper observes that 2f-redundancy "can be realized by design" in many
applications. This module implements the canonical mechanism for the
regression/sensing family: **cyclic replication**. Each observation row is
stored at ``2f + 1`` consecutive agents (cyclically), and each agent's
local cost becomes the least-squares cost over its stored rows.

Why it works (noiseless case): an inner subset of the redundancy quantifier
excludes at most ``2f`` agents, and each row has ``2f + 1`` holders, so at
least one holder of *every* row survives into every quantified subset. The
surviving aggregate therefore contains every row (with varying positive
multiplicities) and — since the full system is consistent (``b = A x*``)
and ``A`` has full column rank — minimizes uniquely at ``x*``. Hence every
quantified subset has argmin ``{x*}``: exact 2f-redundancy, *regardless*
of whether the original one-row-per-agent assignment satisfied the
per-subset rank condition.

The price is storage and gradient-computation cost: factor ``2f + 1`` per
agent — the redundancy/resources trade-off quantified by experiment E11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import LeastSquaresCost
from repro.problems.linear_regression import RegressionInstance
from repro.utils.validation import check_fault_bound


@dataclass
class ReplicatedInstance:
    """A regression instance after cyclic data replication.

    Attributes
    ----------
    base:
        The original one-row-per-agent instance.
    replication_degree:
        Number of agents holding each row (``2 f + 1``).
    assignments:
        ``assignments[i]`` — the row indices stored at agent ``i``.
    costs:
        Per-agent replicated least-squares costs.
    """

    base: RegressionInstance
    replication_degree: int
    assignments: List[List[int]]
    costs: List[LeastSquaresCost] = field(repr=False)

    @property
    def n(self) -> int:
        return self.base.n

    @property
    def dimension(self) -> int:
        return self.base.dimension

    def storage_factor(self) -> float:
        """Rows stored per agent relative to the unreplicated assignment."""
        return float(self.replication_degree)

    def honest_minimizer(self, honest) -> np.ndarray:
        """Least-squares solution over the honest agents' *stored* rows.

        Rows held by several honest agents are counted with their
        multiplicity, matching the aggregate cost ``Σ_{i∈H} Q_i``.
        """
        honest = sorted(set(int(i) for i in honest))
        if not honest:
            raise InvalidParameterError("honest set must be non-empty")
        rows = [r for i in honest for r in self.assignments[i]]
        A = self.base.A[rows]
        b = self.base.b[rows]
        if np.linalg.matrix_rank(A) < self.dimension:
            raise InvalidParameterError("honest stored rows are rank-deficient")
        solution, *_ = np.linalg.lstsq(A, b, rcond=None)
        return solution


def replicate_cyclically(instance: RegressionInstance, f: int) -> ReplicatedInstance:
    """Replicate each observation row at ``2f + 1`` cyclically-consecutive agents.

    Parameters
    ----------
    instance:
        A one-row-per-agent regression instance (``A`` is ``(n, d)``). The
        stacked matrix must have full column rank (otherwise no assignment
        can determine ``x``).
    f:
        The fault bound the replication must defend; requires
        ``2 f + 1 <= n``.

    Returns
    -------
    ReplicatedInstance
        Agent ``i`` stores rows ``{i, i+1, ..., i+2f} mod n`` and its local
        cost is the least-squares cost over those rows.
    """
    n = instance.n
    check_fault_bound(n, f)
    degree = 2 * f + 1
    if degree > n:
        raise InvalidParameterError(
            f"replication degree 2f+1 = {degree} exceeds the number of agents {n}"
        )
    if np.linalg.matrix_rank(instance.A) < instance.dimension:
        raise InvalidParameterError(
            "the stacked observation matrix is rank-deficient; replication "
            "cannot create information that is not there"
        )
    assignments: List[List[int]] = []
    costs: List[LeastSquaresCost] = []
    for i in range(n):
        rows = [(i + k) % n for k in range(degree)]
        assignments.append(rows)
        costs.append(LeastSquaresCost(instance.A[rows], instance.b[rows]))
    return ReplicatedInstance(
        base=instance,
        replication_degree=degree,
        assignments=assignments,
        costs=costs,
    )


def minimum_replication_degree(n: int, f: int) -> int:
    """Smallest per-row replication degree guaranteeing 2f-redundancy.

    A row missing from some quantified subset must have all its holders
    among the ``2f`` excluded agents, so ``2f + 1`` holders suffice; with
    only ``2f`` holders the adversarial exclusion exists whenever the
    remaining rows do not already span (tight in general).
    """
    check_fault_bound(n, f)
    return 2 * f + 1
