"""Problem generators: the workloads the experiments run on.

- :mod:`repro.problems.linear_regression` — the paper's evaluation workload:
  distributed linear regression with 2f-redundancy *by design*;
- :mod:`repro.problems.sensing` — distributed (linear) state estimation,
  where 2f-redundancy coincides with 2f-sparse observability;
- :mod:`repro.problems.learning` — synthetic distributed learning
  (logistic / SVM) with controllable inter-agent data redundancy;
- :mod:`repro.problems.meeting` — the introduction's quadratic
  "meeting point" toy problem.
"""

from repro.problems.learning import (
    LearningInstance,
    label_flip_attack,
    label_flipped_cost,
    make_learning_instance,
)
from repro.problems.linear_regression import (
    RegressionInstance,
    make_redundant_regression,
    paper_instance,
)
from repro.problems.meeting import MeetingInstance, make_meeting_instance
from repro.problems.multiclass import MulticlassInstance, make_multiclass_instance
from repro.problems.replication import (
    ReplicatedInstance,
    minimum_replication_degree,
    replicate_cyclically,
)
from repro.problems.sensing import SensingInstance, make_sensing_instance

__all__ = [
    "RegressionInstance",
    "make_redundant_regression",
    "paper_instance",
    "SensingInstance",
    "make_sensing_instance",
    "LearningInstance",
    "make_learning_instance",
    "label_flipped_cost",
    "label_flip_attack",
    "MeetingInstance",
    "MulticlassInstance",
    "make_multiclass_instance",
    "ReplicatedInstance",
    "replicate_cyclically",
    "minimum_replication_degree",
    "make_meeting_instance",
]
