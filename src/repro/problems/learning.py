"""Synthetic distributed learning with controllable data redundancy.

Two-class classification on Gaussian blobs. Each agent holds a local
dataset; ``heterogeneity = 0`` gives every agent i.i.d. samples from the
same distribution (the redundant regime where the paper's theory is
strongest), while larger values skew each agent's class balance and shift
its class means apart (breaking redundancy in a controlled way, mirroring
the regression noise sweep at the learning level).

Both logistic and smoothed-hinge (SVM) local costs are supported, plus the
data-level *label-flip* poisoning used by the learning experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import (
    CostFunction,
    LogisticCost,
    SmoothedHingeCost,
)
from repro.utils.rng import SeedLike, ensure_rng, spawn_rngs


@dataclass
class LearningInstance:
    """A generated distributed learning problem.

    Attributes
    ----------
    features / labels:
        Per-agent local datasets (``labels`` in ``{−1, +1}``).
    costs:
        Per-agent regularized loss functions.
    test_features / test_labels:
        A held-out i.i.d. test set from the *global* mixture used to score
        accuracy.
    """

    features: List[np.ndarray]
    labels: List[np.ndarray]
    costs: List[CostFunction] = field(repr=False)
    test_features: np.ndarray = field(repr=False, default=None)
    test_labels: np.ndarray = field(repr=False, default=None)
    loss: str = "logistic"
    regularization: float = 0.01
    heterogeneity: float = 0.0

    @property
    def n(self) -> int:
        return len(self.features)

    @property
    def dimension(self) -> int:
        return self.features[0].shape[1]

    def accuracy(self, x) -> float:
        """Test-set accuracy of the linear classifier ``sign(⟨x, z⟩)``."""
        x = np.asarray(x, dtype=float)
        scores = self.test_features @ x
        predictions = np.where(scores >= 0.0, 1.0, -1.0)
        return float(np.mean(predictions == self.test_labels))


def _make_cost(features, labels, loss: str, regularization: float) -> CostFunction:
    if loss == "logistic":
        return LogisticCost(features, labels, regularization)
    if loss == "hinge":
        return SmoothedHingeCost(features, labels, regularization)
    raise InvalidParameterError(f"loss must be 'logistic' or 'hinge', got {loss!r}")


def make_learning_instance(
    n: int,
    d: int,
    samples_per_agent: int = 50,
    heterogeneity: float = 0.0,
    margin: float = 2.0,
    loss: str = "logistic",
    regularization: float = 0.01,
    test_samples: int = 1000,
    seed: SeedLike = 0,
) -> LearningInstance:
    """Generate a distributed two-class learning problem.

    Parameters
    ----------
    n, d:
        Agents and feature dimension.
    samples_per_agent:
        Local dataset size.
    heterogeneity:
        ``0`` — all agents sample the same two-blob mixture (i.i.d. /
        redundant). Positive values skew agent ``i``'s class prior toward
        one class and displace its class means by an agent-specific offset
        of that magnitude.
    margin:
        Separation between the two class means (along the first axis).
    loss:
        ``"logistic"`` or ``"hinge"``.
    """
    if n <= 0 or d <= 0:
        raise InvalidParameterError(f"n and d must be positive, got n={n}, d={d}")
    if samples_per_agent <= 1:
        raise InvalidParameterError(
            f"samples_per_agent must exceed 1, got {samples_per_agent}"
        )
    if heterogeneity < 0:
        raise InvalidParameterError(f"heterogeneity must be non-negative, got {heterogeneity}")
    rng = ensure_rng(seed)
    agent_rngs = spawn_rngs(rng, n + 1)
    test_rng = agent_rngs[-1]

    base_positive = np.zeros(d)
    base_positive[0] = margin / 2.0
    base_negative = -base_positive

    features: List[np.ndarray] = []
    labels: List[np.ndarray] = []
    costs: List[CostFunction] = []
    for i in range(n):
        local_rng = agent_rngs[i]
        offset = (
            heterogeneity * local_rng.normal(size=d) if heterogeneity > 0 else np.zeros(d)
        )
        positive_prior = 0.5
        if heterogeneity > 0:
            positive_prior = float(np.clip(0.5 + 0.4 * np.tanh(heterogeneity) * (
                1.0 if i % 2 == 0 else -1.0
            ), 0.1, 0.9))
        count_positive = int(round(samples_per_agent * positive_prior))
        count_negative = samples_per_agent - count_positive
        # Guarantee both classes appear so local costs stay informative.
        count_positive = max(min(count_positive, samples_per_agent - 1), 1)
        count_negative = samples_per_agent - count_positive
        z_positive = local_rng.normal(size=(count_positive, d)) + base_positive + offset
        z_negative = local_rng.normal(size=(count_negative, d)) + base_negative + offset
        Z = np.vstack([z_positive, z_negative])
        y = np.concatenate([np.ones(count_positive), -np.ones(count_negative)])
        order = local_rng.permutation(samples_per_agent)
        Z, y = Z[order], y[order]
        features.append(Z)
        labels.append(y)
        costs.append(_make_cost(Z, y, loss, regularization))

    half = test_samples // 2
    test_positive = test_rng.normal(size=(half, d)) + base_positive
    test_negative = test_rng.normal(size=(test_samples - half, d)) + base_negative
    test_features = np.vstack([test_positive, test_negative])
    test_labels = np.concatenate([np.ones(half), -np.ones(test_samples - half)])

    return LearningInstance(
        features=features,
        labels=labels,
        costs=costs,
        test_features=test_features,
        test_labels=test_labels,
        loss=loss,
        regularization=regularization,
        heterogeneity=float(heterogeneity),
    )


def label_flipped_cost(instance: LearningInstance, agent: int) -> CostFunction:
    """The cost agent ``agent`` would hold after label-flip poisoning.

    Rebuilds the agent's local cost with every label negated — the
    dataset-level poisoning that :func:`label_flip_attack` wires into a
    :class:`repro.attacks.simple.CostSubstitution` behaviour.
    """
    if not 0 <= agent < instance.n:
        raise InvalidParameterError(f"agent {agent} out of range")
    return _make_cost(
        instance.features[agent],
        -instance.labels[agent],
        instance.loss,
        instance.regularization,
    )


def label_flip_attack(instance: LearningInstance, faulty_ids):
    """The data-level label-flip attack for a learning instance.

    Returns a :class:`repro.attacks.simple.CostSubstitution` behaviour under
    which each faulty agent honestly reports gradients of its local cost
    with every label flipped — poisoned *data*, correct *protocol*, the
    fault model the redundancy theory (rather than outlier filtering) must
    handle.
    """
    from repro.attacks.simple import CostSubstitution

    substituted = {int(i): label_flipped_cost(instance, int(i)) for i in faulty_ids}
    return CostSubstitution(substituted)
