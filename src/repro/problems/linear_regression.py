"""Distributed linear regression with 2f-redundancy by design.

The paper's numerical evaluation: each agent ``i`` holds one observation row
``A_i`` (a ``1 × d`` vector) and a scalar observation ``B_i = A_i x* + N_i``
with noise ``N_i``, and defines the local cost ``Q_i(x) = (B_i − A_i x)²``.
The rows are constructed so that **every** ``(n − 2f)``-row submatrix of the
stacked matrix ``A`` has full column rank; with zero noise, every subset
aggregate then minimizes uniquely at ``x*`` — exact 2f-redundancy.

The generator uses a **Vandermonde design** for ``A``: row ``i`` is
``(1, t_i, t_i², ..., t_i^{d-1})`` with distinct Chebyshev nodes ``t_i``.
Any ``d`` rows form a ``d × d`` Vandermonde matrix with distinct nodes,
which is non-singular — so the required rank property holds
*deterministically*, for any ``n``, ``d`` and ``f``, without randomized
search. Chebyshev nodes keep the subset aggregates well conditioned (a
Cauchy design would satisfy the same rank property but with near-parallel
rows, making the strong-convexity constant of honest averages collapse).

Observation noise ``N_i ~ Normal(0, σ²)`` breaks exact redundancy in a
controlled way: the E5 experiment sweeps ``σ`` and measures the induced
redundancy margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.geometry import Singleton
from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import LeastSquaresCost
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_fault_bound, check_vector


@dataclass
class RegressionInstance:
    """A generated distributed linear-regression problem.

    Attributes
    ----------
    A:
        ``(n, d)`` stacked observation rows (agent ``i`` owns row ``i``).
    b:
        ``(n,)`` observations ``A x* + noise``.
    x_star:
        The ground-truth parameter.
    noise_std:
        The σ used to draw the observation noise.
    costs:
        Per-agent :class:`LeastSquaresCost` objects ``(B_i − A_i x)²``.
    """

    A: np.ndarray
    b: np.ndarray
    x_star: np.ndarray
    noise_std: float
    costs: List[LeastSquaresCost] = field(repr=False)

    @property
    def n(self) -> int:
        return self.A.shape[0]

    @property
    def dimension(self) -> int:
        return self.A.shape[1]

    def honest_minimizer(self, honest: Sequence[int]) -> np.ndarray:
        """Least-squares solution over the given honest agents' rows.

        This is the target ``x_H = argmin Σ_{i ∈ H} Q_i`` the fault-tolerant
        algorithms must estimate.
        """
        honest = sorted(set(int(i) for i in honest))
        if not honest:
            raise InvalidParameterError("honest set must be non-empty")
        sub_A = self.A[honest]
        sub_b = self.b[honest]
        if np.linalg.matrix_rank(sub_A) < self.dimension:
            raise InvalidParameterError(
                "honest rows are rank-deficient; the honest minimizer is not unique"
            )
        solution, *_ = np.linalg.lstsq(sub_A, sub_b, rcond=None)
        return solution

    def honest_argmin_set(self, honest: Sequence[int]) -> Singleton:
        """The honest aggregate's argmin as a geometry object."""
        return Singleton(self.honest_minimizer(honest))


def design_rows(n: int, d: int) -> np.ndarray:
    """Deterministic ``(n, d)`` design with every ``d`` rows independent.

    Row ``i`` is the Vandermonde vector ``(1, t_i, ..., t_i^{d-1})`` at the
    ``i``-th Chebyshev node of ``[-1, 1]``; any ``d`` rows form a
    Vandermonde matrix with distinct nodes and are therefore linearly
    independent. Rows are rescaled to unit norm so agents are comparably
    informative (positive scaling preserves the rank property).
    """
    if n <= 0 or d <= 0:
        raise InvalidParameterError(f"n and d must be positive, got n={n}, d={d}")
    nodes = np.cos((2.0 * np.arange(n) + 1.0) / (2.0 * n) * np.pi)
    A = np.vander(nodes, N=d, increasing=True)
    norms = np.linalg.norm(A, axis=1, keepdims=True)
    return A / norms


def make_redundant_regression(
    n: int,
    d: int,
    f: int,
    x_star=None,
    noise_std: float = 0.0,
    seed: SeedLike = 0,
    verify_rank: bool = True,
) -> RegressionInstance:
    """Generate a regression instance satisfying 2f-redundancy by design.

    Parameters
    ----------
    n, d, f:
        Agents, dimension, and fault bound; requires ``n − 2f >= d`` (the
        minimal subsets must be able to pin down ``x*``).
    x_star:
        Ground truth; defaults to the all-ones vector, matching the paper's
        ``x* = (1, 1)ᵀ`` convention.
    noise_std:
        Observation-noise σ; ``0`` gives exact 2f-redundancy.
    verify_rank:
        Double-check the rank property on every minimal submatrix (cheap
        for small ``n``; disable for very large sweeps where the Vandermonde
        guarantee is trusted).
    """
    check_fault_bound(n, f)
    if n - 2 * f < d:
        raise InvalidParameterError(
            f"2f-redundancy needs n - 2f >= d; got n={n}, f={f}, d={d}"
        )
    if noise_std < 0:
        raise InvalidParameterError(f"noise_std must be non-negative, got {noise_std}")
    x_star = (
        np.ones(d) if x_star is None else check_vector(x_star, dimension=d, name="x_star")
    )
    A = design_rows(n, d)
    if verify_rank:
        from repro.core.redundancy import minimal_subset_rank_condition

        if not minimal_subset_rank_condition(A, f):
            raise InvalidParameterError(
                "generated matrix failed the rank check — should be impossible "
                "for a Vandermonde construction"
            )
    rng = ensure_rng(seed)
    noise = rng.normal(scale=noise_std, size=n) if noise_std > 0 else np.zeros(n)
    b = A @ x_star + noise
    costs = [LeastSquaresCost(A[i : i + 1], b[i : i + 1]) for i in range(n)]
    return RegressionInstance(A=A, b=b, x_star=x_star, noise_std=float(noise_std), costs=costs)


def paper_instance(noise_std: float = 0.02, seed: SeedLike = 20200803) -> RegressionInstance:
    """The evaluation configuration of the paper: ``n = 6, f = 1, d = 2``.

    The paper reports its rows and observations only as "omitted for
    brevity"; this reconstruction keeps the stated structure — ``n = 6``
    agents, ``d = 2``, ``x* = (1, 1)ᵀ``, 2f-redundancy by design with
    ``f = 1``, small observation noise — which is what the theory consumes.
    """
    return make_redundant_regression(
        n=6, d=2, f=1, x_star=np.array([1.0, 1.0]), noise_std=noise_std, seed=seed
    )
