"""Multi-class distributed learning (softmax regression on Gaussian blobs).

Extends the binary learning generator to ``K`` classes: each agent holds a
local dataset drawn from a common ``K``-blob mixture (i.i.d./redundant
regime) or from an agent-skewed mixture (heterogeneous regime, where some
classes are rare or absent locally — the severest practical redundancy
violation, since an agent that never sees a class cannot vouch for it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import SoftmaxCost
from repro.utils.rng import SeedLike, ensure_rng, spawn_rngs


@dataclass
class MulticlassInstance:
    """A generated multi-class distributed learning problem."""

    features: List[np.ndarray]
    labels: List[np.ndarray]
    costs: List[SoftmaxCost] = field(repr=False)
    test_features: np.ndarray = field(repr=False, default=None)
    test_labels: np.ndarray = field(repr=False, default=None)
    num_classes: int = 3
    regularization: float = 0.01
    heterogeneity: float = 0.0

    @property
    def n(self) -> int:
        return len(self.features)

    @property
    def num_features(self) -> int:
        return self.features[0].shape[1]

    @property
    def dimension(self) -> int:
        """Dimension of the flattened weight matrix ``(K · p)``."""
        return self.num_classes * self.num_features

    def accuracy(self, x) -> float:
        """Test accuracy of the softmax classifier with parameters ``x``."""
        predictions = self.costs[0].predict(x, self.test_features)
        return float(np.mean(predictions == self.test_labels))


def _class_means(num_classes: int, num_features: int, separation: float) -> np.ndarray:
    """Well-separated class means on (a subspace of) a simplex-like layout."""
    means = np.zeros((num_classes, num_features))
    for k in range(num_classes):
        means[k, k % num_features] = separation
        if num_features > 1:
            means[k, (k + 1) % num_features] = -0.5 * separation * ((-1) ** k)
    return means


def make_multiclass_instance(
    n: int,
    num_classes: int = 3,
    num_features: int = 4,
    samples_per_agent: int = 60,
    heterogeneity: float = 0.0,
    separation: float = 2.5,
    regularization: float = 0.05,
    test_samples: int = 1500,
    seed: SeedLike = 0,
) -> MulticlassInstance:
    """Generate a ``K``-class distributed learning problem.

    Parameters
    ----------
    heterogeneity:
        ``0`` — every agent samples classes uniformly (redundant regime).
        Positive — agent ``i``'s class distribution is tilted toward class
        ``i mod K`` with Dirichlet-style concentration; at large values
        most agents see one dominant class.
    """
    if n <= 0:
        raise InvalidParameterError(f"n must be positive, got {n}")
    if num_classes < 2:
        raise InvalidParameterError(f"num_classes must be >= 2, got {num_classes}")
    if samples_per_agent < num_classes:
        raise InvalidParameterError(
            "samples_per_agent must be at least num_classes so every local "
            "dataset can be non-degenerate"
        )
    if heterogeneity < 0:
        raise InvalidParameterError(f"heterogeneity must be non-negative, got {heterogeneity}")
    rng = ensure_rng(seed)
    streams = spawn_rngs(rng, n + 1)
    test_rng = streams[-1]
    means = _class_means(num_classes, num_features, separation)

    features: List[np.ndarray] = []
    labels: List[np.ndarray] = []
    costs: List[SoftmaxCost] = []
    for i in range(n):
        local = streams[i]
        if heterogeneity > 0:
            weights = np.ones(num_classes)
            weights[i % num_classes] += heterogeneity * num_classes
            probabilities = weights / weights.sum()
        else:
            probabilities = np.full(num_classes, 1.0 / num_classes)
        y = local.choice(num_classes, size=samples_per_agent, p=probabilities)
        Z = means[y] + local.normal(size=(samples_per_agent, num_features))
        features.append(Z)
        labels.append(y)
        costs.append(SoftmaxCost(Z, y, num_classes, regularization))

    test_labels = test_rng.integers(0, num_classes, size=test_samples)
    test_features = means[test_labels] + test_rng.normal(
        size=(test_samples, num_features)
    )
    return MulticlassInstance(
        features=features,
        labels=labels,
        costs=costs,
        test_features=test_features,
        test_labels=test_labels,
        num_classes=num_classes,
        regularization=regularization,
        heterogeneity=float(heterogeneity),
    )
