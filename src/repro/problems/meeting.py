"""The introduction's "meeting point" toy problem.

Each agent sits at a location ``c_i`` and the cost of meeting at ``x`` is
``Q_i(x) = w_i ||x − c_i||²``; the fault-free optimum is the weighted
centroid. With identical locations the problem is maximally redundant
(2f-redundant for every feasible ``f``); spread-out locations break
redundancy, making this the simplest instructive example of the
redundancy/fault-tolerance trade-off — it appears in the quickstart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import TranslatedQuadratic
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_matrix


@dataclass
class MeetingInstance:
    """A generated meeting-point problem."""

    locations: np.ndarray
    weights: np.ndarray
    costs: List[TranslatedQuadratic] = field(repr=False)

    @property
    def n(self) -> int:
        return self.locations.shape[0]

    @property
    def dimension(self) -> int:
        return self.locations.shape[1]

    def honest_meeting_point(self, honest: Sequence[int]) -> np.ndarray:
        """Weighted centroid of the honest agents' locations."""
        honest = sorted(set(int(i) for i in honest))
        if not honest:
            raise InvalidParameterError("honest set must be non-empty")
        w = self.weights[honest]
        return (self.locations[honest] * w[:, None]).sum(axis=0) / w.sum()


def make_meeting_instance(
    n: int,
    d: int = 2,
    spread: float = 1.0,
    weights: Optional[Sequence[float]] = None,
    common_location=None,
    seed: SeedLike = 0,
) -> MeetingInstance:
    """Generate a meeting-point instance.

    Parameters
    ----------
    spread:
        Standard deviation of agent locations around the common point;
        ``0`` puts every agent at the same spot (exact redundancy).
    common_location:
        Center of the location cloud; defaults to the origin.
    """
    if n <= 0 or d <= 0:
        raise InvalidParameterError(f"n and d must be positive, got n={n}, d={d}")
    if spread < 0:
        raise InvalidParameterError(f"spread must be non-negative, got {spread}")
    rng = ensure_rng(seed)
    center = np.zeros(d) if common_location is None else np.asarray(common_location, dtype=float)
    if spread > 0:
        locations = center + rng.normal(scale=spread, size=(n, d))
    else:
        locations = np.tile(center, (n, 1))
    locations = check_matrix(locations, rows=n, cols=d, name="locations")
    if weights is None:
        weight_array = np.ones(n)
    else:
        weight_array = np.asarray(list(weights), dtype=float)
        if weight_array.shape != (n,) or np.any(weight_array <= 0):
            raise InvalidParameterError("weights must be n positive numbers")
    costs = [
        TranslatedQuadratic(locations[i], weight=float(weight_array[i])) for i in range(n)
    ]
    return MeetingInstance(locations=locations, weights=weight_array, costs=costs)
