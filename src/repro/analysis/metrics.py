"""Metrics computed from execution traces.

The paper's plots report two series per execution: the honest aggregate
*loss* ``Σ_{i ∈ H} Q_i(x^t)`` and the *distance* ``||x^t − x_H||`` to the
honest minimizer. These helpers compute both, plus scalar summaries used in
the tables.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import CostFunction
from repro.system.runner import Trace
from repro.utils.validation import check_vector

# ``np.trapezoid`` arrived in numpy 2.0 as the successor of ``np.trapz``
# (removed in 2.x). Resolve whichever this numpy provides, once, at import.
_trapezoid = getattr(np, "trapezoid", None)
if _trapezoid is None:  # pragma: no cover - exercised on numpy<2 only
    _trapezoid = np.trapz


def distance_series(trace: Trace, target) -> np.ndarray:
    """``||x^t − target||`` for every recorded round of a trace."""
    return trace.distances_to(target)


def loss_series(
    trace: Trace, costs: Sequence[CostFunction], ids: Optional[Sequence[int]] = None
) -> np.ndarray:
    """Aggregate loss per round over ``ids`` (the trace's honest set by default)."""
    return trace.losses(costs, ids)


def final_error(trace: Trace, target) -> float:
    """``||x^T − target||`` — the tables' headline number."""
    target = check_vector(target, dimension=trace.dimension, name="target")
    return float(np.linalg.norm(trace.final_estimate - target))


def convergence_iteration(series: np.ndarray, threshold: float) -> Optional[int]:
    """First round from which the series stays below ``threshold`` forever.

    Returns ``None`` when the series never settles below the threshold.
    This "stays below" (rather than "first dips below") definition is
    robust to transient dips during oscillation.
    """
    series = np.asarray(series, dtype=float)
    if threshold <= 0:
        raise InvalidParameterError(f"threshold must be positive, got {threshold}")
    below = series < threshold
    if not below[-1]:
        return None
    # Last index where the series was NOT below; settle point is the next.
    above_indices = np.nonzero(~below)[0]
    if above_indices.size == 0:
        return 0
    settle = int(above_indices[-1]) + 1
    return settle if settle < series.shape[0] else None


def area_under_error(series: np.ndarray) -> float:
    """Trapezoidal area under an error curve — a convergence-speed summary."""
    series = np.asarray(series, dtype=float)
    if series.ndim != 1 or series.shape[0] < 2:
        raise InvalidParameterError("series must be a 1-D array with at least 2 points")
    return float(_trapezoid(series))


def relative_regret(trace: Trace, costs: Sequence[CostFunction], target) -> float:
    """``(L(x^T) − L(x_H)) / max(|L(x_H)|, eps)`` on the honest aggregate loss.

    The denominator uses the *magnitude* of the optimal loss so the metric
    keeps its sign (positive iff the output is worse than ``x_H``) even for
    costs whose minimum is negative, and the ``eps = 1e-12`` floor keeps it
    finite when the optimal loss is (numerically) zero — as with translated
    quadratics whose minimum value is exactly 0, where the regret degrades
    to an absolute-gap-over-eps reading rather than dividing by zero.
    """
    target = check_vector(target, dimension=trace.dimension, name="target")
    honest = trace.honest_ids
    final_loss = float(sum(costs[i].value(trace.final_estimate) for i in honest))
    optimal_loss = float(sum(costs[i].value(target) for i in honest))
    return (final_loss - optimal_loss) / max(abs(optimal_loss), 1e-12)
