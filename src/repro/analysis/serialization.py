"""Persistence of traces and experiment results.

Two formats, chosen by what dominates the payload:

- :func:`save_trace` / :func:`load_trace` — NPZ (arrays dominate; metadata
  rides along as a JSON string inside the archive);
- :func:`save_experiment` / :func:`load_experiment` — JSON (tables and
  notes dominate; series are stored as lists), plus :func:`experiment_to_csv`
  for spreadsheet-friendly table export.

Round-trips are exact for the numeric payloads (float64 preserved by NPZ;
JSON floats survive to within repr precision, which the tests pin down).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.analysis.reporting import ExperimentResult
from repro.exceptions import InvalidParameterError
from repro.system.runner import Trace

PathLike = Union[str, Path]


def save_trace(trace: Trace, path: PathLike) -> Path:
    """Write a :class:`Trace` to an ``.npz`` archive. Returns the path."""
    path = Path(path)
    metadata = {
        "honest_ids": list(trace.honest_ids),
        "faulty_ids": list(trace.faulty_ids),
        "eliminated": list(trace.eliminated),
        "crash_ids": list(trace.crash_ids),
        "wall_time": trace.wall_time,
        "messages_delivered": trace.messages_delivered,
        "bytes_delivered": trace.bytes_delivered,
        "messages_dropped": trace.messages_dropped,
        "bytes_dropped": trace.bytes_dropped,
        "filter_name": trace.filter_name,
    }
    np.savez_compressed(
        path,
        estimates=trace.estimates,
        directions=trace.directions,
        metadata=np.frombuffer(json.dumps(metadata).encode(), dtype=np.uint8),
    )
    # numpy appends .npz when missing; normalize the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_trace(path: PathLike) -> Trace:
    """Read a :class:`Trace` previously written by :func:`save_trace`."""
    with np.load(Path(path)) as archive:
        metadata = json.loads(bytes(archive["metadata"].tobytes()).decode())
        estimates = archive["estimates"]
        directions = archive["directions"]
    return Trace(
        estimates=estimates,
        directions=directions,
        honest_ids=list(metadata["honest_ids"]),
        faulty_ids=list(metadata["faulty_ids"]),
        eliminated=list(metadata["eliminated"]),
        crash_ids=list(metadata.get("crash_ids", [])),
        wall_time=float(metadata["wall_time"]),
        messages_delivered=int(metadata["messages_delivered"]),
        bytes_delivered=int(metadata["bytes_delivered"]),
        # Legacy archives predate drop accounting; default to zero.
        messages_dropped=int(metadata.get("messages_dropped", 0)),
        bytes_dropped=int(metadata.get("bytes_dropped", 0)),
        filter_name=str(metadata["filter_name"]),
    )


def _jsonable(value):
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist()}
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


def experiment_to_dict(result: ExperimentResult) -> dict:
    """Plain-dict form of an :class:`ExperimentResult` (JSON-safe)."""
    return {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [[_jsonable(cell) for cell in row] for row in result.rows],
        "series": {name: np.asarray(values).tolist() for name, values in result.series.items()},
        "notes": list(result.notes),
    }


def experiment_from_dict(payload: dict) -> ExperimentResult:
    """Inverse of :func:`experiment_to_dict`."""
    def revive(cell):
        if isinstance(cell, dict) and "__ndarray__" in cell:
            return np.asarray(cell["__ndarray__"])
        return cell

    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        headers=list(payload["headers"]),
        rows=[[revive(cell) for cell in row] for row in payload["rows"]],
        series={name: np.asarray(values) for name, values in payload["series"].items()},
        notes=list(payload["notes"]),
    )


def save_experiment(result: ExperimentResult, path: PathLike) -> Path:
    """Write an :class:`ExperimentResult` as JSON. Returns the path."""
    path = Path(path)
    path.write_text(json.dumps(experiment_to_dict(result), indent=2))
    return path


def load_experiment(path: PathLike) -> ExperimentResult:
    """Read an :class:`ExperimentResult` written by :func:`save_experiment`."""
    return experiment_from_dict(json.loads(Path(path).read_text()))


def experiment_to_csv(result: ExperimentResult) -> str:
    """Render an experiment's table rows as CSV (header line first)."""
    if not result.headers:
        raise InvalidParameterError("experiment has no tabular payload")
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(result.headers)
    for row in result.rows:
        writer.writerow(
            [
                np.array2string(cell, separator=" ") if isinstance(cell, np.ndarray) else cell
                for cell in row
            ]
        )
    return buffer.getvalue()
