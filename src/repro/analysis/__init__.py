"""Post-hoc analysis of executions: metrics, theory validation, reporting."""

from repro.analysis.metrics import (
    area_under_error,
    convergence_iteration,
    distance_series,
    final_error,
    loss_series,
)
from repro.analysis.rates import RateFit, best_rate_model, fit_geometric, fit_power_law
from repro.analysis.reporting import (
    ExperimentResult,
    format_markdown_table,
    format_series,
    format_table,
    format_traffic_summary,
)
from repro.analysis.serialization import (
    experiment_to_csv,
    load_experiment,
    load_trace,
    save_experiment,
    save_trace,
)
from repro.analysis.theory import TheoreticalGuarantee, guarantee_for_cge, validate_guarantee

__all__ = [
    "distance_series",
    "loss_series",
    "final_error",
    "convergence_iteration",
    "area_under_error",
    "format_table",
    "format_markdown_table",
    "format_traffic_summary",
    "RateFit",
    "fit_power_law",
    "fit_geometric",
    "best_rate_model",
    "format_series",
    "ExperimentResult",
    "save_trace",
    "load_trace",
    "save_experiment",
    "load_experiment",
    "experiment_to_csv",
    "TheoreticalGuarantee",
    "guarantee_for_cge",
    "validate_guarantee",
]
