"""Connecting executions back to the paper's guarantees.

Builds the theoretical convergence guarantee for a configured system
(constants, the ``α > 0`` condition, the asymptotic error radius) and
validates a finished execution against it — the bridge the EXPERIMENTS.md
claims rest on.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from typing import Optional, Sequence

from repro.core.conditions import (
    RegularityConstants,
    cge_alpha,
    cge_error_radius,
    regularity_of_quadratics,
)
from repro.core.redundancy import measure_redundancy_margin
from repro.optimization.cost_functions import CostFunction
from repro.system.runner import Trace
from repro.analysis.metrics import final_error


@dataclass(frozen=True)
class TheoreticalGuarantee:
    """The paper's guarantee instantiated for one configured system.

    Attributes
    ----------
    applicable:
        Whether the preconditions (``α > 0``; positive ``γ``) hold.
    alpha:
        The CGE margin ``1 − (f/n)(1 + 2 μ/γ)``.
    error_radius:
        Guaranteed asymptotic radius around the honest minimizer; ``0``
        under exact 2f-redundancy.
    redundancy_margin:
        The measured ``ε`` the radius was computed from.
    constants:
        The regularity constants used.
    """

    applicable: bool
    alpha: float
    error_radius: float
    redundancy_margin: float
    constants: RegularityConstants
    n: int
    f: int

    def describe(self) -> str:
        if not self.applicable:
            return (
                f"guarantee NOT applicable (alpha={self.alpha:.4f} <= 0 for "
                f"n={self.n}, f={self.f}, mu={self.constants.mu:.4g}, "
                f"gamma={self.constants.gamma:.4g})"
            )
        return (
            f"CGE guarantee: alpha={self.alpha:.4f}, redundancy margin "
            f"eps={self.redundancy_margin:.4g} -> asymptotic error radius "
            f"{self.error_radius:.4g}"
        )


def guarantee_for_cge(
    costs: Sequence[CostFunction],
    f: int,
    honest: Optional[Sequence[int]] = None,
    redundancy_margin: Optional[float] = None,
) -> TheoreticalGuarantee:
    """Instantiate the CGE convergence guarantee for quadratic costs.

    Parameters
    ----------
    costs:
        All agents' costs (quadratic family required for exact constants).
    f:
        Fault bound.
    honest:
        Honest subset used for the constants; defaults to all agents.
    redundancy_margin:
        Pre-measured ``ε``; measured here when omitted.
    """
    costs = list(costs)
    n = len(costs)
    constants = regularity_of_quadratics(costs, f, honest=honest)
    constants.validate()
    if redundancy_margin is None:
        redundancy_margin = measure_redundancy_margin(costs, f).margin
    alpha = cge_alpha(n, f, constants.mu, constants.gamma)
    radius = (
        cge_error_radius(n, f, constants.mu, constants.gamma, redundancy_margin)
        if alpha > 0
        else inf
    )
    return TheoreticalGuarantee(
        applicable=alpha > 0,
        alpha=alpha,
        error_radius=radius,
        redundancy_margin=float(redundancy_margin),
        constants=constants,
        n=n,
        f=f,
    )


def validate_guarantee(
    trace: Trace,
    guarantee: TheoreticalGuarantee,
    target,
    slack: float = 1.5,
    absolute_floor: float = 1e-3,
) -> bool:
    """Check a finished execution against its guarantee.

    The theorem is asymptotic, so a finite execution is held to
    ``slack · radius`` with a small absolute floor for the exact
    (``radius = 0``) case. Returns ``False`` when the guarantee was not
    applicable to begin with (nothing to validate).
    """
    if not guarantee.applicable:
        return False
    bound = max(slack * guarantee.error_radius, absolute_floor)
    return final_error(trace, target) <= bound


@dataclass(frozen=True)
class CwtmGuarantee:
    """The trimmed-mean guarantee instantiated for one configured system.

    Valid when the gradient-skew constant satisfies ``λ < γ / (μ √d)``; the
    asymptotic error radius is then ``D'(λ) · ε`` with the measured
    redundancy margin ``ε``. The condition tightens with the dimension —
    the dependence quantified by experiment E12.
    """

    applicable: bool
    skew: float
    skew_threshold: float
    error_radius: float
    redundancy_margin: float
    constants: RegularityConstants
    n: int
    f: int

    def describe(self) -> str:
        if not self.applicable:
            return (
                f"CWTM guarantee NOT applicable (skew {self.skew:.4f} >= "
                f"threshold {self.skew_threshold:.4f})"
            )
        return (
            f"CWTM guarantee: skew {self.skew:.4f} < threshold "
            f"{self.skew_threshold:.4f} -> asymptotic error radius "
            f"{self.error_radius:.4g}"
        )


def guarantee_for_cwtm(
    costs: Sequence[CostFunction],
    f: int,
    region,
    honest: Optional[Sequence[int]] = None,
    redundancy_margin: Optional[float] = None,
    skew: Optional[float] = None,
    num_samples: int = 256,
    seed: int = 0,
) -> CwtmGuarantee:
    """Instantiate the trimmed-mean (CWTM) convergence guarantee.

    Parameters
    ----------
    costs:
        All agents' costs (quadratic family for exact constants).
    f:
        Fault bound.
    region:
        The convex region over which the gradient-skew constant ``λ`` is
        estimated (typically the constraint set ``W`` or a ball around the
        minimizer).
    skew:
        Pre-measured ``λ``; estimated by sampling when omitted.
    """
    from math import sqrt

    from repro.core.conditions import cwtm_error_radius, estimate_gradient_skew

    costs = list(costs)
    n = len(costs)
    constants = regularity_of_quadratics(costs, f, honest=honest)
    constants.validate()
    if skew is None:
        honest_list = list(range(n)) if honest is None else list(honest)
        skew = estimate_gradient_skew(
            [costs[i] for i in honest_list], region,
            num_samples=num_samples, seed=seed,
        )
    if redundancy_margin is None:
        redundancy_margin = measure_redundancy_margin(costs, f).margin
    threshold = constants.gamma / (constants.mu * sqrt(constants.dimension))
    radius = cwtm_error_radius(
        n, f, constants.mu, constants.gamma, skew, constants.dimension,
        epsilon=redundancy_margin,
    )
    return CwtmGuarantee(
        applicable=skew < threshold,
        skew=float(skew),
        skew_threshold=float(threshold),
        error_radius=radius,
        redundancy_margin=float(redundancy_margin),
        constants=constants,
        n=n,
        f=f,
    )
