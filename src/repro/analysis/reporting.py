"""Plain-text reporting for tables and series.

The benches print the same rows/series the paper's tables and figures
report; these helpers render them as aligned ASCII so bench output is
readable in a terminal and diffable in CI logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError


def _stringify(value) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4f}"
    if isinstance(value, np.ndarray):
        return np.array2string(value, precision=4, separator=", ")
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: Optional[str] = None) -> str:
    """Render an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row cell values (stringified with sensible float formatting).
    title:
        Optional title line above the table.
    """
    headers = [str(h) for h in headers]
    if any(len(row) != len(headers) for row in rows):
        raise InvalidParameterError("every row must match the header length")
    cells = [[_stringify(value) for value in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in cells)) if cells else len(headers[c])
        for c in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in cells:
        lines.append(" | ".join(value.ljust(w) for value, w in zip(row, widths)))
    return "\n".join(lines)


#: Canonical display order of traffic counters; anything else the summary
#: carries is appended alphabetically so no counter is silently hidden.
_TRAFFIC_ORDER = (
    "messages_delivered",
    "messages_dropped",
    "bytes_delivered",
    "bytes_dropped",
    "messages_delayed",
    "messages_duplicated",
    "messages_corrupted",
)


def format_traffic_summary(summary: Dict[str, int], title: str = "network traffic") -> str:
    """Render a network ``traffic_summary()`` dict as an aligned table.

    Accepts both the synchronous network's four delivered/dropped totals
    and the partially-synchronous network's extended counters; drop totals
    are always shown (zero included) so a clean run is distinguishable
    from a run that never accounted drops.
    """
    if not summary:
        raise InvalidParameterError("traffic summary is empty")
    ordered = [key for key in _TRAFFIC_ORDER if key in summary]
    ordered += sorted(set(summary) - set(_TRAFFIC_ORDER))
    rows = [[key, int(summary[key])] for key in ordered]
    return format_table(["counter", "total"], rows, title=title)


_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def format_series(
    name: str, series, width: int = 60, logarithmic: bool = True
) -> str:
    """Render a numeric series as a one-line unicode sparkline with endpoints.

    Used by the figure benches to give a quick visual of each trajectory
    without a plotting dependency.
    """
    values = np.asarray(series, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise InvalidParameterError("series must be a non-empty 1-D array")
    if values.size > width:
        # Downsample by striding so the sparkline fits the width.
        indices = np.linspace(0, values.size - 1, width).astype(int)
        sampled = values[indices]
    else:
        sampled = values
    display = sampled.copy()
    if logarithmic:
        floor = max(np.min(display[display > 0], initial=1e-12), 1e-12)
        display = np.log10(np.maximum(display, floor))
    low, high = float(np.min(display)), float(np.max(display))
    if high - low < 1e-15:
        bars = _SPARK_LEVELS[0] * sampled.size
    else:
        scaled = (display - low) / (high - low)
        bars = "".join(
            _SPARK_LEVELS[min(int(v * len(_SPARK_LEVELS)), len(_SPARK_LEVELS) - 1)]
            for v in scaled
        )
    return f"{name:<28} {bars}  start={values[0]:.4g} end={values[-1]:.4g}"


@dataclass
class ExperimentResult:
    """Structured output of one experiment (one paper table or figure).

    Attributes
    ----------
    experiment_id:
        The DESIGN.md id (e.g. ``"E1"``).
    title:
        Human-readable description.
    headers / rows:
        Tabular payload (tables).
    series:
        Named numeric series (figures).
    notes:
        Free-form annotations (measured constants, qualitative claims).
    """

    experiment_id: str
    title: str
    headers: List[str] = field(default_factory=list)
    rows: List[List] = field(default_factory=list)
    series: Dict[str, np.ndarray] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self, series_width: int = 60) -> str:
        """Full plain-text rendering (table, then sparklines, then notes)."""
        parts: List[str] = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            parts.append(format_table(self.headers, self.rows))
        for name in self.series:
            parts.append(format_series(name, self.series[name], width=series_width))
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)


def format_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: Optional[str] = None
) -> str:
    """Render a GitHub-flavoured markdown table (for docs and reports)."""
    headers = [str(h) for h in headers]
    if any(len(row) != len(headers) for row in rows):
        raise InvalidParameterError("every row must match the header length")
    lines: List[str] = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(_stringify(value) for value in row) + " |")
    return "\n".join(lines)
