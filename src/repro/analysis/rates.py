"""Empirical convergence-rate estimation from traces.

The theory promises qualitative rates — e.g. ``O(1/t)`` squared-error decay
for strongly convex SGD with a Robbins–Monro schedule, geometric decay for
deterministic gradient descent with constant steps. This module fits the
observed decay of an error series so experiments can *check* those shapes
instead of eyeballing curves:

- :func:`fit_power_law` — fit ``error(t) ≈ C · t^(−p)`` by least squares in
  log–log space, returning the exponent ``p`` and the fit quality;
- :func:`fit_geometric` — fit ``error(t) ≈ C · ρ^t`` in semi-log space,
  returning the contraction factor ``ρ``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import InvalidParameterError


@dataclass(frozen=True)
class RateFit:
    """Result of a rate fit.

    Attributes
    ----------
    parameter:
        The fitted rate — the power-law exponent ``p`` or the geometric
        factor ``ρ``, by fit type.
    constant:
        The fitted multiplicative constant ``C``.
    r_squared:
        Coefficient of determination of the (log-space) linear fit; near 1
        means the model shape matches the data.
    kind:
        ``"power"`` or ``"geometric"``.
    """

    parameter: float
    constant: float
    r_squared: float
    kind: str

    def describe(self) -> str:
        if self.kind == "power":
            return (
                f"error(t) ≈ {self.constant:.3g} · t^(-{self.parameter:.3f}) "
                f"(R² = {self.r_squared:.3f})"
            )
        return (
            f"error(t) ≈ {self.constant:.3g} · {self.parameter:.5f}^t "
            f"(R² = {self.r_squared:.3f})"
        )


def _prepare(series, burn_in: int, floor: float):
    values = np.asarray(series, dtype=float)
    if values.ndim != 1 or values.size < burn_in + 4:
        raise InvalidParameterError(
            "series must be 1-D with at least burn_in + 4 points"
        )
    t = np.arange(values.size)[burn_in:]
    y = values[burn_in:]
    mask = y > floor
    if mask.sum() < 4:
        raise InvalidParameterError(
            "series is at the numerical floor; nothing to fit"
        )
    return t[mask], y[mask]


def _linear_fit(x: np.ndarray, y: np.ndarray):
    slope, intercept = np.polyfit(x, y, deg=1)
    predicted = slope * x + intercept
    residual = float(np.sum((y - predicted) ** 2))
    total = float(np.sum((y - y.mean()) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return slope, intercept, r_squared


def fit_power_law(series, burn_in: int = 10, floor: float = 1e-14) -> RateFit:
    """Fit ``error(t) ≈ C t^(−p)`` over ``t >= burn_in``.

    Parameters
    ----------
    series:
        Error values per iteration (``series[t]`` at round ``t``).
    burn_in:
        Initial rounds excluded (transient phase).
    floor:
        Values at/below this are treated as numerical zero and excluded.
    """
    t, y = _prepare(series, burn_in, floor)
    slope, intercept, r_squared = _linear_fit(np.log(t + 1.0), np.log(y))
    return RateFit(
        parameter=-slope, constant=float(np.exp(intercept)),
        r_squared=r_squared, kind="power",
    )


def fit_geometric(series, burn_in: int = 5, floor: float = 1e-14) -> RateFit:
    """Fit ``error(t) ≈ C ρ^t`` over ``t >= burn_in`` (``ρ < 1`` = contraction)."""
    t, y = _prepare(series, burn_in, floor)
    slope, intercept, r_squared = _linear_fit(t.astype(float), np.log(y))
    return RateFit(
        parameter=float(np.exp(slope)), constant=float(np.exp(intercept)),
        r_squared=r_squared, kind="geometric",
    )


def best_rate_model(series, burn_in: int = 10, floor: float = 1e-14) -> RateFit:
    """Fit both models and return the one with the higher R²."""
    power = fit_power_law(series, burn_in=burn_in, floor=floor)
    geometric = fit_geometric(series, burn_in=burn_in, floor=floor)
    return power if power.r_squared >= geometric.r_squared else geometric
