"""Compact convex constraint sets ``W`` and their metric projections.

The paper constrains the server's iterates to a compact convex set
``W ⊂ R^d`` via the projection ``[x]_W = argmin_{y ∈ W} ||x − y||``
(unique because ``W`` is convex and closed). Box and ball sets have exact
closed-form projections; intersections are handled with Dykstra's
alternating-projection algorithm.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.exceptions import ConvergenceError, DimensionMismatchError, InvalidParameterError
from repro.utils.validation import check_vector


class ConvexSet(abc.ABC):
    """A closed convex subset of ``R^d`` supporting metric projection."""

    def __init__(self, dimension: int, compact: bool):
        if dimension <= 0:
            raise InvalidParameterError(f"dimension must be positive, got {dimension}")
        self._dimension = int(dimension)
        self._compact = bool(compact)

    @property
    def dimension(self) -> int:
        return self._dimension

    @property
    def is_compact(self) -> bool:
        """Whether the set is bounded (required by the convergence theorem)."""
        return self._compact

    @abc.abstractmethod
    def project(self, x) -> np.ndarray:
        """The unique nearest point ``[x]_W``."""

    def contains(self, x, tol: float = 1e-9) -> bool:
        """Whether ``x`` lies in the set (within ``tol``)."""
        x = check_vector(x, dimension=self._dimension, name="x")
        return bool(np.linalg.norm(self.project(x) - x) <= tol)

    def diameter(self) -> float:
        """An upper bound on ``sup_{x,y ∈ W} ||x − y||`` when compact."""
        raise NotImplementedError

    def _check(self, x) -> np.ndarray:
        return check_vector(x, dimension=self._dimension, name="x")


class UnconstrainedSet(ConvexSet):
    """All of ``R^d`` — projection is the identity.

    Not compact: using it voids the convergence theorem's precondition, and
    the simulation surfaces a warning when it is chosen.
    """

    def __init__(self, dimension: int):
        super().__init__(dimension, compact=False)

    def project(self, x) -> np.ndarray:
        return self._check(x).copy()

    def __repr__(self) -> str:
        return f"UnconstrainedSet(d={self.dimension})"


class BoxSet(ConvexSet):
    """Axis-aligned box ``{x : lower <= x <= upper}`` (component-wise)."""

    def __init__(self, lower, upper):
        lower = check_vector(lower, name="lower")
        upper = check_vector(upper, dimension=lower.shape[0], name="upper")
        if np.any(lower > upper):
            raise InvalidParameterError("lower bound exceeds upper bound in some coordinate")
        super().__init__(lower.shape[0], compact=True)
        self._lower = lower
        self._upper = upper

    @classmethod
    def centered(cls, dimension: int, half_width: float) -> "BoxSet":
        """The symmetric box ``[−half_width, half_width]^d``."""
        if half_width <= 0:
            raise InvalidParameterError(f"half_width must be positive, got {half_width}")
        bound = np.full(dimension, float(half_width))
        return cls(-bound, bound)

    @property
    def lower(self) -> np.ndarray:
        return self._lower.copy()

    @property
    def upper(self) -> np.ndarray:
        return self._upper.copy()

    def project(self, x) -> np.ndarray:
        x = self._check(x)
        return np.clip(x, self._lower, self._upper)

    def diameter(self) -> float:
        return float(np.linalg.norm(self._upper - self._lower))

    def __repr__(self) -> str:
        return f"BoxSet(d={self.dimension})"


class BallSet(ConvexSet):
    """Euclidean ball ``{x : ||x − center|| <= radius}``."""

    def __init__(self, center, radius: float):
        center = check_vector(center, name="center")
        radius = float(radius)
        if radius <= 0:
            raise InvalidParameterError(f"radius must be positive, got {radius}")
        super().__init__(center.shape[0], compact=True)
        self._center = center
        self._radius = radius

    @property
    def center(self) -> np.ndarray:
        return self._center.copy()

    @property
    def radius(self) -> float:
        return self._radius

    def project(self, x) -> np.ndarray:
        x = self._check(x)
        delta = x - self._center
        norm = float(np.linalg.norm(delta))
        if norm <= self._radius:
            return x.copy()
        return self._center + delta * (self._radius / norm)

    def diameter(self) -> float:
        return 2.0 * self._radius

    def __repr__(self) -> str:
        return f"BallSet(d={self.dimension}, r={self._radius})"


class HalfSpace(ConvexSet):
    """Half-space ``{x : ⟨normal, x⟩ <= offset}`` (not compact on its own)."""

    def __init__(self, normal, offset: float):
        normal = check_vector(normal, name="normal")
        norm = float(np.linalg.norm(normal))
        if norm == 0.0:
            raise InvalidParameterError("normal must be non-zero")
        super().__init__(normal.shape[0], compact=False)
        self._normal = normal / norm
        self._offset = float(offset) / norm

    def project(self, x) -> np.ndarray:
        x = self._check(x)
        violation = float(self._normal @ x) - self._offset
        if violation <= 0:
            return x.copy()
        return x - violation * self._normal

    def __repr__(self) -> str:
        return f"HalfSpace(d={self.dimension})"


class IntersectionSet(ConvexSet):
    """Intersection of convex sets, projected via Dykstra's algorithm.

    Dykstra's algorithm (unlike plain alternating projection) converges to
    the *metric projection* onto the intersection, which is what the DGD
    update rule requires.
    """

    def __init__(self, members: Sequence[ConvexSet], max_iterations: int = 200, tol: float = 1e-10):
        members = list(members)
        if not members:
            raise InvalidParameterError("IntersectionSet requires at least one member")
        dimension = members[0].dimension
        for member in members:
            if member.dimension != dimension:
                raise DimensionMismatchError("all members must share one dimension")
        super().__init__(dimension, compact=any(m.is_compact for m in members))
        self._members = members
        self._max_iterations = int(max_iterations)
        self._tol = float(tol)

    @property
    def members(self) -> Sequence[ConvexSet]:
        return list(self._members)

    def project(self, x) -> np.ndarray:
        x = self._check(x)
        if len(self._members) == 1:
            return self._members[0].project(x)
        current = x.copy()
        corrections = [np.zeros_like(x) for _ in self._members]
        for _ in range(self._max_iterations):
            previous = current.copy()
            for index, member in enumerate(self._members):
                candidate = current + corrections[index]
                projected = member.project(candidate)
                corrections[index] = candidate - projected
                current = projected
            if np.linalg.norm(current - previous) <= self._tol:
                return current
        if all(member.contains(current, tol=1e-6) for member in self._members):
            return current
        raise ConvergenceError(
            "Dykstra projection did not converge; the intersection may be empty",
            best=current,
        )

    def __repr__(self) -> str:
        return f"IntersectionSet(k={len(self._members)}, d={self.dimension})"
