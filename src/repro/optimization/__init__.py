"""Optimization substrate: cost functions, schedules, projections, solvers."""

from repro.optimization.cost_functions import (
    CostFunction,
    HuberCost,
    LeastSquaresCost,
    LogisticCost,
    MeanCost,
    QuadraticCost,
    ScaledCost,
    SmoothedHingeCost,
    SoftmaxCost,
    SumCost,
    TranslatedQuadratic,
    aggregate,
)
from repro.optimization.gd import GDResult, gradient_descent, solve_argmin
from repro.optimization.nonsmooth import (
    AbsoluteDeviationCost,
    l1_aggregate_argmin,
    l1_solver,
    weighted_median_interval,
)
from repro.optimization.projections import (
    BallSet,
    BoxSet,
    ConvexSet,
    HalfSpace,
    IntersectionSet,
    UnconstrainedSet,
)
from repro.optimization.stochastic import (
    MinibatchCost,
    NoisyGradientCost,
    with_gradient_noise,
)
from repro.optimization.step_sizes import (
    ConstantStepSize,
    DiminishingStepSize,
    PolynomialStepSize,
    StepSizeSchedule,
)

__all__ = [
    "CostFunction",
    "QuadraticCost",
    "LeastSquaresCost",
    "LogisticCost",
    "SmoothedHingeCost",
    "SoftmaxCost",
    "HuberCost",
    "TranslatedQuadratic",
    "SumCost",
    "MeanCost",
    "ScaledCost",
    "aggregate",
    "StepSizeSchedule",
    "ConstantStepSize",
    "DiminishingStepSize",
    "PolynomialStepSize",
    "ConvexSet",
    "BoxSet",
    "BallSet",
    "HalfSpace",
    "IntersectionSet",
    "UnconstrainedSet",
    "gradient_descent",
    "NoisyGradientCost",
    "MinibatchCost",
    "with_gradient_noise",
    "AbsoluteDeviationCost",
    "weighted_median_interval",
    "l1_aggregate_argmin",
    "l1_solver",
    "GDResult",
    "solve_argmin",
]
