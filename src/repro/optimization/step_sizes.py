"""Step-size schedules for (distributed) gradient descent.

The paper's convergence analysis requires a *diminishing* step-size sequence
satisfying the Robbins–Monro conditions ``Σ η_t = ∞`` and ``Σ η_t² < ∞``.
Each schedule knows whether it satisfies these conditions so that the
simulation can warn when an experiment is configured outside the theory.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.exceptions import InvalidParameterError


class StepSizeSchedule(abc.ABC):
    """A map from iteration index ``t ∈ {0, 1, ...}`` to a step size ``η_t > 0``."""

    @abc.abstractmethod
    def __call__(self, t: int) -> float:
        """Step size for iteration ``t``."""

    @property
    @abc.abstractmethod
    def satisfies_robbins_monro(self) -> bool:
        """Whether ``Σ η_t = ∞`` and ``Σ η_t² < ∞`` both hold."""

    def _check_iteration(self, t: int) -> int:
        t = int(t)
        if t < 0:
            raise InvalidParameterError(f"iteration index must be non-negative, got {t}")
        return t


class ConstantStepSize(StepSizeSchedule):
    """``η_t = η`` for all ``t``.

    Violates Robbins–Monro (``Σ η_t² = ∞``); convergence is then only to a
    neighbourhood of the minimizer. Provided for ablations.
    """

    def __init__(self, eta: float):
        eta = float(eta)
        if eta <= 0:
            raise InvalidParameterError(f"step size must be positive, got {eta}")
        self._eta = eta

    def __call__(self, t: int) -> float:
        self._check_iteration(t)
        return self._eta

    @property
    def satisfies_robbins_monro(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"ConstantStepSize({self._eta})"


class DiminishingStepSize(StepSizeSchedule):
    """Harmonic schedule ``η_t = c / (t + t0)``.

    Satisfies Robbins–Monro: the harmonic series diverges while its squares
    converge. This is the schedule the paper's experiments use.
    """

    def __init__(self, c: float = 1.0, t0: float = 1.0):
        c = float(c)
        t0 = float(t0)
        if c <= 0:
            raise InvalidParameterError(f"c must be positive, got {c}")
        if t0 <= 0:
            raise InvalidParameterError(f"t0 must be positive, got {t0}")
        self._c = c
        self._t0 = t0

    @property
    def c(self) -> float:
        return self._c

    @property
    def t0(self) -> float:
        return self._t0

    def __call__(self, t: int) -> float:
        t = self._check_iteration(t)
        return self._c / (t + self._t0)

    @property
    def satisfies_robbins_monro(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"DiminishingStepSize(c={self._c}, t0={self._t0})"


class PolynomialStepSize(StepSizeSchedule):
    """``η_t = c / (t + t0)^p`` for an exponent ``p ∈ (0.5, 1]``.

    The exponent window is exactly the Robbins–Monro-compatible range:
    ``p > 0.5`` makes ``Σ η_t²`` finite, ``p <= 1`` keeps ``Σ η_t`` infinite.
    Exponents outside the window are rejected rather than silently accepted.
    """

    def __init__(self, c: float = 1.0, power: float = 1.0, t0: float = 1.0):
        c = float(c)
        power = float(power)
        t0 = float(t0)
        if c <= 0:
            raise InvalidParameterError(f"c must be positive, got {c}")
        if not 0.5 < power <= 1.0:
            raise InvalidParameterError(
                f"power must lie in (0.5, 1] for Robbins-Monro, got {power}"
            )
        if t0 <= 0:
            raise InvalidParameterError(f"t0 must be positive, got {t0}")
        self._c = c
        self._power = power
        self._t0 = t0

    def __call__(self, t: int) -> float:
        t = self._check_iteration(t)
        return self._c / (t + self._t0) ** self._power

    @property
    def satisfies_robbins_monro(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"PolynomialStepSize(c={self._c}, power={self._power}, t0={self._t0})"


def suggest_diminishing(costs: Sequence, aggregation: str = "sum") -> "DiminishingStepSize":
    """Curvature-adapted diminishing schedule for a family of costs.

    Uses the classical strongly convex prescription ``η_t = c / (t + t0)``
    with ``c = 1/γ`` and ``t0 = L/γ`` (so ``η_0 = 1/L``), where ``γ`` and
    ``L`` are the extreme eigenvalues of the aggregate Hessian — the sum of
    the local Hessians when the filter direction is a *sum* of gradients
    (CGE), or their mean when it is an *average* (CWTM, plain averaging).

    Parameters
    ----------
    costs:
        Cost functions exposing ``hessian``; a cost without a Hessian makes
        the suggestion fall back to a conservative fixed schedule.
    aggregation:
        ``"sum"`` or ``"mean"`` — the scale of the filter's output.
    """
    if aggregation not in ("sum", "mean"):
        raise InvalidParameterError(
            f"aggregation must be 'sum' or 'mean', got {aggregation!r}"
        )
    costs = list(costs)
    if not costs:
        raise InvalidParameterError("costs must be non-empty")
    dimension = costs[0].dimension
    total = np.zeros((dimension, dimension))
    probe = np.zeros(dimension)
    try:
        for cost in costs:
            total += cost.hessian(probe)
    except NotImplementedError:
        return DiminishingStepSize(c=0.1, t0=1.0)
    if aggregation == "mean":
        total /= len(costs)
    eigenvalues = np.linalg.eigvalsh(total)
    gamma = float(max(eigenvalues[0], 0.0))
    smoothness = float(max(eigenvalues[-1], 0.0))
    if smoothness <= 0.0:
        return DiminishingStepSize(c=0.1, t0=1.0)
    if gamma <= 1e-12 * smoothness:
        # Merely convex aggregate: no 1/γ prescription; step at 1/L.
        return DiminishingStepSize(c=1.0 / smoothness, t0=1.0)
    return DiminishingStepSize(c=1.0 / gamma, t0=max(smoothness / gamma, 1.0))
