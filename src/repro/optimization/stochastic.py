"""Stochastic gradient oracles — the SGD extension of the paper's setting.

The PODC 2020 paper analyses exact (full) local gradients; the authors'
follow-up work extends CGE to *stochastic* gradients (local minibatches).
This module provides the two standard stochastic oracles so the library
covers that extension:

- :class:`NoisyGradientCost` — adds i.i.d. Gaussian noise to an exact
  gradient (the abstract bounded-variance oracle of SGD analyses);
- :class:`MinibatchCost` — dataset-backed: each gradient call draws a
  fresh uniform minibatch of a finite dataset of quadratic residuals
  (``Q(x) = mean_j (b_j − a_j·x)²``), the concrete oracle of empirical
  risk minimization.

Both report exact values (``value``/``hessian`` of the underlying full
cost) so loss curves and theory constants stay well defined; only
``gradient`` is stochastic. Draws come from a dedicated per-cost generator,
so executions remain reproducible given the construction seed.

With stochastic oracles the Robbins–Monro step-size conditions become
*load-bearing*: gradient noise survives any aggregation rule, so a constant
step stalls at an ``O(η·σ)`` noise ball while a diminishing schedule drives
the error to zero — quantified by the A4 ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import CostFunction, LeastSquaresCost
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_matrix, check_vector


class NoisyGradientCost(CostFunction):
    """Wrap a cost with an additive-Gaussian-noise gradient oracle.

    Parameters
    ----------
    base:
        The underlying (exact) cost.
    noise_std:
        Standard deviation of the isotropic gradient noise.
    seed:
        Dedicated noise stream.
    """

    def __init__(self, base: CostFunction, noise_std: float, seed: SeedLike = None):
        if noise_std < 0:
            raise InvalidParameterError(f"noise_std must be non-negative, got {noise_std}")
        super().__init__(base.dimension)
        self._base = base
        self._noise_std = float(noise_std)
        self._rng = ensure_rng(seed)

    @property
    def base(self) -> CostFunction:
        return self._base

    @property
    def noise_std(self) -> float:
        return self._noise_std

    def value(self, x) -> float:
        return self._base.value(x)

    def gradient(self, x) -> np.ndarray:
        exact = self._base.gradient(x)
        if self._noise_std == 0.0:
            return exact
        return exact + self._rng.normal(scale=self._noise_std, size=self.dimension)

    def exact_gradient(self, x) -> np.ndarray:
        """The underlying noise-free gradient (for analysis)."""
        return self._base.gradient(x)

    def hessian(self, x) -> np.ndarray:
        return self._base.hessian(x)

    def argmin_set(self):
        return self._base.argmin_set()


class MinibatchCost(CostFunction):
    """Least-squares empirical risk with minibatch gradient draws.

    ``Q(x) = (1/m) Σ_j (b_j − a_j·x)²`` over a local dataset of ``m``
    samples; each :meth:`gradient` call evaluates the gradient on a fresh
    uniform minibatch (with replacement), giving an unbiased estimator
    whose variance shrinks with the batch size.
    """

    def __init__(self, A, b, batch_size: int, seed: SeedLike = None):
        A = check_matrix(A, name="A")
        b = check_vector(b, dimension=A.shape[0], name="b")
        if A.shape[0] == 0:
            raise InvalidParameterError("MinibatchCost requires at least one sample")
        batch_size = int(batch_size)
        if batch_size <= 0:
            raise InvalidParameterError(f"batch_size must be positive, got {batch_size}")
        super().__init__(A.shape[1])
        self._A = A
        self._b = b
        self._batch_size = min(batch_size, A.shape[0])
        self._rng = ensure_rng(seed)
        self._full = LeastSquaresCost(A, b)
        # Mean-scaled: value/gradient are per-sample averages.
        self._scale = 1.0 / A.shape[0]

    @property
    def batch_size(self) -> int:
        return self._batch_size

    @property
    def num_samples(self) -> int:
        return self._A.shape[0]

    def value(self, x) -> float:
        return self._scale * self._full.value(x)

    def gradient(self, x) -> np.ndarray:
        x = self._check(x)
        indices = self._rng.integers(0, self._A.shape[0], size=self._batch_size)
        A = self._A[indices]
        residual = A @ x - self._b[indices]
        return (2.0 / self._batch_size) * (A.T @ residual)

    def exact_gradient(self, x) -> np.ndarray:
        """The full-dataset (mean) gradient."""
        return self._scale * self._full.gradient(x)

    def hessian(self, x) -> np.ndarray:
        return self._scale * self._full.hessian(x)

    def argmin_set(self):
        return self._full.argmin_set()


def with_gradient_noise(costs, noise_std: float, seed: SeedLike = 0):
    """Wrap every cost in a family with independent noisy-gradient oracles."""
    from repro.utils.rng import spawn_rngs

    costs = list(costs)
    streams = spawn_rngs(seed, len(costs))
    return [
        NoisyGradientCost(cost, noise_std, seed=stream)
        for cost, stream in zip(costs, streams)
    ]
