"""Local cost functions held by agents.

Every agent ``i`` in the paper's model holds a local cost
``Q_i : R^d → R``. This module provides the concrete families used by the
problem generators and experiments, plus combinators for forming the subset
aggregates ``Σ_{i ∈ S} Q_i`` that the redundancy theory quantifies over.

Quadratic costs (including least squares, the paper's evaluation workload)
carry *exact* argmin sets: a :class:`repro.core.geometry.Singleton` when the
aggregate Hessian is non-singular, otherwise an
:class:`repro.core.geometry.AffineSubspace` of solutions. The redundancy
checker exploits this to avoid numerical minimization entirely.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.core.geometry import AffineSubspace, ArgminSet, Singleton
from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.utils.validation import check_matrix, check_vector


class CostFunction(abc.ABC):
    """A differentiable local cost ``Q : R^d → R``.

    Subclasses must implement :meth:`value` and :meth:`gradient`;
    :meth:`hessian` and :meth:`argmin_set` are optional capabilities that
    unlock closed-form paths in the theory modules.
    """

    def __init__(self, dimension: int):
        if dimension <= 0:
            raise InvalidParameterError(f"dimension must be positive, got {dimension}")
        self._dimension = int(dimension)

    @property
    def dimension(self) -> int:
        """Dimension ``d`` of the decision variable."""
        return self._dimension

    @abc.abstractmethod
    def value(self, x) -> float:
        """Evaluate ``Q(x)``."""

    @abc.abstractmethod
    def gradient(self, x) -> np.ndarray:
        """Evaluate ``∇Q(x)``."""

    def hessian(self, x) -> np.ndarray:
        """Evaluate ``∇²Q(x)``; optional."""
        raise NotImplementedError(f"{type(self).__name__} does not expose a Hessian")

    def argmin_set(self) -> ArgminSet:
        """The exact set of minimizers, when known in closed form."""
        raise NotImplementedError(f"{type(self).__name__} has no closed-form argmin")

    @property
    def has_closed_form_argmin(self) -> bool:
        """Whether :meth:`argmin_set` is available without iteration."""
        try:
            self.argmin_set()
        except NotImplementedError:
            return False
        return True

    def _check(self, x) -> np.ndarray:
        return check_vector(x, dimension=self._dimension, name="x")

    def __add__(self, other: "CostFunction") -> "SumCost":
        return SumCost([self, other])

    def __mul__(self, scalar: float) -> "ScaledCost":
        return ScaledCost(self, scalar)

    __rmul__ = __mul__


class QuadraticCost(CostFunction):
    """Convex quadratic ``Q(x) = ½ xᵀ P x + qᵀ x + c`` with ``P ⪰ 0``.

    Positive semi-definiteness of ``P`` is validated (symmetrized first) so
    that the closed-form argmin logic is sound.
    """

    def __init__(self, P, q, c: float = 0.0):
        P = check_matrix(P, name="P")
        q = check_vector(q, name="q")
        if P.shape[0] != P.shape[1]:
            raise DimensionMismatchError(f"P must be square, got {P.shape}")
        if P.shape[0] != q.shape[0]:
            raise DimensionMismatchError(
                f"P and q disagree on dimension: {P.shape[0]} vs {q.shape[0]}"
            )
        super().__init__(q.shape[0])
        self._P = 0.5 * (P + P.T)
        eigenvalues = np.linalg.eigvalsh(self._P)
        if eigenvalues[0] < -1e-8 * max(1.0, abs(eigenvalues[-1])):
            raise InvalidParameterError(
                f"P must be positive semi-definite; smallest eigenvalue {eigenvalues[0]:.3e}"
            )
        self._q = q
        self._c = float(c)
        self._eigenvalues = eigenvalues

    @property
    def P(self) -> np.ndarray:
        return self._P.copy()

    @property
    def q(self) -> np.ndarray:
        return self._q.copy()

    @property
    def c(self) -> float:
        return self._c

    def value(self, x) -> float:
        x = self._check(x)
        return float(0.5 * x @ self._P @ x + self._q @ x + self._c)

    def gradient(self, x) -> np.ndarray:
        x = self._check(x)
        return self._P @ x + self._q

    def hessian(self, x) -> np.ndarray:
        self._check(x)
        return self._P.copy()

    def argmin_set(self) -> ArgminSet:
        """Solve ``P x = -q`` exactly.

        A singular ``P`` yields an affine subspace of minimizers provided
        ``-q`` lies in the range of ``P`` (otherwise the cost is unbounded
        below and :class:`InvalidParameterError` is raised, since such a
        cost violates the paper's Assumption 1).
        """
        d = self.dimension
        rhs = -self._q
        solution, *_ = np.linalg.lstsq(self._P, rhs, rcond=None)
        if not np.allclose(self._P @ solution, rhs, atol=1e-8 * max(1.0, np.linalg.norm(rhs))):
            raise InvalidParameterError(
                "quadratic cost is unbounded below (q not in range of P); "
                "Assumption 1 of the paper is violated"
            )
        # Null space of P spans the flat directions of the argmin set.
        eigenvalues, eigenvectors = np.linalg.eigh(self._P)
        scale = max(abs(eigenvalues[-1]), 1.0)
        null_mask = np.abs(eigenvalues) <= 1e-10 * scale
        if not np.any(null_mask):
            return Singleton(solution)
        return AffineSubspace(solution, eigenvectors[:, null_mask])

    def strong_convexity(self) -> float:
        """Smallest eigenvalue of ``P`` (0 when merely convex)."""
        return float(max(self._eigenvalues[0], 0.0))

    def smoothness(self) -> float:
        """Largest eigenvalue of ``P`` (the Lipschitz constant of ``∇Q``)."""
        return float(max(self._eigenvalues[-1], 0.0))


class LeastSquaresCost(QuadraticCost):
    """Squared-error cost ``Q(x) = ||A x - b||²``.

    This is the cost family of the paper's numerical evaluation: agent ``i``
    holds one (or more) rows ``A_i`` and observations ``b_i`` and defines
    ``Q_i(x) = (b_i − A_i x)²``.
    """

    def __init__(self, A, b):
        A = check_matrix(A, name="A")
        b = check_vector(b, name="b")
        if A.shape[0] != b.shape[0]:
            raise DimensionMismatchError(
                f"A and b disagree on the number of observations: {A.shape[0]} vs {b.shape[0]}"
            )
        super().__init__(2.0 * A.T @ A, -2.0 * A.T @ b, float(b @ b))
        self._A = A
        self._b = b

    @property
    def A(self) -> np.ndarray:
        return self._A.copy()

    @property
    def b(self) -> np.ndarray:
        return self._b.copy()

    def residual(self, x) -> np.ndarray:
        """``A x − b`` at the point ``x``."""
        x = self._check(x)
        return self._A @ x - self._b


class TranslatedQuadratic(QuadraticCost):
    """The "meeting point" cost ``Q(x) = w ||x − target||²``."""

    def __init__(self, target, weight: float = 1.0):
        target = check_vector(target, name="target")
        if weight <= 0:
            raise InvalidParameterError(f"weight must be positive, got {weight}")
        d = target.shape[0]
        super().__init__(2.0 * weight * np.eye(d), -2.0 * weight * target, weight * float(target @ target))
        self._target = target
        self._weight = float(weight)

    @property
    def target(self) -> np.ndarray:
        return self._target.copy()


class LogisticCost(CostFunction):
    """Regularized logistic loss over a local dataset.

    ``Q(x) = (1/m) Σ_j log(1 + exp(−y_j ⟨x, z_j⟩)) + (reg/2) ||x||²`` with
    labels ``y_j ∈ {−1, +1}``. With ``reg > 0`` the cost is strongly convex
    and Lipschitz smooth, matching the paper's Assumptions 2-3.
    """

    def __init__(self, features, labels, regularization: float = 0.0):
        features = check_matrix(features, name="features")
        labels = check_vector(labels, name="labels")
        if features.shape[0] != labels.shape[0]:
            raise DimensionMismatchError(
                f"features and labels disagree on sample count: "
                f"{features.shape[0]} vs {labels.shape[0]}"
            )
        if features.shape[0] == 0:
            raise InvalidParameterError("LogisticCost requires at least one sample")
        if not np.all(np.isin(labels, (-1.0, 1.0))):
            raise InvalidParameterError("labels must be ±1")
        if regularization < 0:
            raise InvalidParameterError(f"regularization must be non-negative, got {regularization}")
        super().__init__(features.shape[1])
        self._Z = features
        self._y = labels
        self._reg = float(regularization)

    @property
    def regularization(self) -> float:
        return self._reg

    def _margins(self, x: np.ndarray) -> np.ndarray:
        return self._y * (self._Z @ x)

    def value(self, x) -> float:
        x = self._check(x)
        margins = self._margins(x)
        # log(1 + exp(-m)) computed stably for both signs of m.
        losses = np.logaddexp(0.0, -margins)
        return float(np.mean(losses) + 0.5 * self._reg * (x @ x))

    def gradient(self, x) -> np.ndarray:
        x = self._check(x)
        margins = self._margins(x)
        # σ(-m) = 1 / (1 + exp(m)), computed stably.
        weights = 0.5 * (1.0 - np.tanh(0.5 * margins))
        grad = -(self._Z * (weights * self._y)[:, None]).mean(axis=0)
        return grad + self._reg * x

    def hessian(self, x) -> np.ndarray:
        x = self._check(x)
        margins = self._margins(x)
        sigma = 0.5 * (1.0 - np.tanh(0.5 * margins))
        weights = sigma * (1.0 - sigma)
        H = (self._Z.T * weights) @ self._Z / self._Z.shape[0]
        return H + self._reg * np.eye(self.dimension)


class SmoothedHingeCost(CostFunction):
    """Quadratically smoothed hinge (SVM) loss, differentiable everywhere.

    For margin ``m = y ⟨x, z⟩``::

        loss(m) = 0              if m >= 1
                = (1 - m)² / 2   if 0 < m < 1
                = 1/2 - m        if m <= 0

    plus ``(reg/2) ||x||²``. Smoothing keeps the cost inside the paper's
    differentiable-cost setting while behaving like the standard SVM hinge.
    """

    def __init__(self, features, labels, regularization: float = 0.0):
        features = check_matrix(features, name="features")
        labels = check_vector(labels, name="labels")
        if features.shape[0] != labels.shape[0]:
            raise DimensionMismatchError("features and labels disagree on sample count")
        if features.shape[0] == 0:
            raise InvalidParameterError("SmoothedHingeCost requires at least one sample")
        if not np.all(np.isin(labels, (-1.0, 1.0))):
            raise InvalidParameterError("labels must be ±1")
        if regularization < 0:
            raise InvalidParameterError(f"regularization must be non-negative, got {regularization}")
        super().__init__(features.shape[1])
        self._Z = features
        self._y = labels
        self._reg = float(regularization)

    def value(self, x) -> float:
        x = self._check(x)
        margins = self._y * (self._Z @ x)
        losses = np.where(
            margins >= 1.0,
            0.0,
            np.where(margins <= 0.0, 0.5 - margins, 0.5 * (1.0 - margins) ** 2),
        )
        return float(np.mean(losses) + 0.5 * self._reg * (x @ x))

    def gradient(self, x) -> np.ndarray:
        x = self._check(x)
        margins = self._y * (self._Z @ x)
        # d loss / d margin
        slope = np.where(margins >= 1.0, 0.0, np.where(margins <= 0.0, -1.0, margins - 1.0))
        grad = (self._Z * (slope * self._y)[:, None]).mean(axis=0)
        return grad + self._reg * x


class HuberCost(CostFunction):
    """Huber-robustified distance to a target point.

    ``Q(x) = Σ_k huber(x_k − target_k; delta)`` — smooth, convex, and only
    *locally* strongly convex, exercising code paths where closed-form
    argmins exist (the target) but global strong convexity fails.
    """

    def __init__(self, target, delta: float = 1.0):
        target = check_vector(target, name="target")
        if delta <= 0:
            raise InvalidParameterError(f"delta must be positive, got {delta}")
        super().__init__(target.shape[0])
        self._target = target
        self._delta = float(delta)

    @property
    def target(self) -> np.ndarray:
        return self._target.copy()

    def value(self, x) -> float:
        x = self._check(x)
        r = x - self._target
        absolute = np.abs(r)
        quadratic = 0.5 * r**2
        linear = self._delta * (absolute - 0.5 * self._delta)
        return float(np.sum(np.where(absolute <= self._delta, quadratic, linear)))

    def gradient(self, x) -> np.ndarray:
        x = self._check(x)
        r = x - self._target
        return np.clip(r, -self._delta, self._delta)

    def argmin_set(self) -> ArgminSet:
        return Singleton(self._target)


class ScaledCost(CostFunction):
    """``(w · Q)(x)`` for a positive weight ``w``."""

    def __init__(self, base: CostFunction, weight: float):
        weight = float(weight)
        if weight <= 0:
            raise InvalidParameterError(f"weight must be positive, got {weight}")
        super().__init__(base.dimension)
        self._base = base
        self._weight = weight

    @property
    def base(self) -> CostFunction:
        return self._base

    @property
    def weight(self) -> float:
        return self._weight

    def value(self, x) -> float:
        return self._weight * self._base.value(x)

    def gradient(self, x) -> np.ndarray:
        return self._weight * self._base.gradient(x)

    def hessian(self, x) -> np.ndarray:
        return self._weight * self._base.hessian(x)

    def argmin_set(self) -> ArgminSet:
        # Positive scaling preserves minimizers.
        return self._base.argmin_set()


class SumCost(CostFunction):
    """Aggregate cost ``Σ_i Q_i`` of a non-empty collection of costs.

    When every member is quadratic the sum is itself assembled into a
    :class:`QuadraticCost` internally so the exact argmin remains available.
    """

    def __init__(self, costs: Sequence[CostFunction]):
        costs = list(costs)
        if not costs:
            raise InvalidParameterError("SumCost requires at least one cost")
        dimension = costs[0].dimension
        for cost in costs:
            if cost.dimension != dimension:
                raise DimensionMismatchError(
                    "all member costs must share one dimension; "
                    f"got {cost.dimension} vs {dimension}"
                )
        super().__init__(dimension)
        self._costs = costs
        self._quadratic = self._assemble_quadratic()

    def _assemble_quadratic(self) -> Optional[QuadraticCost]:
        flattened: List[CostFunction] = []
        for cost in self._costs:
            weight = 1.0
            inner = cost
            while isinstance(inner, ScaledCost):
                weight *= inner.weight
                inner = inner.base
            if not isinstance(inner, QuadraticCost):
                return None
            flattened.append(ScaledCost(inner, weight) if weight != 1.0 else inner)
        P = np.zeros((self.dimension, self.dimension))
        q = np.zeros(self.dimension)
        c = 0.0
        for cost in flattened:
            if isinstance(cost, ScaledCost):
                quad = cost.base
                w = cost.weight
            else:
                quad, w = cost, 1.0
            P += w * quad.P
            q += w * quad.q
            c += w * quad.c
        return QuadraticCost(P, q, c)

    @property
    def members(self) -> List[CostFunction]:
        return list(self._costs)

    @property
    def is_quadratic(self) -> bool:
        return self._quadratic is not None

    def value(self, x) -> float:
        if self._quadratic is not None:
            return self._quadratic.value(x)
        return float(sum(cost.value(x) for cost in self._costs))

    def gradient(self, x) -> np.ndarray:
        if self._quadratic is not None:
            return self._quadratic.gradient(x)
        x = self._check(x)
        total = np.zeros(self.dimension)
        for cost in self._costs:
            total += cost.gradient(x)
        return total

    def hessian(self, x) -> np.ndarray:
        if self._quadratic is not None:
            return self._quadratic.hessian(x)
        x = self._check(x)
        total = np.zeros((self.dimension, self.dimension))
        for cost in self._costs:
            total += cost.hessian(x)
        return total

    def argmin_set(self) -> ArgminSet:
        if self._quadratic is not None:
            return self._quadratic.argmin_set()
        raise NotImplementedError("sum of non-quadratic costs has no closed-form argmin")


class MeanCost(ScaledCost):
    """Average cost ``(1/m) Σ_i Q_i`` — same minimizers as the sum."""

    def __init__(self, costs: Sequence[CostFunction]):
        costs = list(costs)
        if not costs:
            raise InvalidParameterError("MeanCost requires at least one cost")
        super().__init__(SumCost(costs), 1.0 / len(costs))


def aggregate(costs: Iterable[CostFunction], indices: Optional[Iterable[int]] = None) -> SumCost:
    """Form the subset aggregate ``Σ_{i ∈ indices} Q_i``.

    ``indices=None`` aggregates every cost. This is the primitive the
    redundancy definitions quantify over.
    """
    costs = list(costs)
    if indices is None:
        selected = costs
    else:
        selected = [costs[i] for i in indices]
    return SumCost(selected)


class SoftmaxCost(CostFunction):
    """Multi-class softmax (cross-entropy) loss over a local dataset.

    The decision variable is a flattened ``(K, p)`` weight matrix
    (``dimension = K * p``); sample ``j`` with features ``z_j ∈ R^p`` and
    label ``y_j ∈ {0..K-1}`` contributes ``−log softmax(W z_j)[y_j]``, plus
    ``(reg/2) ||W||²``. Convex in ``W``; strictly so with ``reg > 0``.
    """

    def __init__(self, features, labels, num_classes: int, regularization: float = 0.0):
        features = check_matrix(features, name="features")
        labels = np.asarray(labels)
        if labels.ndim != 1 or labels.shape[0] != features.shape[0]:
            raise DimensionMismatchError("labels must be 1-D, one per sample")
        if features.shape[0] == 0:
            raise InvalidParameterError("SoftmaxCost requires at least one sample")
        num_classes = int(num_classes)
        if num_classes < 2:
            raise InvalidParameterError(f"num_classes must be >= 2, got {num_classes}")
        labels = labels.astype(int)
        if labels.min() < 0 or labels.max() >= num_classes:
            raise InvalidParameterError("labels must lie in {0..K-1}")
        if regularization < 0:
            raise InvalidParameterError(
                f"regularization must be non-negative, got {regularization}"
            )
        super().__init__(num_classes * features.shape[1])
        self._Z = features
        self._y = labels
        self._K = num_classes
        self._p = features.shape[1]
        self._reg = float(regularization)

    @property
    def num_classes(self) -> int:
        return self._K

    @property
    def num_features(self) -> int:
        return self._p

    def _weights(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(self._K, self._p)

    def _log_probabilities(self, W: np.ndarray) -> np.ndarray:
        scores = self._Z @ W.T  # (m, K)
        scores -= scores.max(axis=1, keepdims=True)
        log_norm = np.log(np.exp(scores).sum(axis=1, keepdims=True))
        return scores - log_norm

    def value(self, x) -> float:
        x = self._check(x)
        W = self._weights(x)
        log_probs = self._log_probabilities(W)
        nll = -log_probs[np.arange(self._y.shape[0]), self._y].mean()
        return float(nll + 0.5 * self._reg * (x @ x))

    def gradient(self, x) -> np.ndarray:
        x = self._check(x)
        W = self._weights(x)
        probs = np.exp(self._log_probabilities(W))  # (m, K)
        indicator = np.zeros_like(probs)
        indicator[np.arange(self._y.shape[0]), self._y] = 1.0
        grad_W = (probs - indicator).T @ self._Z / self._Z.shape[0]  # (K, p)
        return grad_W.reshape(-1) + self._reg * x

    def predict(self, x, features) -> np.ndarray:
        """Class predictions for a feature matrix under parameters ``x``."""
        x = self._check(x)
        W = self._weights(x)
        return np.argmax(np.asarray(features, dtype=float) @ W.T, axis=1)
