"""Non-differentiable costs — the full generality of the characterization.

The paper's necessity/achievability characterization of exact
fault-tolerance does **not** require differentiable costs; only the
gradient-descent machinery of the second half does. This module provides
the canonical non-smooth family — weighted absolute deviations
``Q(x) = w · Σ_k |x_k − t_k|`` — together with the exact argmin machinery
for their aggregates (per-coordinate weighted-median *intervals*, i.e.
:class:`repro.core.geometry.AxisAlignedBox` argmin sets), so the
redundancy checker and the subset-enumeration algorithm run on them in
closed form, with no differentiability anywhere.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.geometry import ArgminSet, AxisAlignedBox, Singleton
from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import CostFunction
from repro.utils.validation import check_vector


class AbsoluteDeviationCost(CostFunction):
    """Weighted L1 distance to a target: ``Q(x) = w · Σ_k |x_k − t_k|``.

    Convex but non-differentiable at every kink; :meth:`gradient` returns a
    *subgradient* (the sign vector, with 0 on kinks), which is sufficient
    for subgradient methods but deliberately outside the smooth theory —
    this family exists to exercise the non-differentiable reach of the
    exact-fault-tolerance characterization.
    """

    def __init__(self, target, weight: float = 1.0):
        target = check_vector(target, name="target")
        if weight <= 0:
            raise InvalidParameterError(f"weight must be positive, got {weight}")
        super().__init__(target.shape[0])
        self._target = target
        self._weight = float(weight)

    @property
    def target(self) -> np.ndarray:
        return self._target.copy()

    @property
    def weight(self) -> float:
        return self._weight

    def value(self, x) -> float:
        x = self._check(x)
        return self._weight * float(np.sum(np.abs(x - self._target)))

    def gradient(self, x) -> np.ndarray:
        """A subgradient: ``w · sign(x − t)`` (0 at kinks)."""
        x = self._check(x)
        return self._weight * np.sign(x - self._target)

    def argmin_set(self) -> ArgminSet:
        return Singleton(self._target)


def weighted_median_interval(
    values: Sequence[float], weights: Sequence[float]
) -> Tuple[float, float]:
    """The closed interval of minimizers of ``x ↦ Σ_i w_i |x − v_i|``.

    A point ``x`` minimizes iff neither side holds a strict weight
    majority: ``Σ_{v_i < x} w_i <= W/2`` and ``Σ_{v_i > x} w_i <= W/2``.
    Returns ``(lo, hi)``; ``lo == hi`` when one value holds a strict
    majority position.
    """
    values = np.asarray(list(values), dtype=float)
    weights = np.asarray(list(weights), dtype=float)
    if values.shape != weights.shape or values.ndim != 1 or values.size == 0:
        raise InvalidParameterError("values and weights must be equal-length non-empty 1-D")
    if np.any(weights <= 0):
        raise InvalidParameterError("weights must be positive")
    order = np.argsort(values, kind="stable")
    v = values[order]
    w = weights[order]
    total = w.sum()
    prefix = np.concatenate([[0.0], np.cumsum(w)])  # prefix[i] = weight of v[:i]
    half = total / 2.0
    eps = 1e-12 * max(total, 1.0)
    # Candidate minimizers are the data points themselves; the argmin set is
    # the convex hull of the minimizing points.
    minimizers = [
        v[i]
        for i in range(v.size)
        if prefix[i] <= half + eps and (total - prefix[i + 1]) <= half + eps
    ]
    if not minimizers:  # numerically impossible, but fail loudly
        raise InvalidParameterError("weighted median computation found no minimizer")
    return float(min(minimizers)), float(max(minimizers))


def l1_aggregate_argmin(
    costs: Sequence[CostFunction], indices: Optional[Sequence[int]] = None
) -> ArgminSet:
    """Exact argmin set of ``Σ_{i ∈ indices} Q_i`` for L1 costs.

    The aggregate is coordinate-separable, so the argmin set is the
    Cartesian product of per-coordinate weighted-median intervals — an
    :class:`AxisAlignedBox` (a :class:`Singleton` when every interval is a
    point).
    """
    costs = list(costs)
    selected: List[AbsoluteDeviationCost] = (
        costs if indices is None else [costs[i] for i in indices]
    )
    if not selected:
        raise InvalidParameterError("cannot aggregate an empty subset")
    for cost in selected:
        if not isinstance(cost, AbsoluteDeviationCost):
            raise InvalidParameterError(
                "l1_aggregate_argmin requires AbsoluteDeviationCost members"
            )
    dimension = selected[0].dimension
    lower = np.empty(dimension)
    upper = np.empty(dimension)
    weights = [cost.weight for cost in selected]
    for k in range(dimension):
        values = [cost.target[k] for cost in selected]
        lower[k], upper[k] = weighted_median_interval(values, weights)
    box = AxisAlignedBox(lower, upper)
    if box.is_degenerate():
        return Singleton(lower)
    return box


def l1_solver(costs: Sequence[CostFunction], subset) -> ArgminSet:
    """Solver adapter for the redundancy/resilience machinery.

    Pass as ``solver=`` to :func:`repro.core.redundancy.measure_redundancy_margin`,
    :func:`repro.core.resilience.evaluate_resilience`, or
    :class:`repro.core.exact_algorithm.SubsetEnumerationAlgorithm` to run
    the exact theory on non-differentiable L1 costs in closed form.
    """
    return l1_aggregate_argmin(costs, indices=subset)
