"""Centralized gradient-descent reference solver.

Two roles in the library:

1. a fault-free baseline against which the distributed, Byzantine-resilient
   executions are compared, and
2. the numerical fallback used by :func:`solve_argmin` for aggregates whose
   minimizers have no closed form (the quadratic families solve exactly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core.geometry import ArgminSet, Singleton
from repro.exceptions import ConvergenceError, InvalidParameterError
from repro.optimization.cost_functions import CostFunction, SumCost, aggregate
from repro.optimization.projections import ConvexSet, UnconstrainedSet
from repro.optimization.step_sizes import DiminishingStepSize, StepSizeSchedule
from repro.utils.validation import check_vector


@dataclass
class GDResult:
    """Outcome of a centralized gradient-descent run.

    Attributes
    ----------
    minimizer:
        The final iterate.
    iterations:
        Number of update steps performed.
    converged:
        Whether the gradient-norm stopping criterion fired before the
        iteration budget was exhausted.
    trajectory:
        The full sequence of iterates, ``(iterations + 1, d)``, recorded
        only when requested.
    final_gradient_norm:
        ``||∇Q(x_T)||`` at the final iterate.
    """

    minimizer: np.ndarray
    iterations: int
    converged: bool
    final_gradient_norm: float
    trajectory: Optional[np.ndarray] = field(default=None, repr=False)


def gradient_descent(
    cost: CostFunction,
    x0,
    step_sizes: Optional[StepSizeSchedule] = None,
    projection: Optional[ConvexSet] = None,
    max_iterations: int = 10_000,
    gradient_tolerance: float = 1e-10,
    record_trajectory: bool = False,
    callback: Optional[Callable[[int, np.ndarray], None]] = None,
) -> GDResult:
    """Run projected gradient descent on ``cost`` from ``x0``.

    Parameters
    ----------
    cost:
        The objective; only :meth:`~repro.optimization.cost_functions.CostFunction.gradient`
        is required.
    x0:
        Initial point.
    step_sizes:
        Schedule; defaults to a smoothness-adapted diminishing schedule.
    projection:
        Constraint set ``W``; defaults to unconstrained.
    max_iterations:
        Iteration budget.
    gradient_tolerance:
        Stop when the gradient norm falls below this value.
    record_trajectory:
        Keep every iterate (memory ``O(T d)``).
    callback:
        Called as ``callback(t, x_t)`` after each update.
    """
    x = check_vector(x0, dimension=cost.dimension, name="x0")
    if max_iterations <= 0:
        raise InvalidParameterError(f"max_iterations must be positive, got {max_iterations}")
    if step_sizes is None:
        step_sizes = _default_schedule(cost, x)
    if projection is None:
        projection = UnconstrainedSet(cost.dimension)
    trajectory: List[np.ndarray] = [x.copy()] if record_trajectory else []
    gradient_norm = float(np.linalg.norm(cost.gradient(x)))
    converged = gradient_norm <= gradient_tolerance
    t = 0
    while t < max_iterations and not converged:
        gradient = cost.gradient(x)
        x = projection.project(x - step_sizes(t) * gradient)
        t += 1
        if record_trajectory:
            trajectory.append(x.copy())
        if callback is not None:
            callback(t, x)
        gradient_norm = float(np.linalg.norm(cost.gradient(x)))
        converged = gradient_norm <= gradient_tolerance
    return GDResult(
        minimizer=x,
        iterations=t,
        converged=converged,
        final_gradient_norm=gradient_norm,
        trajectory=np.asarray(trajectory) if record_trajectory else None,
    )


def _default_schedule(cost: CostFunction, x0: np.ndarray) -> StepSizeSchedule:
    """A conservative schedule scaled by a local curvature probe."""
    try:
        hessian = cost.hessian(x0)
        smoothness = float(np.linalg.eigvalsh(hessian)[-1])
    except NotImplementedError:
        smoothness = 0.0
    if smoothness <= 0:
        return DiminishingStepSize(c=0.1)
    # 1/L constant would be classical; fold it into a diminishing schedule so
    # the default also works for merely convex members.
    return DiminishingStepSize(c=1.0 / smoothness, t0=1.0)


def solve_argmin(
    costs,
    indices=None,
    x0=None,
    max_iterations: int = 50_000,
    gradient_tolerance: float = 1e-10,
) -> ArgminSet:
    """Compute the argmin set of the aggregate ``Σ_{i ∈ indices} Q_i``.

    Quadratic aggregates (the paper's evaluation family) are solved in
    closed form via linear algebra; everything else falls back to a long
    gradient-descent run and returns a :class:`Singleton` of the final
    iterate. A :class:`ConvergenceError` carrying the best iterate is raised
    if the numerical path fails to reach the tolerance.
    """
    total: SumCost = aggregate(costs, indices)
    if total.is_quadratic:
        return total.argmin_set()
    start = (
        check_vector(x0, dimension=total.dimension, name="x0")
        if x0 is not None
        else np.zeros(total.dimension)
    )
    from scipy.optimize import minimize

    solution = minimize(
        lambda x: total.value(x),
        start,
        jac=lambda x: total.gradient(x),
        method="L-BFGS-B",
        options={"maxiter": max_iterations, "gtol": gradient_tolerance, "ftol": 0.0},
    )
    point = np.asarray(solution.x, dtype=float)
    gradient_norm = float(np.linalg.norm(total.gradient(point)))
    if gradient_norm > 1e-6:
        # Polish with projected gradient descent before declaring failure.
        polished = gradient_descent(
            total,
            point,
            max_iterations=max_iterations,
            gradient_tolerance=max(gradient_tolerance, 1e-10),
        )
        point = polished.minimizer
        gradient_norm = polished.final_gradient_norm
    if gradient_norm > 1e-6:
        raise ConvergenceError(
            f"argmin solve did not converge (final gradient norm "
            f"{gradient_norm:.3e})",
            best=point,
        )
    return Singleton(point)
