"""The library-wide run-telemetry handle.

:class:`Telemetry` is the single instrumentation seam every execution layer
accepts (``run_dgd``, ``run_dgd_batch``, the server, the peer-to-peer
protocol, the sweep engine's workers): counters, wall-clock spans
(``with tel.span("round"): ...``), and structured per-round records of what
the gradient filter actually did — which agents survived the cut, how many
of the eliminated agents were truly Byzantine, the spread of gradient
norms, the step size, and the distance to a reference point (``x_H``) when
one is known. That per-round elimination view is the quantity the paper's
convergence condition ``α = 1 − (f/n)(1 + 2μ/γ) > 0`` reasons about, and
the quantity follow-up filter comparisons measure.

Telemetry is **opt-in and zero-overhead when disabled**: every entry point
defaults to :data:`NULL_TELEMETRY`, whose operations are no-ops, whose
spans are a shared do-nothing context manager, and which is *falsy* — hot
paths guard record construction with ``if telemetry:`` so a disabled run
executes exactly the pre-telemetry instruction stream (the bit-identity
suites pin this down).

Records share one schema with the sweep engine's
:class:`~repro.experiments.sweep.SweepEvents` log: flat JSON objects with
an ``"event"`` key, mirrored to JSONL the moment they are emitted. See
:mod:`repro.observability.exporters` for sinks and roll-ups.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.observability.exporters import (
    JSONLSink,
    MemorySink,
    TelemetrySink,
    _assemble_summary,
)
from repro.observability.tracing import TraceContext

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "TelemetryLike",
    "ensure_telemetry",
]


class _NullSpan:
    """Shared do-nothing context manager returned by disabled telemetry."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """Disabled telemetry: falsy, and every operation is a no-op.

    A single shared instance (:data:`NULL_TELEMETRY`) is the default for
    every ``telemetry=`` parameter in the library, so instrumented code
    never needs ``if telemetry is not None`` checks — ``if telemetry:``
    is both the truthiness guard and the cheapest possible disable switch.
    """

    __slots__ = ()

    enabled = False

    def __bool__(self) -> bool:
        return False

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def increment(self, name: str, by: int = 1) -> None:
        pass

    def emit(self, event: str, **fields) -> None:
        pass

    def record_round(self, **fields) -> None:
        pass

    def record_liveness(self, **fields) -> None:
        pass

    def span_durations(self, name: str) -> List[float]:
        return []

    def all_span_durations(self) -> Dict[str, List[float]]:
        return {}

    def annotate(self, **fields) -> None:
        pass

    def summary(self) -> Dict:
        return {}

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTelemetry":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: The process-wide disabled-telemetry singleton.
NULL_TELEMETRY = NullTelemetry()


class _Span:
    """Times one ``with`` block and reports it to its telemetry handle.

    On a traced handle, entering derives a deterministic child
    :class:`~repro.observability.tracing.TraceContext` (parented on the
    innermost open span) and pushes it on the handle's span stack, so
    records emitted inside the block carry this span's lineage. Untraced
    handles skip all of that — the emitted span record is byte-identical
    to the pre-tracing schema.
    """

    __slots__ = ("_telemetry", "_name", "_start", "_context", "_ts")

    def __init__(self, telemetry: "Telemetry", name: str):
        self._telemetry = telemetry
        self._name = name

    def __enter__(self) -> "_Span":
        tel = self._telemetry
        self._context = None
        self._ts = None
        if tel._trace is not None:
            tel._span_seq += 1
            self._context = tel._current_trace_context().child(
                self._name, index=tel._span_seq
            )
            tel._trace_stack.append(self._context)
            self._ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        seconds = time.perf_counter() - self._start
        tel = self._telemetry
        if self._context is not None:
            stack = tel._trace_stack
            if stack and stack[-1] is self._context:
                stack.pop()
        tel._record_span(
            self._name, seconds, context=self._context, ts=self._ts
        )
        return False


def _id_list(ids: Iterable) -> List[int]:
    return [int(i) for i in ids]


class Telemetry:
    """Live telemetry handle: counters, spans, and per-round records.

    Parameters
    ----------
    sink:
        Where records go: a :class:`TelemetrySink`, a filesystem path
        (JSONL stream), a sequence of sinks, or ``None`` for an in-memory
        sink. The handle also keeps running aggregates, so
        :meth:`summary` works regardless of the sink choice.
    byzantine_ids:
        Ground-truth Byzantine agent ids. Set automatically by the
        runners (they know ``faulty_ids``); used to score each round's
        eliminations into true/false positives.
    reference_point:
        Optional reference (typically the honest minimizer ``x_H``);
        when set, every round record carries ``distance_to_ref``.
    trace:
        Optional :class:`~repro.observability.tracing.TraceContext`
        binding this handle into a distributed trace. When set, every
        span record carries deterministic ``trace_id``/``span_id``/
        ``parent_span_id`` lineage plus a wall-clock ``ts``, and every
        other record references the innermost open span. When unset
        (the default), emitted records are byte-identical to the
        untraced schema.
    trace_name:
        When set together with ``trace``, the handle times its own
        lifetime and emits a span record under ``trace``'s own context
        at :meth:`close` — this is how a pool worker registers the span
        that parents everything it emitted.
    """

    enabled = True

    def __init__(
        self,
        sink: Union[TelemetrySink, str, os.PathLike, Sequence, None] = None,
        *,
        byzantine_ids: Iterable = (),
        reference_point=None,
        trace: Optional[TraceContext] = None,
        trace_name: Optional[str] = None,
    ):
        self._sinks: List[TelemetrySink] = self._coerce_sinks(sink)
        self.counters: Dict[str, int] = {}
        self._span_durations: Dict[str, List[float]] = {}
        self._rounds = 0
        self._elim_tp = 0
        self._elim_fp = 0
        self._elim_fn = 0
        self.emitted = 0
        self._byzantine: set = set(_id_list(byzantine_ids))
        self._reference = (
            None if reference_point is None
            else np.asarray(reference_point, dtype=float)
        )
        self.annotations: Dict[str, object] = {}
        self._trace = trace
        self._trace_name = trace_name
        self._trace_stack: List[TraceContext] = []
        self._span_seq = 0
        self._born_ts = time.time() if trace is not None else None
        self._born_perf = time.perf_counter() if trace is not None else None
        self._closed = False

    @property
    def trace(self) -> Optional[TraceContext]:
        """The handle's root trace context (``None`` when untraced)."""
        return self._trace

    def _current_trace_context(self) -> TraceContext:
        return self._trace_stack[-1] if self._trace_stack else self._trace

    @staticmethod
    def _coerce_sinks(sink) -> List[TelemetrySink]:
        if sink is None:
            return [MemorySink()]
        if isinstance(sink, TelemetrySink):
            return [sink]
        if isinstance(sink, (str, os.PathLike)):
            return [JSONLSink(os.fspath(sink))]
        if isinstance(sink, Sequence):
            sinks = list(sink)
            if not sinks or not all(isinstance(s, TelemetrySink) for s in sinks):
                raise InvalidParameterError(
                    "sink sequence must contain only TelemetrySink instances"
                )
            return sinks
        raise InvalidParameterError(
            f"sink must be a TelemetrySink, path, or sequence of sinks, "
            f"got {type(sink).__name__}"
        )

    def __bool__(self) -> bool:
        return True

    @property
    def records(self) -> List[Dict]:
        """Records of the first in-memory sink (empty for JSONL-only)."""
        for sink in self._sinks:
            if isinstance(sink, MemorySink):
                return sink.records
        return []

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def emit(self, event: str, **fields) -> Dict:
        """Emit one schema record (``{"event": event, **fields}``).

        On a traced handle, records that do not already carry lineage are
        stamped with the innermost open span's ``trace_id``/``span_id``
        (span records stamp their own context in :meth:`_record_span`).
        """
        record = {"event": event, **fields}
        if self._trace is not None and "trace_id" not in record:
            context = self._current_trace_context()
            record["trace_id"] = context.trace_id
            record["span_id"] = context.span_id
        for sink in self._sinks:
            sink.emit(record)
        self.emitted += 1
        return record

    def increment(self, name: str, by: int = 1) -> None:
        """Bump a named counter (reported in :meth:`summary` and on close)."""
        self.counters[name] = self.counters.get(name, 0) + int(by)

    def span(self, name: str) -> _Span:
        """Context manager timing one named region of work."""
        return _Span(self, name)

    def _record_span(
        self,
        name: str,
        seconds: float,
        context: Optional[TraceContext] = None,
        ts: Optional[float] = None,
    ) -> None:
        self._span_durations.setdefault(name, []).append(seconds)
        if context is None:
            self.emit("span", name=name, seconds=seconds)
        else:
            self.emit(
                "span", name=name, seconds=seconds, ts=ts, **context.fields()
            )

    def span_durations(self, name: str) -> List[float]:
        """All recorded durations (seconds) of the named span, in order.

        Backed by the handle's running aggregates, so it works regardless
        of the sink choice (a JSONL-only handle still answers). The
        benchmark harness and the scaling experiment read timings back
        through this instead of re-parsing the record stream.
        """
        return list(self._span_durations.get(name, []))

    def all_span_durations(self) -> Dict[str, List[float]]:
        """Span name → recorded durations, as independent copies."""
        return {name: list(vals) for name, vals in self._span_durations.items()}

    def annotate(
        self, *, byzantine_ids=None, reference_point=None, **fields
    ) -> None:
        """Attach ground truth the execution layer knows (runners call this).

        Extra keyword fields (architecture, topology, aggregation, ...)
        are descriptive annotations kept on :attr:`annotations`.
        Previously only :class:`NullTelemetry` accepted them, so a live
        handle attached to the decentralized runner raised ``TypeError``.
        """
        if byzantine_ids is not None:
            self._byzantine = set(_id_list(byzantine_ids))
        if reference_point is not None:
            self._reference = np.asarray(reference_point, dtype=float)
        if fields:
            self.annotations.update(fields)

    def record_round(
        self,
        *,
        round_index: int,
        filter_name: str,
        step_size: float,
        gradient_norms,
        agent_ids: Optional[Sequence[int]] = None,
        kept_ids: Optional[Sequence[int]] = None,
        estimate=None,
        run: Optional[int] = None,
        seed=None,
    ) -> Dict:
        """Record one protocol round's filter outcome.

        ``kept_ids`` is the filter's surviving agent set (``None`` for
        filters without row-elimination semantics, e.g. coordinate-wise
        ones — such rounds carry norm/step data but do not contribute to
        elimination precision/recall). ``agent_ids`` maps gradient rows to
        agent ids and defaults to ``0..n-1``.
        """
        norms = np.asarray(gradient_norms, dtype=float)
        present = _id_list(
            agent_ids if agent_ids is not None else range(norms.shape[0])
        )
        record: Dict = {
            "round": int(round_index),
            "filter": str(filter_name),
            "step_size": float(step_size),
            "grad_norm_min": float(norms.min()),
            "grad_norm_median": float(np.median(norms)),
            "grad_norm_max": float(norms.max()),
        }
        if kept_ids is not None:
            kept = _id_list(kept_ids)
            eliminated = sorted(set(present) - set(kept))
            byz_present = self._byzantine & set(present)
            eliminated_byzantine = len(self._byzantine & set(eliminated))
            surviving_byzantine = len(byz_present) - eliminated_byzantine
            record.update(
                kept=kept,
                eliminated=eliminated,
                eliminated_byzantine=eliminated_byzantine,
                surviving_byzantine=surviving_byzantine,
            )
            self._elim_tp += eliminated_byzantine
            self._elim_fp += len(eliminated) - eliminated_byzantine
            self._elim_fn += surviving_byzantine
        if estimate is not None and self._reference is not None:
            record["distance_to_ref"] = float(
                np.linalg.norm(np.asarray(estimate, dtype=float) - self._reference)
            )
        if run is not None:
            record["run"] = int(run)
        if seed is not None:
            record["seed"] = int(seed) if isinstance(seed, (int, np.integer)) else str(seed)
        self._rounds += 1
        return self.emit("round", **record)

    def record_liveness(
        self,
        *,
        round_index: int,
        fresh: Sequence[int] = (),
        stale_reused: Sequence[int] = (),
        quarantined: Sequence[int] = (),
        suspected: Sequence[int] = (),
        reinstated: Sequence[int] = (),
        missing: Sequence[int] = (),
    ) -> Dict:
        """Record one round's liveness/staleness/quarantine outcome.

        Emitted by the partially-synchronous runtime
        (:class:`repro.system.healing.ResilientDGDServer`) whenever a
        round deviated from the synchronous ideal: an agent's gradient
        was reused stale, a payload was quarantined at the message
        boundary, or an agent's suspicion state changed. Each id list
        also bumps the matching counter (``stale_reuses``,
        ``quarantined_payloads``, ``suspicions``, ``reinstatements``,
        ``missed_deadlines``), so the roll-up in :meth:`summary` carries
        the totals.
        """
        for counter, ids in (
            ("stale_reuses", stale_reused),
            ("quarantined_payloads", quarantined),
            ("suspicions", suspected),
            ("reinstatements", reinstated),
            ("missed_deadlines", missing),
        ):
            if ids:
                self.increment(counter, len(tuple(ids)))
        return self.emit(
            "liveness",
            round=int(round_index),
            fresh=_id_list(fresh),
            stale_reused=_id_list(stale_reused),
            quarantined=_id_list(quarantined),
            suspected=_id_list(suspected),
            reinstated=_id_list(reinstated),
            missing=_id_list(missing),
        )

    # ------------------------------------------------------------------
    # Roll-up
    # ------------------------------------------------------------------

    def summary(self) -> Dict:
        """Roll-up of the handle's running aggregates.

        Structurally identical to
        :func:`repro.observability.exporters.summarize_records` applied to
        the emitted record stream (the test suite pins the equivalence),
        but available even when the only sink is a JSONL file.
        """
        return _assemble_summary(
            self._rounds,
            self._span_durations,
            self._elim_tp,
            self._elim_fp,
            self._elim_fn,
            dict(self.counters),
        )

    def close(self) -> None:
        """Flush counters and the final summary, then close the sinks.

        Idempotent. The trailing ``counters`` and ``summary`` records make
        a JSONL stream self-describing: :func:`summarize_records` over the
        re-loaded stream reproduces :meth:`summary` without the live
        handle.
        """
        if self._closed:
            return
        self._closed = True
        if self._trace is not None and self._trace_name is not None:
            # Register the handle's own lifetime as a span under its root
            # context, so streams written by a pool worker contribute the
            # node that parents their "run"/"round" spans in the
            # reconstructed cross-process tree.
            self._record_span(
                self._trace_name,
                time.perf_counter() - self._born_perf,
                context=self._trace,
                ts=self._born_ts,
            )
        if self.counters:
            self.emit("counters", **self.counters)
        self.emit("summary", **self.summary())
        for sink in self._sinks:
            sink.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


#: Anything the ``telemetry=`` parameters accept.
TelemetryLike = Union[None, Telemetry, NullTelemetry, str, os.PathLike]


def ensure_telemetry(telemetry: TelemetryLike) -> Union[Telemetry, NullTelemetry]:
    """Coerce a ``telemetry=`` argument into a usable handle.

    ``None`` (the library-wide default) yields the shared
    :data:`NULL_TELEMETRY`; a path yields a :class:`Telemetry` streaming
    to that JSONL file; an existing handle passes through unchanged.
    """
    if telemetry is None:
        return NULL_TELEMETRY
    if isinstance(telemetry, (Telemetry, NullTelemetry)):
        return telemetry
    if isinstance(telemetry, (str, os.PathLike)):
        return Telemetry(telemetry)
    raise InvalidParameterError(
        f"telemetry must be None, a Telemetry handle, or a path, "
        f"got {type(telemetry).__name__}"
    )
