"""Default bench registry: every figure/table workload plus a smoke subset.

Importing this module populates the :mod:`bench_harness` registry with one
spec per ``benchmarks/bench_*.py`` file — the bench scripts themselves run
*through* these specs (``benchmarks/conftest.py`` resolves by name), so
pytest, ``repro bench run`` and ``repro bench gate`` all execute the exact
same workload definition and emit the same ``BENCH_<name>.json`` schema.

Tags partition the registry:

- ``paper`` — the figure/table/ablation reconstructions (heavyweight;
  run via ``pytest benchmarks/`` or ``repro bench run --tag paper``);
- ``engine`` — the multi-mode throughput workload whose speedup ratio is
  the batch engine's reason to exist;
- ``smoke`` — sub-second workloads exercising the hot paths (single-run
  DGD, the batch engine, the aggregation kernels), fast enough for CI to
  ``repro bench gate`` on every push.

Quality ``metrics`` (gated tightly) are seeded, deterministic scalars —
final errors against the honest minimizer. Wall-clock-derived quantities
(speedup ratios, runs/sec) go into non-gated ``observations``.
"""

from __future__ import annotations

import time
from typing import Dict

import numpy as np

from repro.observability.perf.bench_harness import register_bench

# ----------------------------------------------------------------------
# Paper figure/table workloads (one per benchmarks/bench_*.py)
# ----------------------------------------------------------------------


def _series_last(result, name: str) -> float:
    return float(np.asarray(result.series[name], dtype=float)[-1])


def _table1_metrics(result) -> Dict[str, float]:
    errors = {
        (row[0], row[1]): float(row[3])
        for row in result.rows
        if row[0] != "fault-free"
    }
    return {
        "cge_gradient_reverse_error": errors[("cge", "gradient-reverse")],
        "cge_random_error": errors[("cge", "random")],
        "average_gradient_reverse_error": errors[("average", "gradient-reverse")],
    }


def _fault_sweep_metrics(result) -> Dict[str, float]:
    return {
        "cge_error_at_max_f": _series_last(result, "cge error vs f"),
        "average_error_at_max_f": _series_last(result, "average error vs f"),
    }


@register_bench(
    "table1_final_error",
    workload={"experiment": "E1", "n": 6, "d": 2, "f": 1, "iterations": 500},
    tags=("paper", "table"),
    metrics=_table1_metrics,
    description="Table 1: final error of filtered DGD under attack",
)
def _bench_table1(tel):
    from repro.experiments import run_table1

    return run_table1()


@register_bench(
    "fig2_trajectories",
    workload={"experiment": "E2", "iterations": 500},
    tags=("paper", "figure"),
    description="Figure 2: loss/distance trajectories per filter and attack",
)
def _bench_fig2(tel):
    from repro.experiments import run_trajectories

    return run_trajectories()


@register_bench(
    "fig3_early_iterations",
    workload={"experiment": "E3", "early_window": 80},
    tags=("paper", "figure"),
    description="Figure 3: early-iteration window of the trajectories",
)
def _bench_fig3(tel):
    from repro.experiments import run_trajectories

    return run_trajectories(early_window=80)


@register_bench(
    "fig4_redundancy_violation",
    workload={"experiment": "E5", "backend": "batch"},
    tags=("paper", "figure"),
    description="Figure 4: error growth as noise breaks 2f-redundancy",
)
def _bench_fig4(tel):
    from repro.experiments import run_noise_sweep

    return run_noise_sweep(backend="batch")


@register_bench(
    "fig5_fault_sweep",
    workload={"experiment": "E6", "backend": "batch"},
    tags=("paper", "figure"),
    metrics=_fault_sweep_metrics,
    description="Figure 5: final error vs fault count, alpha condition",
)
def _bench_fig5(tel):
    from repro.experiments import run_fault_sweep

    return run_fault_sweep(backend="batch")


@register_bench(
    "fig6_aggregator_scaling",
    workload={
        "experiment": "E9",
        "agent_counts": [10, 25, 50, 100],
        "dimensions": [2, 100],
        "repeats": 3,
    },
    tags=("paper", "figure"),
    description="Figure 6: aggregation wall-time vs n and d",
)
def _bench_fig6(tel):
    from repro.experiments import run_aggregator_scaling

    # Forwarding the harness handle puts one span per (filter, n, d) cell
    # into the bench's phase attribution.
    return run_aggregator_scaling(
        agent_counts=(10, 25, 50, 100), dimensions=(2, 100), repeats=3,
        telemetry=tel,
    )


@register_bench(
    "fig7_heterogeneity",
    workload={"experiment": "E14"},
    tags=("paper", "figure"),
    description="Figure 7: accuracy vs data-correlation heterogeneity",
)
def _bench_fig7(tel):
    from repro.experiments import run_heterogeneity_sweep

    return run_heterogeneity_sweep()


@register_bench(
    "table2_exact_algorithm",
    workload={"experiment": "E4"},
    tags=("paper", "table"),
    description="Table 2: the exact subset-enumeration algorithm",
)
def _bench_table2(tel):
    from repro.experiments import run_exact_algorithm_table

    return run_exact_algorithm_table()


@register_bench(
    "table3_learning",
    workload={"experiment": "E7"},
    tags=("paper", "table"),
    description="Table 3: distributed learning evaluation",
)
def _bench_table3(tel):
    from repro.experiments import run_learning_eval

    return run_learning_eval()


@register_bench(
    "table4_peer_to_peer",
    workload={"experiment": "E8"},
    tags=("paper", "table"),
    description="Table 4: peer-to-peer vs server equivalence",
)
def _bench_table4(tel):
    from repro.experiments import run_peer_vs_server

    return run_peer_vs_server()


@register_bench(
    "table5_robustness_matrix",
    workload={"experiment": "E10", "backend": "batch", "parallel": True},
    tags=("paper", "table"),
    description="Table 5: filter x attack robustness matrix",
)
def _bench_table5(tel):
    from repro.experiments import run_robustness_matrix

    return run_robustness_matrix(backend="batch", parallel=True)


@register_bench(
    "table6_replication",
    workload={"experiment": "E11"},
    tags=("paper", "table"),
    description="Table 6: redundancy by replication design",
)
def _bench_table6(tel):
    from repro.experiments import run_replication_design

    return run_replication_design()


@register_bench(
    "table7_cwtm_dimension",
    workload={"experiment": "E12"},
    tags=("paper", "table"),
    description="Table 7: CWTM condition vs problem dimension",
)
def _bench_table7(tel):
    from repro.experiments import run_cwtm_dimension_sweep

    return run_cwtm_dimension_sweep()


@register_bench(
    "table8_worst_case",
    workload={"experiment": "E13"},
    tags=("paper", "table"),
    description="Table 8: empirical worst-case certification",
)
def _bench_table8(tel):
    from repro.experiments import run_worst_case_certification

    return run_worst_case_certification()


@register_bench(
    "table9_communication",
    workload={"experiment": "E15"},
    tags=("paper", "table"),
    description="Table 9: communication cost per algorithm family",
)
def _bench_table9(tel):
    from repro.experiments import run_communication_costs

    return run_communication_costs()


@register_bench(
    "ablation_cge_sum_vs_mean",
    workload={"experiment": "A1"},
    tags=("paper", "ablation"),
    description="Ablation: CGE sum vs mean aggregation",
)
def _bench_ablation_a1(tel):
    from repro.experiments import run_cge_sum_vs_mean

    return run_cge_sum_vs_mean()


@register_bench(
    "ablation_step_sizes",
    workload={"experiment": "A2"},
    tags=("paper", "ablation"),
    description="Ablation: step-size schedules",
)
def _bench_ablation_a2(tel):
    from repro.experiments import run_step_size_ablation

    return run_step_size_ablation()


@register_bench(
    "ablation_projection",
    workload={"experiment": "A3"},
    tags=("paper", "ablation"),
    description="Ablation: size of the compact constraint set W",
)
def _bench_ablation_a3(tel):
    from repro.experiments import run_projection_ablation

    return run_projection_ablation()


@register_bench(
    "ablation_stochastic",
    workload={"experiment": "A4"},
    tags=("paper", "ablation"),
    description="Ablation: stochastic DGD step sizes",
)
def _bench_ablation_a4(tel):
    from repro.experiments import run_stochastic_step_sizes

    return run_stochastic_step_sizes()


@register_bench(
    "degraded_network",
    workload={"experiment": "E16", "iterations": 200},
    tags=("paper", "extension"),
    description="E16: CGE under the partially-synchronous fault model",
)
def _bench_degraded_network(tel):
    from repro.experiments import run_degraded_network

    return run_degraded_network(iterations=200)


# ----------------------------------------------------------------------
# Engine throughput (sequential vs batch vs pooled)
# ----------------------------------------------------------------------

_ENGINE_WORKLOAD = {
    "n": 6,
    "d": 2,
    "f": 1,
    "iterations": 300,
    "num_seeds": 50,
    "master_seed": 20200803,
    "pooled_filters": ["cge", "cwtm", "median", "average"],
    "pooled_attacks": ["gradient-reverse", "zero"],
}


@register_bench(
    "engine",
    workload=_ENGINE_WORKLOAD,
    tags=("engine",),
    observations=lambda report: report,
    description="Replicate-run throughput: sequential vs batch vs pooled",
)
def _bench_engine(tel):
    """Three-mode throughput measurement of the execution engines.

    The sequential/batch/pooled modes each run under their own telemetry
    span, so the emitted ``BENCH_engine.json`` carries per-phase timings;
    the batch-vs-sequential spot-check (bit-identical estimates) runs
    inside the workload so any caller — pytest or CLI — fails loudly if
    the speedup is bought with different numbers.
    """
    from repro.attacks.registry import make_attack
    from repro.experiments.sweep import (
        RegressionGrid,
        SweepEngine,
        derive_run_seeds,
    )
    from repro.problems.linear_regression import make_redundant_regression
    from repro.system.batch import run_dgd_batch
    from repro.system.runner import DGDConfig, run_dgd

    w = _ENGINE_WORKLOAD
    instance = make_redundant_regression(
        n=w["n"], d=w["d"], f=w["f"], noise_std=0.0, seed=w["master_seed"]
    )
    config = DGDConfig(
        iterations=w["iterations"], gradient_filter="cge", faulty_ids=(0,),
        f=w["f"],
    )
    behavior = make_attack("gradient-reverse")
    seeds = derive_run_seeds(w["master_seed"], w["num_seeds"])

    with tel.span("sequential"):
        start = time.perf_counter()
        sequential_traces = [
            run_dgd(instance.costs, behavior, config, seed=seed)
            for seed in seeds
        ]
        sequential_elapsed = time.perf_counter() - start

    with tel.span("batch"):
        batch_traces = run_dgd_batch(
            instance.costs, behavior, config, seeds=seeds
        )
    batch_elapsed = batch_traces[0].extra["batch"]["wall_time"]

    # Spot-check the speedup is not bought with different numbers.
    for a, b in zip(sequential_traces, batch_traces):
        assert np.array_equal(a.estimates, b.estimates)

    grid = RegressionGrid(
        filters=tuple(w["pooled_filters"]),
        attacks=tuple(w["pooled_attacks"]),
        fault_counts=(w["f"],),
        num_seeds=w["num_seeds"],
        master_seed=w["master_seed"],
        n=w["n"],
        d=w["d"],
        iterations=w["iterations"],
    )
    engine = SweepEngine(parallel=True)
    with tel.span("pooled"):
        start = time.perf_counter()
        cells = engine.run_regression_grid(grid)
        pooled_elapsed = time.perf_counter() - start
    assert not any(cell.failed for cell in cells)

    return {
        "pooled_grid_cells": len(cells),
        "runs_per_sec": {
            "sequential": w["num_seeds"] / sequential_elapsed,
            "batch": w["num_seeds"] / batch_elapsed,
            "pooled": len(cells) / pooled_elapsed,
        },
        "speedup": {
            "batch_vs_sequential": sequential_elapsed / batch_elapsed,
            "pooled_vs_sequential": (
                (len(cells) / pooled_elapsed)
                / (w["num_seeds"] / sequential_elapsed)
            ),
        },
    }


# ----------------------------------------------------------------------
# Smoke subset (sub-second; CI gates these on every push)
# ----------------------------------------------------------------------


def _smoke_instance(n=6, d=2, f=1, seed=7):
    from repro.problems.linear_regression import make_redundant_regression

    instance = make_redundant_regression(n=n, d=d, f=f, noise_std=0.0, seed=seed)
    honest = [i for i in range(n) if i >= f]
    return instance, instance.honest_minimizer(honest)


@register_bench(
    "smoke_dgd_round",
    workload={"n": 6, "d": 2, "f": 1, "iterations": 120, "filter": "cge",
              "attack": "gradient-reverse", "seed": 7},
    tags=("smoke",),
    metrics=lambda out: {"final_error": out["final_error"]},
    description="Smoke: one filtered-DGD run on the paper's E1 instance",
)
def _bench_smoke_dgd(tel):
    from repro.attacks.registry import make_attack
    from repro.system.runner import run_dgd

    instance, x_H = _smoke_instance()
    tel.annotate(byzantine_ids=(0,), reference_point=x_H)
    trace = run_dgd(
        instance.costs,
        make_attack("gradient-reverse"),
        gradient_filter="cge",
        faulty_ids=(0,),
        f=1,
        iterations=120,
        seed=7,
        telemetry=tel,
    )
    return {
        "final_error": float(np.linalg.norm(trace.final_estimate - x_H)),
        "trace": trace,
    }


@register_bench(
    "smoke_batch_engine",
    workload={"n": 6, "d": 2, "f": 1, "iterations": 80, "num_seeds": 16,
              "filter": "cge", "attack": "gradient-reverse",
              "master_seed": 7},
    tags=("smoke",),
    metrics=lambda out: {"mean_final_error": out["mean_final_error"]},
    description="Smoke: the vectorized batch engine across 16 seeds",
)
def _bench_smoke_batch(tel):
    from repro.attacks.registry import make_attack
    from repro.experiments.sweep import derive_run_seeds
    from repro.system.batch import run_dgd_batch

    instance, x_H = _smoke_instance()
    tel.annotate(byzantine_ids=(0,), reference_point=x_H)
    traces = run_dgd_batch(
        instance.costs,
        make_attack("gradient-reverse"),
        seeds=derive_run_seeds(7, 16),
        gradient_filter="cge",
        faulty_ids=(0,),
        f=1,
        iterations=80,
        telemetry=tel,
    )
    errors = [np.linalg.norm(t.final_estimate - x_H) for t in traces]
    return {"mean_final_error": float(np.mean(errors)), "traces": traces}


_TOURNAMENT_SMOKE_WORKLOAD = {
    "filters": ["cge", "cwtm", "average"],
    "attacks": ["gradient-reverse", "alie", "zero"],
    "rounds": 1,
    "num_seeds": 2,
    "n": 8,
    "d": 2,
    "f": 1,
    "iterations": 80,
    "master_seed": 20200803,
}


@register_bench(
    "tournament_smoke",
    workload=_TOURNAMENT_SMOKE_WORKLOAD,
    tags=("smoke", "tournament"),
    metrics=lambda out: {
        "cwtm_elo": out["cwtm_elo"],
        "mean_final_error": out["mean_final_error"],
        "failed_matches": out["failed_matches"],
    },
    description="Smoke: a 3x3x2-seed adversary tournament end-to-end",
)
def _bench_tournament_smoke(tel):
    """One tiny tournament through the full engine/scoring/Elo stack.

    Every future perf PR inherits a standing adversarial workload: the
    cross-product scheduling, match scoring, per-seed Elo batches, and
    leaderboard assembly all run; the ``cwtm_elo`` and
    ``mean_final_error`` quality metrics gate against drift in the
    scoring pipeline itself.
    """
    from repro.experiments.sweep import SweepEngine
    from repro.experiments.tournament import (
        AttackSpec,
        TournamentConfig,
        run_tournament,
    )

    config = TournamentConfig(
        name="bench-smoke",
        filters=("cge", "cwtm", "average"),
        attacks=(
            AttackSpec.with_params("gradient-reverse", "gradient-reverse"),
            AttackSpec.with_params("alie", "alie", params={"z": 1.5}),
            AttackSpec.with_params("zero", "zero"),
        ),
        rounds=1,
        num_seeds=2,
        n=8,
        iterations=80,
    )
    with tel.span("tournament"):
        payload = run_tournament(config, SweepEngine(parallel=False))
    ratings = {
        row["player"]: row["rating_mean"]
        for row in payload["leaderboard"]["all"]
    }
    scored = [
        m
        for round_doc in payload["rounds"]
        for m in round_doc["matches"]
        if "final_error" in m
    ]
    return {
        "cwtm_elo": float(ratings["cwtm"]),
        "mean_final_error": float(
            np.mean([m["final_error"] for m in scored])
        ),
        "failed_matches": float(payload["counts"]["failed"]),
        "payload": payload,
    }


# ----------------------------------------------------------------------
# Large-n / large-d kernel scaling (the backend seam's reason to exist)
# ----------------------------------------------------------------------

#: Batch size chosen so one (K, n, d) float64 tensor stays near 128 MB.
_SCALE_BUDGET_ELEMS = 2**24


def _scale_batch_size(n: int, d: int) -> int:
    return max(1, min(8, _SCALE_BUDGET_ELEMS // (n * d)))


def _make_scale_bench(kind: str, n: int, d: int) -> None:
    """Register one ``scale_{kind}_n{n}_d{d}`` aggregation-kernel bench.

    The workload is a seeded random ``(K, n, d)`` tensor pushed through the
    batched kernel; the quality metric is the (deterministic) norm of the
    first aggregate row, so a kernel rewrite that changes the numbers trips
    the gate even when it is faster. CWTM benches additionally time the
    reference full-sort kernel and record the partition-vs-sort ratio in
    the (ungated) observations — the regression story for the
    ``partition_trimmed_mean`` rewrite lives in those fields.
    """
    f = n // 8
    K = _scale_batch_size(n, d)
    name = f"scale_{kind}_n{n}_d{d}"
    # CI gates the two shapes that bracket the interesting range: the
    # break-even small shape and the shape the kernel rewrite targets.
    tags = ["scale", kind]
    if (n, d) in ((256, 64), (1024, 256)):
        tags.append("scale_smoke")

    def runner(tel, kind=kind, n=n, d=d, f=f, K=K):
        from repro.aggregators import kernels

        tensor = np.random.default_rng(n * 1000003 + d).normal(size=(K, n, d))
        out: Dict[str, float] = {}
        if kind == "cge":
            with tel.span("cge"):
                agg = kernels.cge_aggregate_batch(tensor, f)
        elif kind == "mean":
            with tel.span("mean"):
                agg = kernels.mean_batch(tensor)
        else:  # cwtm: race the optimized kernel against the reference sort
            with tel.span("partition"):
                start = time.perf_counter()
                agg = kernels.partition_trimmed_mean(tensor, f)
                out["partition_seconds"] = time.perf_counter() - start
            with tel.span("full_sort"):
                start = time.perf_counter()
                reference = kernels.sort_trimmed_mean(tensor, f)
                out["full_sort_seconds"] = time.perf_counter() - start
            assert np.allclose(agg, reference)
            out["partition_speedup"] = (
                out["full_sort_seconds"] / out["partition_seconds"]
            )
        out["aggregate_norm"] = float(np.linalg.norm(agg[0]))
        return out

    register_bench(
        name,
        workload={"kind": kind, "n": n, "d": d, "f": f, "runs": K},
        tags=tuple(tags),
        metrics=lambda out: {"aggregate_norm": out["aggregate_norm"]},
        observations=lambda out: {
            k: v for k, v in out.items() if k != "aggregate_norm"
        },
        description=f"Scaling: batched {kind} kernel at n={n}, d={d} (K={K})",
    )(runner)


for _kind in ("cge", "cwtm", "mean"):
    for _n in (256, 1024, 4096):
        for _d in (64, 256, 1024):
            _make_scale_bench(_kind, _n, _d)


# ----------------------------------------------------------------------
# Decentralized DGD at scale (the batched per-neighborhood gather path)
# ----------------------------------------------------------------------


def _make_decentralized_scale_bench(label: str, topology_name: str,
                                    params: Dict) -> None:
    """Register one ``scale_decentralized_<label>`` bench at n=1024.

    The workload is the acceptance scenario of the decentralized engine:
    1024 agents with full-local-rank quadratics (shared exact minimizer),
    20 spread Byzantine agents running gradient-reverse, and combined
    link faults (drops + delays + corruption). The gated quality metric
    is the worst honest distance to the minimizer — deterministic in the
    seeds, so a mixing/filtering rewrite that changes trajectories trips
    the gate even when it is faster.
    """
    n, d, iterations = 1024, 8, 60

    def runner(tel, topology_name=topology_name, params=params):
        from repro.attacks.simple import GradientReverse
        from repro.experiments.topology_resilience import (
            full_local_rank_costs,
        )
        from repro.system.decentralized import run_decentralized_dgd
        from repro.system.netfaults import LinkFaultModel, LinkFaultProfile
        from repro.system.topology import make_topology

        topology = make_topology(topology_name, n, seed=0, **params)
        costs, x_star = full_local_rank_costs(n, d, instance_seed=11)
        faulty = list(range(5, n, 52))
        link_faults = LinkFaultModel(
            default_profile=LinkFaultProfile(
                drop_prob=0.05, delay_prob=0.1, max_delay=2,
                corrupt_prob=0.01,
            ),
            seed=3,
        )
        with tel.span("decentralized_dgd"):
            result = run_decentralized_dgd(
                costs,
                topology,
                aggregation="cwtm",
                faulty_ids=faulty,
                behavior=GradientReverse(strength=2.0),
                iterations=iterations,
                seed=1,
                link_faults=link_faults,
            )
        distances = result.distances_to(x_star)[result.honest_ids]
        return {
            "max_honest_dist": float(np.max(distances)),
            "rounds_per_sec": iterations / max(result.wall_time, 1e-9),
            **{k: float(v) for k, v in result.counters.items()},
        }

    register_bench(
        f"scale_decentralized_{label}",
        workload={"topology": topology_name, **params, "n": n, "d": d,
                  "f_count": 20, "iterations": iterations,
                  "aggregation": "cwtm", "faults": "drops+delay+corrupt"},
        tags=("scale", "decentralized", "decentralized_smoke"),
        metrics=lambda out: {"max_honest_dist": out["max_honest_dist"]},
        observations=lambda out: {
            k: v for k, v in out.items() if k != "max_honest_dist"
        },
        description=(
            f"Scaling: decentralized CWTM on {topology_name} "
            f"(n={n}, d={d}, 20 Byzantine, chaotic links)"
        ),
    )(runner)


for _label, _topology, _params in (
    ("ring_n1024", "ring", {"hops": 2}),
    ("rr8_n1024", "random-regular", {"degree": 8}),
):
    _make_decentralized_scale_bench(_label, _topology, _params)


@register_bench(
    "smoke_aggregators",
    workload={"filters": ["cge", "cwtm", "median"], "agent_counts": [10, 25],
              "dimensions": [2, 16], "repeats": 3, "seed": 13},
    tags=("smoke",),
    description="Smoke: aggregation kernels on small gradient batches",
)
def _bench_smoke_aggregators(tel):
    from repro.experiments import run_aggregator_scaling

    return run_aggregator_scaling(
        filters=("cge", "cwtm", "median"),
        agent_counts=(10, 25),
        dimensions=(2, 16),
        repeats=3,
        telemetry=tel,
    )
