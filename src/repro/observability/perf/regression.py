"""Baseline store and deterministic perf/quality regression detection.

The comparator is a pure function of two bench payloads and a
:class:`RegressionPolicy` — no clocks, no randomness — so gate decisions
are reproducible and testable with synthetic documents. Three defenses
keep it wall-clock-stable in CI:

- **min-of-k.** Both sides compare on ``timings.best_seconds``, the
  minimum over the harness's repeats. The minimum estimates the noise-free
  cost of the code path; means and single shots inherit scheduler jitter.
- **Relative tolerance.** A timing regresses only when the candidate is
  slower than ``baseline * (1 + rel_tol)``; the default tolerates a 50 %
  excursion, far above same-host run-to-run noise but far below any real
  algorithmic regression worth gating (the 88× engine speedup would have
  to rot by orders of magnitude to slip under it repeatedly).
- **Noise floor.** Timings where *both* sides sit under ``noise_floor``
  seconds are never compared — a 0.2 ms bench that doubles is timer
  granularity, not a regression.

Solution-quality ``metrics`` (final errors, speedup ratios) are seeded and
deterministic, so they get a much tighter relative bound
(``metric_rel_tol``) with a tiny absolute floor for float-representation
drift across numpy versions. A metric present in the baseline but missing
from the candidate is a regression: silently dropping a measured quantity
is how trajectories rot.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.exceptions import InvalidParameterError
from repro.observability.perf.bench_harness import (
    BenchResult,
    bench_output_path,
    load_bench_payload,
    validate_bench_payload,
    write_bench_result,
)

__all__ = [
    "RegressionPolicy",
    "BenchComparison",
    "BaselineStore",
    "compare_payloads",
    "worst_verdict",
    "format_comparisons",
]

#: Comparison verdicts, ordered from best to worst.
VERDICTS = ("pass", "improved", "new", "missing", "regression")


@dataclass(frozen=True)
class RegressionPolicy:
    """Thresholds of the deterministic comparator (see module docstring)."""

    rel_tol: float = 0.50
    noise_floor: float = 0.005
    metric_rel_tol: float = 0.01
    metric_abs_floor: float = 1e-9
    improvement_ratio: float = 2 / 3

    def __post_init__(self):
        if self.rel_tol < 0 or self.noise_floor < 0 or self.metric_rel_tol < 0:
            raise InvalidParameterError(
                "regression tolerances must be non-negative"
            )
        if not 0 < self.improvement_ratio <= 1:
            raise InvalidParameterError(
                f"improvement_ratio must lie in (0, 1], got {self.improvement_ratio}"
            )


@dataclass
class BenchComparison:
    """Outcome of comparing one candidate bench payload against a baseline."""

    name: str
    verdict: str
    baseline_seconds: Optional[float] = None
    current_seconds: Optional[float] = None
    ratio: Optional[float] = None
    notes: List[str] = field(default_factory=list)
    metric_failures: Dict[str, str] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.verdict == "regression"

    def to_payload(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "verdict": self.verdict,
            "baseline_seconds": self.baseline_seconds,
            "current_seconds": self.current_seconds,
            "ratio": self.ratio,
            "notes": list(self.notes),
            "metric_failures": dict(self.metric_failures),
        }


def compare_payloads(
    current: Mapping[str, Any],
    baseline: Optional[Mapping[str, Any]],
    policy: RegressionPolicy = RegressionPolicy(),
) -> BenchComparison:
    """Classify one candidate payload against its baseline.

    ``baseline=None`` yields the ``"new"`` verdict (no baseline exists
    yet — informational, not a failure; the gate can be told to treat it
    as one via its strict mode).
    """
    current = validate_bench_payload(current)
    cur_best = float(current["timings"]["best_seconds"])
    if baseline is None:
        return BenchComparison(
            name=current["name"],
            verdict="new",
            current_seconds=cur_best,
            notes=["no baseline on record"],
        )
    baseline = validate_bench_payload(baseline)
    if baseline["name"] != current["name"]:
        raise InvalidParameterError(
            f"comparing bench {current['name']!r} against baseline "
            f"{baseline['name']!r}"
        )
    base_best = float(baseline["timings"]["best_seconds"])
    notes: List[str] = []
    if baseline["workload"] != current["workload"]:
        notes.append(
            "workload parameters changed since the baseline was recorded; "
            "timing comparison is apples-to-oranges until the baseline is "
            "refreshed"
        )
    ratio = cur_best / base_best if base_best > 0 else None

    timing_verdict = "pass"
    if max(cur_best, base_best) < policy.noise_floor:
        notes.append(
            f"both timings under the {policy.noise_floor * 1e3:.1f} ms noise "
            "floor; timing not compared"
        )
    elif cur_best > base_best * (1.0 + policy.rel_tol):
        timing_verdict = "regression"
        notes.append(
            f"best-of-{current['repeats']} wall time regressed: "
            f"{base_best:.4f}s -> {cur_best:.4f}s "
            f"(x{ratio:.2f}, tolerance x{1 + policy.rel_tol:.2f})"
        )
    elif cur_best < base_best * policy.improvement_ratio:
        timing_verdict = "improved"
        notes.append(
            f"wall time improved: {base_best:.4f}s -> {cur_best:.4f}s"
        )

    metric_failures: Dict[str, str] = {}
    for metric, base_value in baseline["metrics"].items():
        if metric not in current["metrics"]:
            metric_failures[metric] = "metric disappeared from the candidate"
            continue
        cur_value = float(current["metrics"][metric])
        base_value = float(base_value)
        drift = abs(cur_value - base_value)
        scale = max(abs(base_value), abs(cur_value))
        if drift <= policy.metric_abs_floor:
            continue
        if drift > policy.metric_rel_tol * max(scale, policy.metric_abs_floor):
            metric_failures[metric] = (
                f"{base_value:.6g} -> {cur_value:.6g} "
                f"(drift {drift / max(scale, policy.metric_abs_floor):.2%}, "
                f"tolerance {policy.metric_rel_tol:.2%})"
            )

    verdict = timing_verdict
    if metric_failures:
        verdict = "regression"
    return BenchComparison(
        name=current["name"],
        verdict=verdict,
        baseline_seconds=base_best,
        current_seconds=cur_best,
        ratio=ratio,
        notes=notes,
        metric_failures=metric_failures,
    )


def worst_verdict(comparisons: List[BenchComparison]) -> str:
    """The most severe verdict in a batch (``"pass"`` for an empty batch)."""
    worst = "pass"
    for comparison in comparisons:
        if VERDICTS.index(comparison.verdict) > VERDICTS.index(worst):
            worst = comparison.verdict
    return worst


def format_comparisons(comparisons: List[BenchComparison]) -> str:
    """Aligned plain-text table of a comparison batch, worst rows last."""
    from repro.analysis.reporting import format_table

    def _fmt(seconds: Optional[float]) -> str:
        return "-" if seconds is None else f"{seconds:.4f}"

    rows = [
        [
            c.name,
            c.verdict,
            _fmt(c.baseline_seconds),
            _fmt(c.current_seconds),
            "-" if c.ratio is None else f"x{c.ratio:.2f}",
            "; ".join(
                list(c.notes)
                + [f"{m}: {why}" for m, why in sorted(c.metric_failures.items())]
            )
            or "-",
        ]
        for c in sorted(comparisons, key=lambda c: VERDICTS.index(c.verdict))
    ]
    return format_table(
        ["bench", "verdict", "baseline (s)", "current (s)", "ratio", "notes"],
        rows,
        title="benchmark comparison",
    )


class BaselineStore:
    """Directory of committed ``BENCH_<name>.json`` baseline documents.

    The default location is ``benchmarks/baselines/`` at the repository
    root — baselines are version-controlled artifacts, refreshed
    deliberately (``repro bench run --output-dir benchmarks/baselines``)
    when a PR legitimately changes the performance envelope, and gated
    against otherwise.
    """

    def __init__(self, directory: str):
        self.directory = os.fspath(directory)

    def path_for(self, name: str) -> str:
        return bench_output_path(self.directory, name)

    def names(self) -> List[str]:
        """Bench names with a baseline on record."""
        if not os.path.isdir(self.directory):
            return []
        found = []
        for entry in sorted(os.listdir(self.directory)):
            if entry.startswith("BENCH_") and entry.endswith(".json"):
                found.append(entry[len("BENCH_"):-len(".json")])
        return found

    def load(self, name: str) -> Optional[Dict[str, Any]]:
        """The validated baseline payload for ``name``; ``None`` if absent."""
        path = self.path_for(name)
        if not os.path.exists(path):
            return None
        return load_bench_payload(path)

    def store(self, result: BenchResult) -> str:
        """Persist ``result`` as the new baseline; return the path."""
        return write_bench_result(result, self.directory)
