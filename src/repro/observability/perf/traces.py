"""Post-hoc analysis of telemetry / sweep-event JSONL streams.

The capture side (PR 3/PR 4) leaves behind JSONL record streams — run
telemetry from ``run_dgd``/``run_dgd_batch``/the resilient runtime, and
the sweep engine's event log, all sharing one flat ``{"event": ...}``
schema. :func:`analyze_records` turns one stream into a
:class:`TraceReport`:

- **hotspot attribution** — per span name: call count, total seconds,
  p95, and the share of the run's accounted time (against the ``"run"``
  span when present, else the sum of spans), so "where did the time go"
  has a first-class answer;
- **rounds/sec trend** — the ``"round"`` span series split into windows
  with a rate per window, making gradual slowdowns visible instead of
  averaged away;
- **anomaly flags** — stalls (round spans an order of magnitude over the
  median, stalled/missing liveness evidence from the self-healing
  runtime), elimination-precision drops (a window's filter precision
  falling well under the stream's overall precision), and divergence
  (the distance-to-reference series ending far above its minimum).

Anomaly detection is heuristic by design — flags are pointers for a human
(or a gate with ``--fail-on-anomaly``), not proofs — but every threshold
is an explicit parameter, so a workload with known-spiky rounds can relax
them instead of learning to ignore the report.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.observability.exporters import load_jsonl, summarize_records

__all__ = [
    "TraceAnomaly",
    "TraceReport",
    "analyze_records",
    "analyze_trace_path",
]


@dataclass
class TraceAnomaly:
    """One flagged irregularity in a trace stream."""

    # "stall" | "precision_drop" | "divergence" | "slowdown"
    # | "agent_degraded" | "partition_unhealed"
    kind: str
    message: str
    context: Dict[str, Any] = field(default_factory=dict)

    def to_payload(self) -> Dict[str, Any]:
        return {"kind": self.kind, "message": self.message, "context": dict(self.context)}


@dataclass
class TraceReport:
    """Structured outcome of analyzing one JSONL record stream."""

    source: str
    records: int
    rounds: int
    hotspots: List[Dict[str, Any]]
    rounds_per_sec: Optional[float]
    round_rate_windows: List[Dict[str, float]]
    elimination: Dict[str, Any]
    counters: Dict[str, int]
    anomalies: List[TraceAnomaly]
    agent_health: Optional[Dict[str, Any]] = None

    def to_payload(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "records": self.records,
            "rounds": self.rounds,
            "hotspots": [dict(h) for h in self.hotspots],
            "rounds_per_sec": self.rounds_per_sec,
            "round_rate_windows": [dict(w) for w in self.round_rate_windows],
            "elimination": dict(self.elimination),
            "counters": dict(self.counters),
            "anomalies": [a.to_payload() for a in self.anomalies],
            "agent_health": (
                None if self.agent_health is None else dict(self.agent_health)
            ),
        }

    def render(self) -> str:
        """Plain-text report: hotspot table, trend line, anomaly list."""
        from repro.analysis.reporting import format_table

        blocks: List[str] = [f"== trace report: {self.source} =="]
        if self.hotspots:
            rows = [
                [
                    h["span"],
                    h["count"],
                    f"{h['total_seconds']:.4f}",
                    f"{h['p95_ms']:.3f}",
                    f"{h['share']:.1%}" if h["share"] is not None else "-",
                ]
                for h in self.hotspots
            ]
            blocks.append(format_table(
                ["span", "count", "total (s)", "p95 (ms)", "share"],
                rows,
                title="hotspots",
            ))
        summary_rows = [
            ["records", self.records],
            ["rounds", self.rounds],
            ["rounds/sec", "-" if self.rounds_per_sec is None
             else f"{self.rounds_per_sec:.1f}"],
        ]
        precision = self.elimination.get("precision")
        recall = self.elimination.get("recall")
        if precision is not None:
            summary_rows.append(["elimination precision", f"{precision:.3f}"])
        if recall is not None:
            summary_rows.append(["elimination recall", f"{recall:.3f}"])
        if self.round_rate_windows:
            rates = [w["rounds_per_sec"] for w in self.round_rate_windows]
            summary_rows.append(
                ["round-rate trend",
                 " -> ".join(f"{r:.0f}/s" for r in rates)]
            )
        for name, value in sorted(self.counters.items()):
            summary_rows.append([f"counter {name}", value])
        if self.agent_health is not None:
            health = self.agent_health
            summary_rows.append(
                ["agent-health rounds", health.get("rounds", 0)]
            )
            summary_rows.append(
                ["degraded agent-rounds", health.get("degraded_rounds", 0)]
            )
            summary_rows.append(
                ["max degraded streak", health.get("max_degraded_streak", 0)]
            )
            summary_rows.append(
                ["bytes dropped", health.get("bytes_dropped", 0)]
            )
            summary_rows.append(
                ["suspected/reinstated edges",
                 f"{health.get('suspected_edge_events', 0)}"
                 f"/{health.get('reinstated_edge_events', 0)}"]
            )
        blocks.append(format_table(["quantity", "value"], summary_rows,
                                   title="stream summary"))
        if self.anomalies:
            blocks.append("anomalies:")
            blocks.extend(
                f"  [{a.kind}] {a.message}" for a in self.anomalies
            )
        else:
            blocks.append("anomalies: none")
        return "\n".join(blocks)


def _window_slices(count: int, windows: int) -> List[slice]:
    edges = np.linspace(0, count, min(windows, count) + 1).astype(int)
    return [slice(a, b) for a, b in zip(edges[:-1], edges[1:]) if b > a]


def _analyze_agent_health(
    health_records: List[Dict],
    anomalies: List[TraceAnomaly],
    *,
    degraded_window: int,
) -> Dict[str, Any]:
    """Roll up ``agent_health`` records and flag degradation patterns.

    Emitted by the decentralized engine once per faulted round; each
    record carries per-agent ``live_in_degree``, the ids currently
    ``degraded`` (infeasible neighborhood: ``1 + k_i < 2 f_i + 1``) and
    ``frozen`` (crashed this round), and per-edge suspicion transitions.
    Two anomaly patterns come out of the streak bookkeeping: an agent
    degraded for more than ``degraded_window`` consecutive rounds, and a
    partition that never healed (agents still degraded when the stream
    ends, after such a streak).
    """
    streaks: Dict[int, int] = {}
    max_streaks: Dict[int, int] = {}
    degraded_rounds = 0
    frozen_rounds = 0
    bytes_dropped = 0
    dropped_edges = 0
    suspected_events = 0
    reinstated_events = 0
    min_in_degree: Optional[int] = None
    final_degraded: List[int] = []
    for record in health_records:
        degraded = [int(i) for i in record.get("degraded", ())]
        degraded_set = set(degraded)
        degraded_rounds += len(degraded)
        frozen_rounds += len(record.get("frozen", ()))
        bytes_dropped += int(record.get("bytes_dropped", 0))
        dropped_edges += int(record.get("dropped_edges", 0))
        suspected_events += len(record.get("suspected_edges", ()))
        reinstated_events += len(record.get("reinstated_edges", ()))
        in_degree = record.get("live_in_degree")
        if in_degree:
            low = int(min(in_degree))
            min_in_degree = (
                low if min_in_degree is None else min(min_in_degree, low)
            )
        for agent in degraded:
            streaks[agent] = streaks.get(agent, 0) + 1
            if streaks[agent] > max_streaks.get(agent, 0):
                max_streaks[agent] = streaks[agent]
        for agent in list(streaks):
            if agent not in degraded_set:
                streaks[agent] = 0
        final_degraded = sorted(degraded_set)
    offenders = {
        agent: streak
        for agent, streak in sorted(max_streaks.items())
        if streak > degraded_window
    }
    if offenders:
        worst_agent = max(offenders, key=offenders.get)
        anomalies.append(TraceAnomaly(
            kind="agent_degraded",
            message=(
                f"{len(offenders)} agent(s) ran degraded for more than "
                f"{degraded_window} consecutive rounds (worst: agent "
                f"{worst_agent}, {offenders[worst_agent]} rounds)"
            ),
            context={"agents": offenders, "window": degraded_window},
        ))
    unhealed = sorted(
        agent for agent in final_degraded
        if streaks.get(agent, 0) > degraded_window
    )
    if unhealed:
        anomalies.append(TraceAnomaly(
            kind="partition_unhealed",
            message=(
                f"{len(unhealed)} agent(s) were still degraded when the "
                f"stream ended (never healed): {unhealed[:8]}"
            ),
            context={
                "agents": unhealed,
                "final_streaks": {a: streaks[a] for a in unhealed},
            },
        ))
    max_streak = max(max_streaks.values(), default=0)
    return {
        "rounds": len(health_records),
        "degraded_rounds": degraded_rounds,
        "frozen_rounds": frozen_rounds,
        "max_degraded_streak": max_streak,
        "degraded_agents": sorted(max_streaks),
        "final_degraded": final_degraded,
        "min_live_in_degree": min_in_degree,
        "bytes_dropped": bytes_dropped,
        "dropped_edges": dropped_edges,
        "suspected_edge_events": suspected_events,
        "reinstated_edge_events": reinstated_events,
    }


def analyze_records(
    records: Iterable[Dict],
    *,
    source: str = "<records>",
    windows: int = 8,
    stall_factor: float = 10.0,
    slowdown_ratio: float = 0.5,
    precision_drop: float = 0.25,
    divergence_factor: float = 2.0,
    degraded_window: int = 8,
) -> TraceReport:
    """Analyze one record stream into a :class:`TraceReport`.

    Parameters beyond the stream tune the anomaly heuristics: a round span
    ``stall_factor`` times the median round is a stall; the last rate
    window dropping under ``slowdown_ratio`` times the first is a
    slowdown; a window's elimination precision ``precision_drop`` under
    the stream's overall precision is a precision drop; a
    distance-to-reference series ending above ``divergence_factor`` times
    its minimum (and above where it started) is divergence; an agent
    degraded for more than ``degraded_window`` consecutive rounds of a
    decentralized ``agent_health`` series is flagged (still degraded at
    stream end escalates to ``partition_unhealed``).
    """
    records = list(records)
    summary = summarize_records(records)
    anomalies: List[TraceAnomaly] = []

    span_durations: Dict[str, List[float]] = {}
    round_records: List[Dict] = []
    health_records: List[Dict] = []
    distances: List[float] = []
    stalled_liveness = 0
    for record in records:
        event = record.get("event")
        if event == "span" and "name" in record and "seconds" in record:
            span_durations.setdefault(record["name"], []).append(
                float(record["seconds"])
            )
        elif event == "round":
            round_records.append(record)
            if record.get("distance_to_ref") is not None:
                distances.append(float(record["distance_to_ref"]))
        elif event == "agent_health":
            health_records.append(record)
        elif event == "liveness" and record.get("missing"):
            stalled_liveness += 1

    # Hotspot attribution.
    totals = {name: float(np.sum(vals)) for name, vals in span_durations.items()}
    denominator = totals.get("run") or (sum(totals.values()) or None)
    hotspots = [
        {
            "span": name,
            "count": len(span_durations[name]),
            "total_seconds": totals[name],
            "p95_ms": float(np.percentile(span_durations[name], 95)) * 1e3,
            "share": (totals[name] / denominator) if denominator else None,
        }
        for name in sorted(totals, key=totals.get, reverse=True)
    ]

    # Round-rate trend and stalls.
    round_times = span_durations.get("round", [])
    rate_windows: List[Dict[str, float]] = []
    if round_times:
        arr = np.asarray(round_times, dtype=float)
        median = float(np.median(arr))
        if median > 0:
            worst = int(np.argmax(arr))
            if arr[worst] > stall_factor * median:
                stalls = int(np.sum(arr > stall_factor * median))
                anomalies.append(TraceAnomaly(
                    kind="stall",
                    message=(
                        f"{stalls} round(s) exceeded {stall_factor:.0f}x the "
                        f"median round time (worst {arr[worst] * 1e3:.2f} ms "
                        f"vs median {median * 1e3:.2f} ms)"
                    ),
                    context={"stalled_rounds": stalls,
                             "worst_round_index": worst,
                             "worst_seconds": float(arr[worst]),
                             "median_seconds": median},
                ))
        for window in _window_slices(arr.size, windows):
            chunk = arr[window]
            total = float(chunk.sum())
            rate_windows.append({
                "rounds": int(chunk.size),
                "seconds": total,
                "rounds_per_sec": (chunk.size / total) if total > 0 else 0.0,
            })
        if len(rate_windows) >= 2:
            first = rate_windows[0]["rounds_per_sec"]
            last = rate_windows[-1]["rounds_per_sec"]
            if first > 0 and last < slowdown_ratio * first:
                anomalies.append(TraceAnomaly(
                    kind="slowdown",
                    message=(
                        f"round rate decayed from {first:.0f}/s to "
                        f"{last:.0f}/s across the stream"
                    ),
                    context={"first_rate": first, "last_rate": last},
                ))
    if stalled_liveness:
        anomalies.append(TraceAnomaly(
            kind="stall",
            message=(
                f"{stalled_liveness} liveness record(s) reported agents "
                "missing their round deadline"
            ),
            context={"liveness_records_with_missing": stalled_liveness},
        ))

    # Windowed elimination precision.
    overall_precision = summary["elimination"]["precision"]
    scored = [r for r in round_records if r.get("eliminated") is not None]
    if overall_precision is not None and scored:
        for index, window in enumerate(_window_slices(len(scored), windows)):
            tp = fp = 0
            for record in scored[window]:
                tp += int(record.get("eliminated_byzantine", 0))
                fp += len(record["eliminated"]) - int(
                    record.get("eliminated_byzantine", 0)
                )
            if tp + fp == 0:
                continue
            window_precision = tp / (tp + fp)
            if window_precision < overall_precision - precision_drop:
                anomalies.append(TraceAnomaly(
                    kind="precision_drop",
                    message=(
                        f"elimination precision fell to "
                        f"{window_precision:.2f} in window {index} "
                        f"(stream overall {overall_precision:.2f})"
                    ),
                    context={"window": index,
                             "window_precision": window_precision,
                             "overall_precision": overall_precision},
                ))

    # Divergence of the distance-to-reference series.
    if len(distances) >= 2:
        arr = np.asarray(distances, dtype=float)
        floor = float(arr.min())
        if (
            arr[-1] > max(divergence_factor * floor, 1e-12)
            and arr[-1] > arr[0]
        ):
            anomalies.append(TraceAnomaly(
                kind="divergence",
                message=(
                    f"distance to reference ended at {arr[-1]:.4g}, above "
                    f"{divergence_factor:.1f}x its minimum {floor:.4g} and "
                    f"above its start {arr[0]:.4g}"
                ),
                context={"first": float(arr[0]), "min": floor,
                         "last": float(arr[-1])},
            ))

    # Decentralized per-agent health series (PR 9 schema).
    agent_health: Optional[Dict[str, Any]] = None
    if health_records:
        agent_health = _analyze_agent_health(
            health_records, anomalies, degraded_window=degraded_window
        )

    return TraceReport(
        source=source,
        records=len(records),
        rounds=summary["rounds"],
        hotspots=hotspots,
        rounds_per_sec=summary["rounds_per_sec"],
        round_rate_windows=rate_windows,
        elimination=summary["elimination"],
        counters=summary["counters"],
        anomalies=anomalies,
        agent_health=agent_health,
    )


def analyze_trace_path(path: str, **kwargs) -> List[TraceReport]:
    """Analyze a JSONL file, or every ``*.jsonl`` stream in a directory.

    Returns one report per stream (sorted by filename for a directory).
    Raises :class:`~repro.exceptions.InvalidParameterError` when the path
    does not exist or a directory holds no streams — the CLI maps that to
    its usage exit code.
    """
    if os.path.isfile(path):
        return [analyze_records(load_jsonl(path), source=path, **kwargs)]
    if os.path.isdir(path):
        streams = sorted(
            os.path.join(path, entry)
            for entry in os.listdir(path)
            if entry.endswith(".jsonl")
        )
        if not streams:
            raise InvalidParameterError(f"no *.jsonl streams under {path}")
        return [
            analyze_records(load_jsonl(stream), source=stream, **kwargs)
            for stream in streams
        ]
    raise InvalidParameterError(f"trace path does not exist: {path}")
