"""Benchmark registry, standardized result schema, and the run harness.

Every benchmark in the repository — the figure/table reconstructions under
``benchmarks/`` and the fast CI smoke subset — registers here as a
:class:`BenchSpec`: a named runner plus a declarative workload description.
:func:`run_bench` executes a spec ``repeats`` times under a fresh
:class:`~repro.observability.Telemetry` handle per repeat, with
:mod:`tracemalloc` tracking peak allocation, and condenses the repeats into
one :class:`BenchResult`:

- ``timings`` — per-repeat wall seconds plus the min-of-k headline
  (``best_seconds``), the statistic the regression detector gates on
  because the *minimum* of k repeats converges to the noise-free cost
  while the mean inherits scheduler jitter;
- ``phases`` — per-span count/total/p50/p95 from the fastest repeat's
  telemetry, so a bench that forwards its handle into ``run_dgd`` (or
  opens explicit ``tel.span(...)`` phases) gets hotspot-grade attribution
  for free;
- ``memory`` — tracemalloc peak bytes (tracked on every repeat so the
  overhead is identical between baseline and candidate measurements);
- ``metrics`` — optional solution-quality scalars extracted from the
  runner's return value (final errors, speedup ratios), gated much more
  tightly than wall-clock;
- ``provenance`` — git sha, UTC timestamp, host, platform, and
  python/numpy/repro versions, so a ``BENCH_*.json`` found at the repo
  root is attributable without archaeology.

Results are persisted as ``BENCH_<name>.json`` through
:func:`repro.utils.atomicio.write_json_atomic` — atomic rename plus an
end-to-end sha256 checksum wrapper, the same discipline the sweep cache
uses — and validated against :data:`BENCH_SCHEMA` on load, so a truncated
or hand-edited trajectory file fails loudly instead of polluting a gate.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
import time
import tracemalloc
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import __version__
from repro.exceptions import BenchSchemaError, InvalidParameterError
from repro.observability.telemetry import Telemetry
from repro.utils.atomicio import read_json_dict_checked, write_json_atomic

__all__ = [
    "BENCH_SCHEMA",
    "PROVENANCE_KEYS",
    "BenchSpec",
    "BenchResult",
    "BenchOutcome",
    "register_bench",
    "get_bench",
    "available_benches",
    "collect_provenance",
    "run_bench",
    "run_registered",
    "bench_output_path",
    "write_bench_result",
    "load_bench_payload",
    "validate_bench_payload",
]

#: Schema identifier stamped into (and required of) every bench payload.
BENCH_SCHEMA = "repro.bench/v1"

#: Provenance keys every payload must carry (values may be null when the
#: information is genuinely unavailable, e.g. a tarball checkout without git).
PROVENANCE_KEYS = (
    "git_sha",
    "timestamp",
    "host",
    "platform",
    "python",
    "numpy",
    "repro",
)


@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark: a runner plus its workload description.

    ``runner`` receives a live :class:`Telemetry` handle; workloads that
    forward it into the execution engines (or open their own spans) get
    per-phase attribution in the result. Returning a value is optional —
    when ``metrics`` is set it is applied to the fastest repeat's return
    value to extract solution-quality scalars.
    """

    name: str
    runner: Callable[[Telemetry], Any]
    workload: Mapping[str, Any] = field(default_factory=dict)
    description: str = ""
    tags: Tuple[str, ...] = ()
    metrics: Optional[Callable[[Any], Dict[str, float]]] = None
    #: Optional extractor of free-form, NON-gated result data (e.g. the
    #: engine bench's speedup ratios — wall-clock-derived, so informative
    #: to track but too noisy for the tightly-toleranced metric gate).
    observations: Optional[Callable[[Any], Dict[str, Any]]] = None


_REGISTRY: Dict[str, BenchSpec] = {}


def _validate_name(name: str) -> None:
    if not name or not all(c.isalnum() or c == "_" for c in name):
        raise InvalidParameterError(
            f"bench name must be non-empty [A-Za-z0-9_]+ "
            f"(it becomes BENCH_<name>.json), got {name!r}"
        )


def register_bench(
    name: str,
    *,
    workload: Optional[Mapping[str, Any]] = None,
    description: str = "",
    tags: Sequence[str] = (),
    metrics: Optional[Callable[[Any], Dict[str, float]]] = None,
    observations: Optional[Callable[[Any], Dict[str, Any]]] = None,
    replace: bool = False,
) -> Callable[[Callable[[Telemetry], Any]], Callable[[Telemetry], Any]]:
    """Decorator registering ``fn`` as the runner of bench ``name``."""

    _validate_name(name)

    def decorator(fn: Callable[[Telemetry], Any]) -> Callable[[Telemetry], Any]:
        if name in _REGISTRY and not replace:
            raise InvalidParameterError(f"bench {name!r} is already registered")
        doc = (fn.__doc__ or "").strip()
        _REGISTRY[name] = BenchSpec(
            name=name,
            runner=fn,
            workload=dict(workload or {}),
            description=description or (doc.splitlines()[0] if doc else ""),
            tags=tuple(tags),
            metrics=metrics,
            observations=observations,
        )
        return fn

    return decorator


def get_bench(name: str) -> BenchSpec:
    """Resolve a registered bench by name (:class:`InvalidParameterError` otherwise)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none registered)"
        raise InvalidParameterError(
            f"unknown bench {name!r}; registered: {known}"
        ) from None


def available_benches(tag: Optional[str] = None) -> List[str]:
    """Sorted names of registered benches, optionally filtered by tag."""
    return sorted(
        name
        for name, spec in _REGISTRY.items()
        if tag is None or tag in spec.tags
    )


# ----------------------------------------------------------------------
# Provenance
# ----------------------------------------------------------------------


def _git_sha() -> Optional[str]:
    """Current commit sha: ask git, fall back to CI env, else ``None``."""
    here = os.path.dirname(os.path.abspath(__file__))
    try:
        out = subprocess.run(
            ["git", "-C", here, "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
        if out.returncode == 0:
            return out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        pass
    return os.environ.get("GITHUB_SHA") or None


def collect_provenance() -> Dict[str, Optional[str]]:
    """The provenance block stamped into every :class:`BenchResult`."""
    return {
        "git_sha": _git_sha(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": platform.node(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "repro": __version__,
    }


# ----------------------------------------------------------------------
# Result schema
# ----------------------------------------------------------------------


@dataclass
class BenchResult:
    """The standardized, serializable outcome of one benchmark execution."""

    name: str
    workload: Dict[str, Any]
    repeats: int
    timings: Dict[str, Any]
    phases: Dict[str, Dict[str, float]]
    memory: Dict[str, int]
    metrics: Dict[str, float]
    provenance: Dict[str, Optional[str]]
    observations: Dict[str, Any] = field(default_factory=dict)
    schema: str = BENCH_SCHEMA

    def to_payload(self) -> Dict[str, Any]:
        """Plain-JSON rendering (the exact on-disk document payload)."""
        payload = {
            "schema": self.schema,
            "name": self.name,
            "workload": dict(self.workload),
            "repeats": int(self.repeats),
            "timings": dict(self.timings),
            "phases": {k: dict(v) for k, v in self.phases.items()},
            "memory": dict(self.memory),
            "metrics": dict(self.metrics),
            "provenance": dict(self.provenance),
        }
        if self.observations:
            payload["observations"] = dict(self.observations)
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "BenchResult":
        """Inverse of :meth:`to_payload`; validates the schema first."""
        validate_bench_payload(payload)
        return cls(
            name=payload["name"],
            workload=dict(payload["workload"]),
            repeats=int(payload["repeats"]),
            timings=dict(payload["timings"]),
            phases={k: dict(v) for k, v in payload["phases"].items()},
            memory=dict(payload["memory"]),
            metrics=dict(payload["metrics"]),
            provenance=dict(payload["provenance"]),
            observations=dict(payload.get("observations", {})),
            schema=payload["schema"],
        )


def validate_bench_payload(payload: Any) -> Dict[str, Any]:
    """Check a bench document against :data:`BENCH_SCHEMA`; return it.

    Raises :class:`~repro.exceptions.BenchSchemaError` naming the first
    violated constraint — the gate refuses malformed baselines instead of
    silently comparing against garbage.
    """
    if not isinstance(payload, Mapping):
        raise BenchSchemaError(
            f"bench payload must be a JSON object, got {type(payload).__name__}"
        )
    if payload.get("schema") != BENCH_SCHEMA:
        raise BenchSchemaError(
            f"unsupported bench schema {payload.get('schema')!r} "
            f"(expected {BENCH_SCHEMA!r})"
        )
    for key, kind in (
        ("name", str),
        ("workload", Mapping),
        ("repeats", int),
        ("timings", Mapping),
        ("phases", Mapping),
        ("memory", Mapping),
        ("metrics", Mapping),
        ("provenance", Mapping),
    ):
        if key not in payload:
            raise BenchSchemaError(f"bench payload missing {key!r}")
        if not isinstance(payload[key], kind) or isinstance(payload[key], bool):
            raise BenchSchemaError(
                f"bench payload field {key!r} must be {kind.__name__}, "
                f"got {type(payload[key]).__name__}"
            )
    timings = payload["timings"]
    per_repeat = timings.get("seconds_per_repeat")
    if not isinstance(per_repeat, Sequence) or isinstance(per_repeat, (str, bytes)):
        raise BenchSchemaError("timings.seconds_per_repeat must be a list")
    if len(per_repeat) != payload["repeats"] or payload["repeats"] < 1:
        raise BenchSchemaError(
            f"timings.seconds_per_repeat length {len(per_repeat)} does not "
            f"match repeats={payload['repeats']}"
        )
    for key in ("best_seconds", "mean_seconds"):
        value = timings.get(key)
        if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
            raise BenchSchemaError(f"timings.{key} must be a non-negative number")
    if abs(timings["best_seconds"] - min(per_repeat)) > 1e-12:
        raise BenchSchemaError(
            "timings.best_seconds is not the minimum of seconds_per_repeat"
        )
    for metric, value in payload["metrics"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise BenchSchemaError(
                f"metric {metric!r} must be numeric, got {type(value).__name__}"
            )
    missing = [k for k in PROVENANCE_KEYS if k not in payload["provenance"]]
    if missing:
        raise BenchSchemaError(f"provenance missing keys: {', '.join(missing)}")
    if "observations" in payload and not isinstance(payload["observations"], Mapping):
        raise BenchSchemaError("observations must be a JSON object when present")
    return dict(payload)


@dataclass
class BenchOutcome:
    """What :func:`run_bench` hands back to in-process callers.

    ``result`` is the serializable record; ``value`` is the fastest
    repeat's raw return value (the experiment result the benchmark suite
    asserts shape properties on); ``path`` is where the record was
    persisted, when an output directory was given.
    """

    result: BenchResult
    value: Any
    path: Optional[str] = None


def _phase_stats(durations: Dict[str, List[float]]) -> Dict[str, Dict[str, float]]:
    phases: Dict[str, Dict[str, float]] = {}
    for name, values in sorted(durations.items()):
        if not values:
            continue
        arr = np.asarray(values, dtype=float)
        phases[name] = {
            "count": int(arr.size),
            "total": float(arr.sum()),
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
        }
    return phases


def run_bench(
    spec: BenchSpec,
    *,
    repeats: int = 3,
    memory: bool = True,
    output_dir: Optional[str] = None,
    telemetry_dir: Optional[str] = None,
) -> BenchOutcome:
    """Execute one spec ``repeats`` times and condense a :class:`BenchResult`.

    Each repeat runs under its own :class:`Telemetry` handle (plus a JSONL
    mirror under ``telemetry_dir`` when given, one stream per repeat) with
    tracemalloc active when ``memory`` is on. Peak memory is the maximum
    across repeats; phase statistics come from the fastest repeat so they
    describe the same execution the ``best_seconds`` headline does.
    """
    if repeats < 1:
        raise InvalidParameterError(f"repeats must be >= 1, got {repeats}")
    elapsed: List[float] = []
    peaks: List[int] = []
    repeat_spans: List[Dict[str, List[float]]] = []
    values: List[Any] = []
    for repeat in range(repeats):
        sink = None
        if telemetry_dir is not None:
            sink = os.path.join(
                telemetry_dir, f"bench_{spec.name}.repeat{repeat}.jsonl"
            )
        tel = Telemetry(sink)
        tracing_here = False
        if memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            tracing_here = True
        try:
            start = time.perf_counter()
            value = spec.runner(tel)
            elapsed.append(time.perf_counter() - start)
            peaks.append(
                int(tracemalloc.get_traced_memory()[1])
                if tracemalloc.is_tracing()
                else 0
            )
        finally:
            if tracing_here:
                tracemalloc.stop()
            tel.close()
        repeat_spans.append({k: list(v) for k, v in tel.all_span_durations().items()})
        values.append(value)
    best = int(np.argmin(elapsed))
    metrics: Dict[str, float] = {}
    if spec.metrics is not None:
        metrics = {
            key: float(value) for key, value in spec.metrics(values[best]).items()
        }
    observations: Dict[str, Any] = {}
    if spec.observations is not None:
        # Round-trip through JSON (with the telemetry coercions) so numpy
        # scalars in observation dicts cannot poison the atomic write.
        import json

        from repro.observability.exporters import _json_default

        observations = json.loads(
            json.dumps(spec.observations(values[best]), default=_json_default)
        )
    result = BenchResult(
        name=spec.name,
        workload=dict(spec.workload),
        repeats=repeats,
        timings={
            "seconds_per_repeat": [float(s) for s in elapsed],
            "best_seconds": float(min(elapsed)),
            "mean_seconds": float(np.mean(elapsed)),
        },
        phases=_phase_stats(repeat_spans[best]),
        memory={"peak_bytes": max(peaks) if peaks else 0, "tracked": bool(memory)},
        metrics=metrics,
        provenance=collect_provenance(),
        observations=observations,
    )
    path = None
    if output_dir is not None:
        path = write_bench_result(result, output_dir)
    return BenchOutcome(result=result, value=values[best], path=path)


def run_registered(name: str, **kwargs) -> BenchOutcome:
    """:func:`run_bench` on the registered spec called ``name``."""
    return run_bench(get_bench(name), **kwargs)


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------


def bench_output_path(output_dir: str, name: str) -> str:
    """Canonical on-disk location of a bench record: ``BENCH_<name>.json``."""
    return os.path.join(output_dir, f"BENCH_{name}.json")


def write_bench_result(result: BenchResult, output_dir: str) -> str:
    """Persist a record checksummed-atomically; return the path written."""
    os.makedirs(output_dir, exist_ok=True)
    payload = validate_bench_payload(result.to_payload())
    return write_json_atomic(bench_output_path(output_dir, result.name), payload)


def load_bench_payload(path: str) -> Dict[str, Any]:
    """Load + checksum-verify + schema-validate one ``BENCH_*.json``.

    Accepts both the checksummed wrapper this harness writes and a legacy
    bare document (the pre-harness ``BENCH_engine.json`` format fails the
    *schema* check instead, with a message naming the missing field).
    """
    return validate_bench_payload(read_json_dict_checked(path))
