"""Continuous benchmarking, regression gating, and trace analysis.

PR 3 built the *capture* side of observability (telemetry spans, per-round
records, JSONL sinks); this package is the *consumption* side — the
"measure, baseline, gate" discipline applied to both runtime and solution
quality:

- :mod:`~repro.observability.perf.bench_harness` — a benchmark registry
  with one standardized, schema-versioned :class:`BenchResult` per bench
  (workload parameters, min-of-k repeat timings, per-phase timings built
  from :class:`~repro.observability.Telemetry` spans, peak memory via
  :mod:`tracemalloc`, and full provenance), persisted through the
  checksummed atomic-write discipline of :mod:`repro.utils.atomicio` as
  ``BENCH_<name>.json``;
- :mod:`~repro.observability.perf.regression` — a baseline store plus a
  deterministic statistical comparator (relative-tolerance and noise-floor
  thresholds over min-of-k timings, tight relative drift bounds over
  quality metrics) that classifies each bench as pass / improved /
  regression and backs the ``repro bench gate`` exit code;
- :mod:`~repro.observability.perf.traces` — an analyzer that ingests the
  PR 3/PR 4 telemetry and sweep JSONL streams and produces hotspot
  attribution per span, rounds/sec trends, and anomaly flags (stalls,
  elimination-precision drops, divergence);
- :mod:`~repro.observability.perf.workloads` — the default registry
  contents: every ``benchmarks/bench_*.py`` figure/table workload plus a
  fast ``smoke`` subset for CI gating. Imported lazily (it pulls the whole
  experiment layer) via :func:`load_default_workloads`.
"""

from repro.observability.perf.bench_harness import (
    BENCH_SCHEMA,
    PROVENANCE_KEYS,
    BenchOutcome,
    BenchResult,
    BenchSpec,
    available_benches,
    bench_output_path,
    collect_provenance,
    get_bench,
    load_bench_payload,
    register_bench,
    run_bench,
    run_registered,
    validate_bench_payload,
    write_bench_result,
)
from repro.observability.perf.regression import (
    BaselineStore,
    BenchComparison,
    RegressionPolicy,
    compare_payloads,
    format_comparisons,
    worst_verdict,
)
from repro.observability.perf.export import (
    SpanNode,
    build_span_tree,
    collect_trace_records,
    parse_chrome_trace,
    render_flame,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.observability.perf.traces import (
    TraceAnomaly,
    TraceReport,
    analyze_records,
    analyze_trace_path,
)

__all__ = [
    "BENCH_SCHEMA",
    "PROVENANCE_KEYS",
    "BenchOutcome",
    "BenchResult",
    "BenchSpec",
    "available_benches",
    "bench_output_path",
    "collect_provenance",
    "get_bench",
    "load_bench_payload",
    "register_bench",
    "run_bench",
    "run_registered",
    "validate_bench_payload",
    "write_bench_result",
    "BaselineStore",
    "BenchComparison",
    "RegressionPolicy",
    "compare_payloads",
    "format_comparisons",
    "worst_verdict",
    "TraceAnomaly",
    "TraceReport",
    "analyze_records",
    "analyze_trace_path",
    "SpanNode",
    "build_span_tree",
    "collect_trace_records",
    "to_chrome_trace",
    "write_chrome_trace",
    "parse_chrome_trace",
    "render_flame",
    "load_default_workloads",
]


def load_default_workloads():
    """Populate the registry with the repository's benches; return names.

    The workload definitions import the full experiment layer, so they are
    kept out of the package import path and pulled in on demand (the CLI
    and the benchmark suite call this before resolving names).
    """
    from repro.observability.perf import workloads  # noqa: F401

    return available_benches()
