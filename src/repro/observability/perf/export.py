"""Cross-process span-tree reconstruction and trace exporters.

A traced job leaves spans scattered across several JSONL streams: the
job's ``events.jsonl`` (engine + chunk spans emitted by the service
executor and the sweep engine) and per-group telemetry streams written
by pool workers (group/run/round spans). Every span record carries the
deterministic ``trace_id``/``span_id``/``parent_span_id`` triple from
:mod:`repro.observability.tracing`, so the tree is reassembled by id —
no clock synchronization between processes is assumed (wall-clock ``ts``
is used only for sibling ordering and the Chrome timeline).

Three consumers:

- :func:`build_span_tree` — the reconstructor: span records (last write
  wins per span id, so chunk retries collapse) → a forest of
  :class:`SpanNode`, with non-span records attached to their owning span.
- :func:`to_chrome_trace` / :func:`parse_chrome_trace` — Chrome
  trace-event JSON (the ``chrome://tracing`` / Perfetto format), one
  virtual thread per source stream; the parser validates the schema and
  backs the export round-trip tests and the CI artifact check.
- :func:`render_flame` — a text flame view: the tree indented by depth
  with inclusive durations and share-of-root, repeated same-name leaf
  siblings (the per-round spans) collapsed into one aggregate line.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import InvalidParameterError
from repro.observability.exporters import load_jsonl
from repro.utils.atomicio import write_json_atomic

__all__ = [
    "SpanNode",
    "collect_trace_records",
    "build_span_tree",
    "to_chrome_trace",
    "write_chrome_trace",
    "parse_chrome_trace",
    "render_flame",
]

#: Key added to collected records naming the stream they came from.
SOURCE_KEY = "_stream"


@dataclass
class SpanNode:
    """One reconstructed span and its subtree."""

    name: str
    span_id: str
    trace_id: str
    parent_span_id: Optional[str]
    seconds: float
    ts: Optional[float]
    source: Optional[str] = None
    children: List["SpanNode"] = field(default_factory=list)
    events: List[Dict] = field(default_factory=list)

    def walk(self) -> Iterable["SpanNode"]:
        """This node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_payload(self) -> Dict:
        """JSON-encodable recursive dump (used by equality assertions)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
            "seconds": self.seconds,
            "ts": self.ts,
            "source": self.source,
            "events": len(self.events),
            "children": [child.to_payload() for child in self.children],
        }


def collect_trace_records(path: str) -> List[Dict]:
    """Load every record from a JSONL file or a directory of streams.

    Directories are walked recursively (a job directory holds
    ``events.jsonl`` plus a ``telemetry/`` subdirectory); each record is
    annotated with the stream it came from under ``"_stream"`` so the
    exporters can map streams to timeline threads.
    """
    if os.path.isfile(path):
        streams = [path]
        root = os.path.dirname(path) or "."
    elif os.path.isdir(path):
        root = path
        streams = []
        for dirpath, _dirnames, filenames in os.walk(path):
            for name in sorted(filenames):
                if name.endswith(".jsonl"):
                    streams.append(os.path.join(dirpath, name))
        streams.sort()
    else:
        raise InvalidParameterError(f"no trace stream at {path}")
    if not streams:
        raise InvalidParameterError(f"no .jsonl streams under {path}")
    records: List[Dict] = []
    for stream in streams:
        label = os.path.relpath(stream, root)
        for record in load_jsonl(stream):
            if isinstance(record, dict):
                record = dict(record)
                record[SOURCE_KEY] = label
                records.append(record)
    return records


def _span_sort_key(node: SpanNode) -> Tuple:
    return (
        node.ts if node.ts is not None else float("inf"),
        node.name,
        node.span_id,
    )


def build_span_tree(records: Iterable[Dict]) -> List[SpanNode]:
    """Reassemble traced span records into a forest of :class:`SpanNode`.

    Only records with ``event == "span"`` and a ``span_id`` participate;
    the rest of a traced stream (rounds, counters, chunk events) is
    attached to its owning span via its ``span_id`` reference. Re-emitted
    span ids (chunk retries, resumed engines) keep the last occurrence.
    Spans whose parent never materialized (e.g. a partial stream) become
    roots, so a truncated trace still renders.
    """
    nodes: Dict[str, SpanNode] = {}
    pending_events: List[Dict] = []
    for record in records:
        if not isinstance(record, dict) or "span_id" not in record:
            continue
        if record.get("event") == "span":
            span_id = str(record["span_id"])
            parent = record.get("parent_span_id")
            node = SpanNode(
                name=str(record.get("name", "")),
                span_id=span_id,
                trace_id=str(record.get("trace_id", "")),
                parent_span_id=None if parent is None else str(parent),
                seconds=float(record.get("seconds", 0.0)),
                ts=(
                    float(record["ts"])
                    if record.get("ts") is not None
                    else None
                ),
                source=record.get(SOURCE_KEY),
            )
            previous = nodes.get(span_id)
            if previous is not None:
                node.events = previous.events
            nodes[span_id] = node
        else:
            pending_events.append(record)
    for record in pending_events:
        owner = nodes.get(str(record["span_id"]))
        if owner is not None:
            owner.events.append(record)
    roots: List[SpanNode] = []
    for node in nodes.values():
        parent = (
            nodes.get(node.parent_span_id)
            if node.parent_span_id is not None
            else None
        )
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node.children.sort(key=_span_sort_key)
    roots.sort(key=_span_sort_key)
    return roots


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------


def to_chrome_trace(records: Iterable[Dict]) -> Dict:
    """Render traced records as a Chrome trace-event JSON document.

    Spans become ``"ph": "X"`` (complete) events with microsecond
    ``ts``/``dur`` rebased to the earliest span start, one virtual
    ``tid`` per source stream (named via ``thread_name`` metadata
    events), and the span/trace ids carried in ``args`` so
    :func:`parse_chrome_trace` can rebuild the exact tree.
    """
    roots = build_span_tree(records)
    spans = [node for root in roots for node in root.walk()]
    timed = [node for node in spans if node.ts is not None]
    base = min((node.ts for node in timed), default=0.0)
    sources = sorted({node.source or "<records>" for node in spans})
    tids = {source: index + 1 for index, source in enumerate(sources)}
    events: List[Dict] = []
    for source, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": source},
            }
        )
    for node in spans:
        start = node.ts if node.ts is not None else base
        events.append(
            {
                "name": node.name,
                "ph": "X",
                "ts": (start - base) * 1e6,
                "dur": node.seconds * 1e6,
                "pid": 1,
                "tid": tids[node.source or "<records>"],
                "args": {
                    "trace_id": node.trace_id,
                    "span_id": node.span_id,
                    "parent_span_id": node.parent_span_id,
                    "source": node.source,
                    "events": len(node.events),
                    # Absolute start (seconds): the timeline ``ts`` above
                    # is rebased for the viewer, this one survives the
                    # parse round-trip bit-exactly.
                    "ts": node.ts,
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, records: Iterable[Dict]) -> Dict:
    """Write the Chrome trace JSON to ``path``; return the document.

    Written *without* the repository's checksum wrapper — Perfetto and
    ``chrome://tracing`` expect the bare document.
    """
    document = to_chrome_trace(records)
    write_json_atomic(path, document, checksum=False)
    return document


def parse_chrome_trace(document) -> List[Dict]:
    """Validate a Chrome trace document; return its span records.

    Accepts the parsed JSON document (or a path to one) and returns
    telemetry-schema span records — feeding them back through
    :func:`build_span_tree` must reproduce the tree the export was built
    from; the round-trip tests and the CI artifact check pin this.

    Raises :class:`~repro.exceptions.InvalidParameterError` on any
    schema violation.
    """
    if isinstance(document, (str, os.PathLike)):
        try:
            with open(os.fspath(document), "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise InvalidParameterError(
                f"unreadable chrome trace: {exc}"
            ) from exc
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise InvalidParameterError(
            "chrome trace must be an object with a traceEvents list"
        )
    trace_events = document["traceEvents"]
    if not isinstance(trace_events, list):
        raise InvalidParameterError("traceEvents must be a list")
    records: List[Dict] = []
    for index, event in enumerate(trace_events):
        if not isinstance(event, dict):
            raise InvalidParameterError(
                f"traceEvents[{index}] is not an object"
            )
        phase = event.get("ph")
        if phase not in ("X", "M"):
            raise InvalidParameterError(
                f"traceEvents[{index}] has unsupported phase {phase!r}"
            )
        for key in ("name", "pid", "tid"):
            if key not in event:
                raise InvalidParameterError(
                    f"traceEvents[{index}] missing {key!r}"
                )
        if phase == "M":
            continue
        for key in ("ts", "dur"):
            if not isinstance(event.get(key), (int, float)):
                raise InvalidParameterError(
                    f"traceEvents[{index}] missing numeric {key!r}"
                )
        args = event.get("args")
        if not isinstance(args, dict) or "span_id" not in args:
            raise InvalidParameterError(
                f"traceEvents[{index}] args must carry span lineage"
            )
        record = {
            "event": "span",
            "name": event["name"],
            "seconds": float(event["dur"]) / 1e6,
            "trace_id": args.get("trace_id"),
            "span_id": args["span_id"],
            "parent_span_id": args.get("parent_span_id"),
        }
        if args.get("ts") is not None:
            record["ts"] = float(args["ts"])
        if args.get("source") is not None:
            record[SOURCE_KEY] = args["source"]
        records.append(record)
    return records


# ----------------------------------------------------------------------
# Text flame view
# ----------------------------------------------------------------------


def _percentile(values: List[float], q: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    position = (len(ordered) - 1) * q
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def _render_node(
    node: SpanNode, depth: int, total: float, lines: List[str]
) -> None:
    indent = "  " * depth
    share = (node.seconds / total * 100.0) if total > 0 else 0.0
    lines.append(
        f"{indent}{node.name}  {node.seconds * 1000:.2f}ms  ({share:.1f}%)"
    )
    # Collapse runs of same-name leaf children (per-round spans) into one
    # aggregate line; everything else renders recursively.
    by_name: Dict[str, List[SpanNode]] = {}
    for child in node.children:
        by_name.setdefault(child.name, []).append(child)
    rendered: set = set()
    for child in node.children:
        if child.name in rendered:
            continue
        group = by_name[child.name]
        if len(group) > 3 and all(not member.children for member in group):
            rendered.add(child.name)
            durations = [member.seconds for member in group]
            group_total = sum(durations)
            group_share = (
                group_total / total * 100.0 if total > 0 else 0.0
            )
            lines.append(
                f"{'  ' * (depth + 1)}{child.name} x{len(group)}  "
                f"{group_total * 1000:.2f}ms total  "
                f"p95={_percentile(durations, 0.95) * 1000:.3f}ms  "
                f"({group_share:.1f}%)"
            )
        else:
            _render_node(child, depth + 1, total, lines)


def render_flame(roots: List[SpanNode]) -> str:
    """Indented text flame view of a reconstructed span forest."""
    if not roots:
        return "(no traced spans)"
    lines: List[str] = []
    for root in roots:
        total = root.seconds
        _render_node(root, 0, total, lines)
    return "\n".join(lines)
