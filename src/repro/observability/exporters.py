"""Telemetry sinks and roll-ups.

A telemetry *record* is a flat JSON object with an ``"event"`` key — the
same schema :class:`repro.experiments.sweep.SweepEvents` uses for the sweep
engine's event log, so run telemetry and sweep events are interchangeable
for loading, counting, and post-mortem tooling. Two sinks are provided:

- :class:`MemorySink` keeps records in a list (tests, ``summary()`` without
  touching disk);
- :class:`JSONLSink` mirrors each record to disk as one JSON line the
  moment it is emitted, following the durability discipline of
  :mod:`repro.utils.atomicio`: every line is written and flushed whole, so
  a killed process leaves a readable prefix, and :func:`load_jsonl` skips a
  torn final line instead of failing the post-mortem. Point-in-time
  documents (summaries) go through :func:`write_summary_atomic`, which is
  the checksummed write-then-rename path of
  :func:`repro.utils.atomicio.write_json_atomic`.

:func:`summarize_records` rolls a record stream (live or re-loaded from a
JSONL file) up into the quantities the profiling workflow reports: p50/p95
span latencies, rounds per second, and elimination precision/recall of the
gradient filter against the ground-truth Byzantine set.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.utils.atomicio import write_json_atomic

__all__ = [
    "TelemetrySink",
    "MemorySink",
    "JSONLSink",
    "load_jsonl",
    "count_events",
    "summarize_records",
    "write_summary_atomic",
]


class TelemetrySink:
    """Destination for telemetry records (one flat dict per event)."""

    def emit(self, record: Dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; emitting after close is an error."""


class MemorySink(TelemetrySink):
    """Keeps every record in an in-memory list."""

    def __init__(self) -> None:
        self.records: List[Dict] = []

    def emit(self, record: Dict) -> None:
        self.records.append(record)


class JSONLSink(TelemetrySink):
    """Appends each record to ``path`` as one JSON line, flushed per record.

    The file is truncated on construction (each stream owns its file, as
    the sweep event log does). Records are serialized with sorted keys so
    streams are diffable; numpy scalars and arrays are coerced to plain
    JSON types. Each line is written in a single append-and-flush, so a
    reader — or a post-mortem after a kill — sees only whole lines plus at
    most one torn final line, which :func:`load_jsonl` skips.

    Thread-safe: concurrent emitters are serialized on a per-sink lock, so
    a sink shared by racing writers (the aggregation service's job slots)
    never interleaves partial lines — every line of the stream parses.
    """

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8"):
            pass  # own the file: each stream starts fresh

    def emit(self, record: Dict) -> None:
        line = json.dumps(record, sort_keys=True, default=_json_default)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()


def _json_default(value: Any):
    """Coerce numpy scalars/arrays into JSON-native types."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serializable: {type(value).__name__}")


def load_jsonl(path: str) -> List[Dict]:
    """Parse a JSONL record file, skipping malformed (truncated) lines."""
    records: List[Dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


def count_events(records: Iterable[Dict]) -> Dict[str, int]:
    """Event name → number of occurrences."""
    totals: Dict[str, int] = {}
    for record in records:
        event = record.get("event", "?")
        totals[event] = totals.get(event, 0) + 1
    return totals


def _percentile(values: List[float], q: float) -> float:
    """Percentile that tolerates an empty sample (0.0) instead of raising."""
    if len(values) == 0:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), q))


def summarize_records(records: Iterable[Dict]) -> Dict:
    """Roll a telemetry record stream up into the profiling summary.

    Works on a live record list or on records re-loaded from a JSONL file
    via :func:`load_jsonl` — :meth:`repro.observability.Telemetry.summary`
    produces the identical structure from its running aggregates, and the
    equivalence is pinned by the observability test suite.

    Returns a dict with:

    - ``"rounds"``: number of per-round records;
    - ``"spans"``: per span name, ``{"count", "p50", "p95", "total"}``
      (seconds);
    - ``"rounds_per_sec"``: rounds divided by the total time attributed to
      the ``"round"`` span (falling back to the ``"run"`` span), ``None``
      when no timing was recorded;
    - ``"elimination"``: aggregate confusion counts of filter elimination
      against the ground-truth Byzantine set, with ``precision`` (of the
      eliminated agents, how many were Byzantine) and ``recall`` (of the
      Byzantine agents present, how many were eliminated); ``None`` values
      where the denominator is empty;
    - ``"counters"``: merged counter totals from ``counters`` records.
    """
    rounds = 0
    durations: Dict[str, List[float]] = {}
    tp = fp = fn = 0
    counters: Dict[str, int] = {}
    for record in records:
        event = record.get("event")
        if event == "round":
            rounds += 1
            if record.get("eliminated") is not None:
                tp += int(record.get("eliminated_byzantine", 0))
                fp += len(record["eliminated"]) - int(
                    record.get("eliminated_byzantine", 0)
                )
                fn += int(record.get("surviving_byzantine", 0))
        elif event == "span":
            # Tolerate partial span records (a torn line salvaged by
            # load_jsonl, or a foreign stream): skip rather than raise.
            if record.get("name") is None or record.get("seconds") is None:
                continue
            durations.setdefault(record["name"], []).append(
                float(record["seconds"])
            )
        elif event == "counters":
            for name, value in record.items():
                if name == "event":
                    continue
                counters[name] = counters.get(name, 0) + int(value)
    return _assemble_summary(rounds, durations, tp, fp, fn, counters)


def _assemble_summary(
    rounds: int,
    durations: Dict[str, List[float]],
    tp: int,
    fp: int,
    fn: int,
    counters: Dict[str, int],
) -> Dict:
    """Shared summary assembly for live telemetry and re-loaded records."""
    # An empty stream (or one whose span lists are empty) must roll up to
    # an explicit empty summary, never an exception: post-mortems run this
    # on whatever a killed process left behind.
    spans = {
        name: {
            "count": len(values),
            "p50": _percentile(values, 50),
            "p95": _percentile(values, 95),
            "total": float(sum(values)),
        }
        for name, values in sorted(durations.items())
        if values
    }
    rounds_per_sec: Optional[float] = None
    for clock in ("round", "run"):
        total = spans.get(clock, {}).get("total", 0.0)
        if rounds and total > 0:
            rounds_per_sec = rounds / total
            break
    return {
        "rounds": rounds,
        "spans": spans,
        "rounds_per_sec": rounds_per_sec,
        "elimination": {
            "true_positives": tp,
            "false_positives": fp,
            "false_negatives": fn,
            "precision": tp / (tp + fp) if tp + fp else None,
            "recall": tp / (tp + fn) if tp + fn else None,
        },
        "counters": dict(sorted(counters.items())),
    }


def write_summary_atomic(path: str, summary: Dict) -> str:
    """Persist a summary via the checksummed atomic-write path."""
    return write_json_atomic(path, summary)
