"""In-process metrics: counters, gauges, histograms, Prometheus text.

The service exposes its live state through a :class:`MetricsRegistry` —
queue depth, admission rejections by reason, job latency distributions,
cross-tenant cache hits, pool rebuilds. The registry is deliberately
minimal: fixed-bucket histograms only, no timestamps, no metric
expiry, and **one lock for the whole registry** (the same discipline as
:class:`~repro.observability.exporters.JSONLSink`), so a scrape is a
consistent snapshot no matter how many threads are updating concurrently.

:meth:`MetricsRegistry.render_prometheus` emits the Prometheus text
exposition format (``text/plain; version=0.0.4``) the service serves at
``GET /metrics``; :func:`parse_prometheus_text` is the matching parser
the tests and the CI smoke leg use to assert counter monotonicity across
scrapes.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import InvalidParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
    "parse_prometheus_text",
]

#: Content type of the text exposition format served at ``GET /metrics``.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default histogram buckets for job/request latencies (seconds): spans
#: sub-10ms cache hits through multi-minute sweeps.
DEFAULT_LATENCY_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise InvalidParameterError(f"invalid label name: {name!r}")
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r"\"")


def _render_labels(key: LabelKey, extra: Sequence[Tuple[str, str]] = ()) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return "+Inf" if bound == math.inf else _format_value(bound)


class _Metric:
    """Base class: a named instrument sharing the registry's lock."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.Lock):
        if not _NAME_RE.match(name):
            raise InvalidParameterError(f"invalid metric name: {name!r}")
        self.name = name
        self.help_text = help_text
        self._lock = lock

    def _header(self) -> List[str]:
        lines = []
        if self.help_text:
            lines.append(f"# HELP {self.name} {self.help_text}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Metric):
    """A monotonically increasing value, optionally partitioned by labels."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, lock: threading.Lock):
        super().__init__(name, help_text, lock)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, by: float = 1.0, **labels) -> None:
        amount = float(by)
        if amount < 0:
            raise InvalidParameterError(
                f"counter {self.name} cannot decrease (inc by {by})"
            )
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def _render(self) -> List[str]:
        lines = self._header()
        for key in sorted(self._values):
            lines.append(
                f"{self.name}{_render_labels(key)} "
                f"{_format_value(self._values[key])}"
            )
        return lines

    def _snapshot(self) -> Dict:
        return {
            "kind": self.kind,
            "help": self.help_text,
            "values": {_render_labels(key)[1:-1] if key else "": value
                       for key, value in self._values.items()},
        }


class Gauge(_Metric):
    """A value that can go up and down (queue depth, live workers)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, lock: threading.Lock):
        super().__init__(name, help_text, lock)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, by: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + float(by)

    def dec(self, by: float = 1.0, **labels) -> None:
        self.inc(-float(by), **labels)

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    _render = Counter._render
    _snapshot = Counter._snapshot


class Histogram(_Metric):
    """Fixed-bucket distribution with Prometheus cumulative exposition."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(name, help_text, lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise InvalidParameterError(f"histogram {name} needs >= 1 bucket")
        if any(not math.isfinite(b) for b in bounds):
            raise InvalidParameterError(
                f"histogram {name} buckets must be finite (+Inf is implicit)"
            )
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise InvalidParameterError(
                f"histogram {name} buckets must be strictly increasing"
            )
        self.buckets = bounds
        # Per label set: one count per finite bucket plus the +Inf overflow.
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}

    def observe(self, value: float, **labels) -> None:
        amount = float(value)
        key = _label_key(labels)
        index = bisect_left(self.buckets, amount)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * (len(self.buckets) + 1)
                self._counts[key] = counts
                self._sums[key] = 0.0
            counts[index] += 1
            self._sums[key] += amount

    def count(self, **labels) -> int:
        with self._lock:
            counts = self._counts.get(_label_key(labels))
            return sum(counts) if counts else 0

    def sum(self, **labels) -> float:
        with self._lock:
            return self._sums.get(_label_key(labels), 0.0)

    def _render(self) -> List[str]:
        lines = self._header()
        for key in sorted(self._counts):
            counts = self._counts[key]
            cumulative = 0
            for bound, count in zip(self.buckets, counts):
                cumulative += count
                labels = _render_labels(key, [("le", _format_bound(bound))])
                lines.append(f"{self.name}_bucket{labels} {cumulative}")
            cumulative += counts[-1]
            labels = _render_labels(key, [("le", "+Inf")])
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
            base = _render_labels(key)
            lines.append(
                f"{self.name}_sum{base} {_format_value(self._sums[key])}"
            )
            lines.append(f"{self.name}_count{base} {cumulative}")
        return lines

    def _snapshot(self) -> Dict:
        return {
            "kind": self.kind,
            "help": self.help_text,
            "buckets": list(self.buckets),
            "values": {
                _render_labels(key)[1:-1] if key else "": {
                    "counts": list(counts),
                    "sum": self._sums[key],
                    "count": sum(counts),
                }
                for key, counts in self._counts.items()
            },
        }


class MetricsRegistry:
    """Get-or-create registry of named instruments behind one lock.

    ``counter``/``gauge``/``histogram`` are idempotent per name:
    re-requesting an existing metric returns the same instrument, and
    requesting a name under a different kind (or a histogram under
    different buckets) raises
    :class:`~repro.exceptions.InvalidParameterError` instead of silently
    forking state.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: Dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help_text: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls) or type(existing) is not cls:
                raise InvalidParameterError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}, not {cls.kind}"
                )
            buckets = kwargs.get("buckets")
            if buckets is not None and tuple(
                float(b) for b in buckets
            ) != existing.buckets:
                raise InvalidParameterError(
                    f"histogram {name!r} already registered with "
                    f"different buckets"
                )
            return existing
        metric = cls(name, help_text, self._lock, **kwargs)
        with self._lock:
            racer = self._metrics.setdefault(name, metric)
        if racer is not metric and type(racer) is not cls:
            raise InvalidParameterError(
                f"metric {name!r} already registered as {racer.kind}, "
                f"not {cls.kind}"
            )
        return racer

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, buckets=buckets
        )

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def render_prometheus(self) -> str:
        """The full registry in Prometheus text format, sorted by name.

        Rendered under the registry lock, so the result is a consistent
        point-in-time snapshot even while other threads update metrics.
        """
        with self._lock:
            ordered = [self._metrics[name] for name in sorted(self._metrics)]
            lines: List[str] = []
            for metric in ordered:
                # _render reads metric state; we already hold the shared
                # lock, so call the unlocked bodies directly.
                lines.extend(_render_unlocked(metric))
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict:
        """JSON-encodable dump of every metric, for the shutdown flush."""
        with self._lock:
            return {
                name: _snapshot_unlocked(self._metrics[name])
                for name in sorted(self._metrics)
            }


def _render_unlocked(metric: _Metric) -> List[str]:
    return metric._render()


def _snapshot_unlocked(metric: _Metric) -> Dict:
    return metric._snapshot()


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse the text exposition format into ``{sample_key: value}``.

    Sample keys are the exact ``name{labels}`` strings from the exposition
    (labels in rendered order), so two scrapes of the same registry are
    directly comparable key by key. Comment and blank lines are skipped;
    malformed sample lines raise
    :class:`~repro.exceptions.InvalidParameterError`.
    """
    samples: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        head, _, raw_value = stripped.rpartition(" ")
        if not head:
            raise InvalidParameterError(
                f"malformed metrics line {lineno}: {line!r}"
            )
        try:
            value = float(raw_value)
        except ValueError as exc:
            raise InvalidParameterError(
                f"malformed metrics value on line {lineno}: {raw_value!r}"
            ) from exc
        name = head.split("{", 1)[0]
        if not _NAME_RE.match(name):
            raise InvalidParameterError(
                f"malformed metric name on line {lineno}: {name!r}"
            )
        samples[head] = value
    return samples
