"""Structured run telemetry: counters, spans, per-round filter records.

The observability layer generalizes the sweep engine's event log into a
library-wide substrate: one record schema (flat JSON objects with an
``"event"`` key), pluggable sinks (in-memory, JSONL), a zero-overhead
disabled mode, and a roll-up that turns a record stream into the profiling
quantities future performance work is measured against — p50/p95 span
latencies, rounds per second, and the gradient filter's elimination
precision/recall against the ground-truth Byzantine set.
"""

from repro.observability.exporters import (
    JSONLSink,
    MemorySink,
    TelemetrySink,
    count_events,
    load_jsonl,
    summarize_records,
    write_summary_atomic,
)
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    PROMETHEUS_CONTENT_TYPE,
    MetricsRegistry,
    parse_prometheus_text,
)
from repro.observability.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetryLike,
    ensure_telemetry,
)
from repro.observability.tracing import (
    TraceContext,
    derive_span_id,
    derive_trace_id,
)

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "TelemetryLike",
    "ensure_telemetry",
    "TelemetrySink",
    "MemorySink",
    "JSONLSink",
    "load_jsonl",
    "count_events",
    "summarize_records",
    "write_summary_atomic",
    "TraceContext",
    "derive_trace_id",
    "derive_span_id",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "PROMETHEUS_CONTENT_TYPE",
    "parse_prometheus_text",
]
