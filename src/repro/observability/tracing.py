"""Deterministic distributed-trace contexts.

A trace follows one unit of work across every execution layer: the service
accepts a job (root span), hands it to the executor, which runs a
:class:`~repro.experiments.sweep.SweepEngine` whose chunks cross the
process boundary into pool workers, which run the batch or decentralized
engines round by round. Each layer opens child spans, and every telemetry
record emitted inside a span carries the ``(trace_id, span_id,
parent_span_id)`` triple, so the per-process JSONL streams can be
reassembled into one cross-process span tree after the fact (see
:mod:`repro.observability.perf.export`).

Ids follow the repository's seed/cache-key discipline instead of the
usual wall-clock-plus-randomness scheme: both trace and span ids are
SHA-256 digests of canonical JSON key material (the same encoding the
cell cache and job specs hash). Two consequences matter:

- **No randomness in the numeric path.** Attaching a trace perturbs no
  RNG stream and no floating-point work; the bit-identity suites pin
  traced and untraced engine outputs equal.
- **Replays collide on purpose.** A retried chunk re-derives the same
  span ids, so the reconstructor deduplicates re-executions instead of
  growing phantom subtrees.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Optional

from repro.exceptions import InvalidParameterError

__all__ = [
    "TraceContext",
    "derive_trace_id",
    "derive_span_id",
    "TRACE_ID_HEX",
    "SPAN_ID_HEX",
]

#: Hex digits in a trace id (128 bits, matching W3C trace-context width).
TRACE_ID_HEX = 32
#: Hex digits in a span id (64 bits).
SPAN_ID_HEX = 16


def _digest(material) -> str:
    canonical = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def derive_trace_id(*parts) -> str:
    """Derive a 32-hex trace id from JSON-encodable key material.

    Callers pass whatever uniquely names the traced unit of work — the
    service uses ``("job", job_id, spec_hash)`` so a job's trace id is
    reproducible from its manifest alone.
    """
    if not parts:
        raise InvalidParameterError("derive_trace_id requires key material")
    return _digest(["trace", list(parts)])[:TRACE_ID_HEX]


def derive_span_id(
    trace_id: str,
    parent_span_id: Optional[str],
    name: str,
    index: int = 0,
) -> str:
    """Derive a 16-hex span id from its position in the tree.

    ``index`` disambiguates repeated sibling names (the 300 ``"round"``
    spans under one ``"run"`` span get indices 1..300 from the telemetry
    handle's span sequence counter).
    """
    material = ["span", str(trace_id), parent_span_id or "", str(name), int(index)]
    return _digest(material)[:SPAN_ID_HEX]


@dataclass(frozen=True)
class TraceContext:
    """One node's identity in a distributed trace.

    Immutable; :meth:`child` derives new contexts rather than mutating.
    ``parent_span_id`` is ``None`` exactly for the root span.
    """

    trace_id: str
    span_id: str
    parent_span_id: Optional[str] = None

    @classmethod
    def root(cls, trace_id: str, name: str = "root") -> "TraceContext":
        """The root context of a trace (no parent span)."""
        return cls(
            trace_id=str(trace_id),
            span_id=derive_span_id(trace_id, None, name, 0),
        )

    def child(self, name: str, index: int = 0) -> "TraceContext":
        """A child context whose parent is this context's span."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=derive_span_id(self.trace_id, self.span_id, name, index),
            parent_span_id=self.span_id,
        )

    def fields(self) -> Dict[str, str]:
        """The lineage fields a span record carries, omitting null parent."""
        record = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_span_id is not None:
            record["parent_span_id"] = self.parent_span_id
        return record

    def to_payload(self) -> Dict[str, Optional[str]]:
        """JSON-encodable form for crossing the process boundary."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_span_id": self.parent_span_id,
        }

    @classmethod
    def from_payload(cls, payload) -> "TraceContext":
        """Rebuild a context serialized by :meth:`to_payload`."""
        if not isinstance(payload, dict):
            raise InvalidParameterError(
                f"trace payload must be a dict, got {type(payload).__name__}"
            )
        try:
            trace_id = payload["trace_id"]
            span_id = payload["span_id"]
        except KeyError as exc:
            raise InvalidParameterError(
                f"trace payload missing required key {exc.args[0]!r}"
            ) from exc
        parent = payload.get("parent_span_id")
        return cls(
            trace_id=str(trace_id),
            span_id=str(span_id),
            parent_span_id=None if parent is None else str(parent),
        )
