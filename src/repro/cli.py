"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiment <id>``
    Run one of the reconstructed experiments (E1..E15, A1..A4) and print
    the rendered table/series; optionally save the structured result as
    JSON or its table as CSV.
``run``
    One filtered-DGD execution on a generated regression instance, with
    the filter, attack, and system parameters as flags.
``redundancy``
    Measure the 2f-redundancy margin of a generated instance across a
    noise sweep.
``sweep``
    Execute a (filter × attack × f × seed) grid through the batched,
    process-pooled sweep engine and print the per-configuration summary.
``profile``
    Run one configured scenario with telemetry enabled and print the
    roll-up: p50/p95 span latencies, rounds/sec, and the filter's
    elimination precision/recall against the ground-truth Byzantine set.
``bench run|compare|gate|list``
    The continuous-benchmarking harness: execute registered benchmarks
    into schema'd ``BENCH_<name>.json`` records, compare/gate them
    against a baseline store with the deterministic regression policy
    (exit 0 ok / 1 regression / 2 usage), and list the registry.
``trace report``
    Analyze a telemetry/sweep JSONL stream (or a directory of streams)
    into hotspot attribution, rounds/sec trends, and anomaly flags.
``tournament run|leaderboard|report``
    The adversary tournament: run the full filter × attack-bank
    cross-product (round-robin with best-response re-tuning) through the
    cached sweep layer, persist a schema'd ``TOURNAMENT_<name>.json``
    artifact, and render its Elo robustness leaderboard (exit 0 ok /
    1 failed matches / 2 usage, the bench convention).
``serve`` / ``submit`` / ``status``
    The long-lived aggregation service: ``serve`` runs the persistent job
    server (unix socket or TCP) multiplexing run/sweep/bench jobs from
    many clients onto one shared process pool and cell cache; ``submit``
    and ``status`` are its thin clients (exit 0 ok / 1 rejected-or-failed
    job / 2 usage-or-unreachable).
``list``
    Show the registered gradient filters, attacks, and experiments.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Callable, Dict, List, Optional

import numpy as np

from repro import __version__
from repro.aggregators.registry import available_filters
from repro.analysis.metrics import final_error
from repro.analysis.reporting import format_table
from repro.analysis.serialization import experiment_to_csv, save_experiment
from repro.attacks.registry import available_attacks, make_attack
from repro.core.redundancy import measure_redundancy_margin
from repro.problems.linear_regression import make_redundant_regression
from repro.system.runner import run_dgd
from repro.system.topology import available_topologies
from repro import experiments as experiment_module

#: Experiment id → zero-argument runner.
EXPERIMENTS: Dict[str, Callable] = {
    "E1": experiment_module.run_table1,
    "E2": experiment_module.run_trajectories,
    "E3": lambda: experiment_module.run_trajectories(early_window=80),
    "E4": experiment_module.run_exact_algorithm_table,
    "E5": experiment_module.run_noise_sweep,
    "E6": experiment_module.run_fault_sweep,
    "E7": experiment_module.run_learning_eval,
    "E8": experiment_module.run_peer_vs_server,
    "E9": experiment_module.run_aggregator_scaling,
    "E10": experiment_module.run_robustness_matrix,
    "E11": experiment_module.run_replication_design,
    "E12": experiment_module.run_cwtm_dimension_sweep,
    "E13": experiment_module.run_worst_case_certification,
    "E14": experiment_module.run_heterogeneity_sweep,
    "E15": experiment_module.run_communication_costs,
    "E16": experiment_module.run_degraded_network,
    "E17": experiment_module.run_topology_resilience,
    "A1": experiment_module.run_cge_sum_vs_mean,
    "A2": experiment_module.run_step_size_ablation,
    "A3": experiment_module.run_projection_ablation,
    "A4": experiment_module.run_stochastic_step_sizes,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-Tolerance in Distributed Optimization: The Case of "
        "Redundancy (PODC 2020) — reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    experiment = commands.add_parser(
        "experiment", help="run a reconstructed table/figure experiment"
    )
    experiment.add_argument("id", choices=sorted(EXPERIMENTS), help="experiment id")
    experiment.add_argument("--json", metavar="PATH", help="save the structured result")
    experiment.add_argument("--csv", metavar="PATH", help="save the table rows as CSV")

    run = commands.add_parser("run", help="one filtered-DGD execution")
    run.add_argument("--n", type=int, default=6, help="number of agents")
    run.add_argument("--d", type=int, default=2, help="problem dimension")
    run.add_argument("--f", type=int, default=1, help="fault bound")
    run.add_argument("--noise", type=float, default=0.02, help="observation noise std")
    run.add_argument(
        "--filter", default="cge", choices=available_filters(), dest="filter_name"
    )
    run.add_argument(
        "--attack", default="gradient-reverse",
        choices=[a for a in available_attacks() if a not in ("constant-bias", "cost-substitution", "optimal-direction", "intermittent")],
    )
    run.add_argument("--iterations", type=int, default=500)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="stream per-round telemetry records (JSONL) to PATH",
    )
    decentralized = run.add_argument_group(
        "decentralized architecture",
        "run the sparse-topology decentralized engine (per-neighborhood "
        "Byzantine filtering; needs deg_i >= 2 f_i) instead of the "
        "server-based runner; --drop-prob/--delay/--delay-prob/"
        "--corrupt-prob/--corrupt-mode then act per directed edge",
    )
    decentralized.add_argument(
        "--architecture", choices=["server", "decentralized"],
        default="server",
        help="system architecture (default: server-based)",
    )
    decentralized.add_argument(
        "--topology", default="ring", choices=available_topologies(),
        help="communication graph for --architecture decentralized",
    )
    decentralized.add_argument(
        "--hops", type=int, default=1,
        help="ring neighbor radius (ring topology only, default 1)",
    )
    decentralized.add_argument(
        "--degree", type=int, default=6,
        help="random-regular degree (random-regular topology only)",
    )
    decentralized.add_argument(
        "--topology-seed", type=int, default=0,
        help="seed of the (deterministic) graph generator",
    )
    decentralized.add_argument(
        "--aggregation", default="cwtm", choices=["cwtm", "cge", "mean"],
        help="per-neighborhood aggregation rule (default cwtm)",
    )

    degraded = run.add_argument_group(
        "degraded network",
        "partially-synchronous fault injection; any of these flags switches "
        "the execution to the self-healing runtime (deterministic in "
        "--fault-seed)",
    )
    degraded.add_argument(
        "--drop-prob", type=float, default=0.0,
        help="per-message loss probability on every agent link",
    )
    degraded.add_argument(
        "--delay", type=int, default=0, metavar="B",
        help="partial-synchrony bound: messages may arrive up to B rounds late",
    )
    degraded.add_argument(
        "--delay-prob", type=float, default=None,
        help="per-message delay probability (defaults to 0.25 when --delay > 0)",
    )
    degraded.add_argument(
        "--duplicate-prob", type=float, default=0.0,
        help="per-message duplication probability",
    )
    degraded.add_argument(
        "--corrupt-prob", type=float, default=0.0,
        help="per-gradient payload-corruption probability",
    )
    degraded.add_argument(
        "--corrupt-mode", default="nan", choices=["nan", "inf", "bitflip"],
        help="payload corruption mode",
    )
    degraded.add_argument(
        "--stragglers", type=int, default=0, metavar="K",
        help="make the K highest-id honest agents stragglers",
    )
    degraded.add_argument(
        "--straggle-every", type=int, default=4,
        help="straggler cadence: extra latency every Nth round",
    )
    degraded.add_argument(
        "--straggle-delay", type=int, default=1,
        help="extra rounds of latency when the straggler schedule fires",
    )
    degraded.add_argument(
        "--crash-recover", default=None, metavar="ID:CRASH[:RECOVER]",
        help="agent ID goes down at round CRASH and returns at RECOVER "
        "(omit RECOVER for a permanent endpoint crash)",
    )
    degraded.add_argument(
        "--fault-seed", type=int, default=0,
        help="determinism seed of every network fault draw",
    )
    degraded.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="checkpoint the run state atomically to PATH; an existing "
        "compatible checkpoint is resumed bit-identically",
    )
    degraded.add_argument(
        "--checkpoint-every", type=int, default=25, metavar="ROUNDS",
        help="checkpoint cadence (default 25)",
    )

    profile = commands.add_parser(
        "profile",
        help="run one scenario with telemetry and print the profiling roll-up",
    )
    profile.add_argument("--n", type=int, default=6, help="number of agents")
    profile.add_argument("--d", type=int, default=2, help="problem dimension")
    profile.add_argument("--f", type=int, default=1, help="fault bound")
    profile.add_argument("--noise", type=float, default=0.02,
                         help="observation noise std")
    profile.add_argument(
        "--filter", default="cge", choices=available_filters(), dest="filter_name"
    )
    profile.add_argument(
        "--attack", default="gradient-reverse",
        choices=[a for a in available_attacks() if a not in ("constant-bias", "cost-substitution", "optimal-direction", "intermittent")],
    )
    profile.add_argument("--iterations", type=int, default=500)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--runs", type=int, default=1,
        help="replicate runs; >1 profiles the vectorized batch engine "
        "(seeds derived from --seed)",
    )
    profile.add_argument(
        "--array-backend", default="numpy", dest="array_backend",
        help="array backend for the batch engine's hot kernels "
        "(numpy/torch/numba; requires --runs > 1)",
    )
    profile.add_argument(
        "--dtype", default="float64", choices=["float64", "float32"],
        help="batch-engine working precision (requires --runs > 1)",
    )
    profile.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="also keep the raw JSONL record stream at PATH",
    )
    profile.add_argument(
        "--json", metavar="PATH", default=None,
        help="save the roll-up summary (checksummed atomic write)",
    )

    redundancy = commands.add_parser(
        "redundancy", help="measure the redundancy margin over a noise sweep"
    )
    redundancy.add_argument("--n", type=int, default=6)
    redundancy.add_argument("--d", type=int, default=2)
    redundancy.add_argument("--f", type=int, default=1)
    redundancy.add_argument(
        "--noise", type=float, nargs="+", default=[0.0, 0.01, 0.05, 0.1]
    )
    redundancy.add_argument("--seed", type=int, default=0)

    sweep = commands.add_parser(
        "sweep", help="run a (filter x attack x f x seed) grid via the sweep engine"
    )
    sweep.add_argument(
        "--filters", nargs="+", default=["cge", "cwtm", "median", "average"],
        choices=available_filters(),
    )
    sweep.add_argument(
        "--attacks", nargs="+",
        default=["gradient-reverse", "random", "sign-flip", "zero"],
        choices=available_attacks(),
    )
    sweep.add_argument("--fault-counts", type=int, nargs="+", default=[1])
    sweep.add_argument("--num-seeds", type=int, default=10)
    sweep.add_argument("--master-seed", type=int, default=20200803)
    sweep.add_argument("--n", type=int, default=6)
    sweep.add_argument("--d", type=int, default=2)
    sweep.add_argument("--noise", type=float, default=0.0)
    sweep.add_argument("--iterations", type=int, default=300)
    sweep.add_argument(
        "--sequential", action="store_true",
        help="disable the process pool (single-process execution)",
    )
    sweep.add_argument("--workers", type=int, default=None, help="pool size")
    sweep.add_argument(
        "--backend", choices=["batch", "sequential"], default="batch",
        help="per-cell execution engine (numerically identical)",
    )
    sweep.add_argument(
        "--array-backend", default="numpy", dest="array_backend",
        help="array backend for the batch engine's hot kernels "
        "(numpy keeps bit-identity; torch/numba are tolerance-class "
        "extras with their own cache namespace)",
    )
    sweep.add_argument(
        "--dtype", default="float64", choices=["float64", "float32"],
        help="batch-engine working precision (float32 gets its own "
        "cache namespace)",
    )
    sweep.add_argument(
        "--cache-dir", default=None,
        help="directory for the on-disk trace cache (off by default)",
    )
    sweep.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-chunk wall-clock budget; hung chunks are retried in a "
        "fresh pool (unlimited by default)",
    )
    sweep.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="failed attempts allowed per chunk before quarantine (default 2)",
    )
    sweep.add_argument(
        "--events", default=None, metavar="PATH",
        help="write a JSONL event log (retries, cache hits/misses, "
        "quarantines, per-chunk wall time) and print its summary",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted grid from its cache: recompute only "
        "cells without a valid cache entry (requires --cache-dir)",
    )
    sweep.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="write per-round run telemetry, one JSONL stream per "
        "(f, filter, attack) group, into DIR (same event schema as --events)",
    )

    bench = commands.add_parser(
        "bench",
        help="continuous benchmarking: run, compare, and gate BENCH_*.json records",
    )
    bench_commands = bench.add_subparsers(dest="bench_command", required=True)

    def _add_selection(sub):
        sub.add_argument("names", nargs="*", help="registered bench names")
        sub.add_argument("--all", action="store_true", dest="select_all",
                         help="select every registered bench")
        sub.add_argument("--tag", default=None,
                         help="select benches carrying this tag (e.g. smoke, paper)")

    bench_run = bench_commands.add_parser(
        "run", help="execute benches and write schema'd BENCH_<name>.json records"
    )
    _add_selection(bench_run)
    bench_run.add_argument("--repeats", type=int, default=3,
                           help="timing repeats per bench (headline is min-of-k)")
    bench_run.add_argument("--output-dir", default=".",
                           help="where BENCH_<name>.json records land (default .)")
    bench_run.add_argument("--telemetry-dir", default=None, metavar="DIR",
                           help="also keep each repeat's raw telemetry JSONL stream")
    bench_run.add_argument("--no-memory", action="store_true",
                           help="disable tracemalloc peak-memory tracking")

    bench_compare = bench_commands.add_parser(
        "compare",
        help="compare existing BENCH_*.json records against a baseline store",
    )
    _add_selection(bench_compare)
    bench_compare.add_argument("--baseline-dir", default="benchmarks/baselines")
    bench_compare.add_argument("--current-dir", default=".",
                               help="directory holding the candidate records")
    _add_policy_flags(bench_compare)

    bench_gate = bench_commands.add_parser(
        "gate",
        help="run benches fresh and fail (exit 1) on perf/quality regression",
    )
    _add_selection(bench_gate)
    bench_gate.add_argument("--baseline-dir", default="benchmarks/baselines")
    bench_gate.add_argument("--repeats", type=int, default=3)
    bench_gate.add_argument("--output-dir", default=None,
                            help="also persist the fresh records here")
    bench_gate.add_argument("--strict-missing", action="store_true",
                            help="treat a bench without a baseline as a failure")
    _add_policy_flags(bench_gate)

    bench_list = bench_commands.add_parser(
        "list", help="show the registered benches, their tags and workloads"
    )
    bench_list.add_argument("--tag", default=None)

    tournament = commands.add_parser(
        "tournament",
        help="adversary tournament: full filter x attack cross-product "
        "with an Elo robustness leaderboard",
    )
    tournament_commands = tournament.add_subparsers(
        dest="tournament_command", required=True
    )
    tournament_run = tournament_commands.add_parser(
        "run",
        help="run the cross-product through the cached sweep layer and "
        "write TOURNAMENT_<name>.json",
    )
    tournament_run.add_argument("--name", default="tournament",
                                help="artifact name (TOURNAMENT_<name>.json)")
    tournament_run.add_argument(
        "--filters", nargs="+", default=None, choices=available_filters(),
        help="roster (default: every registered filter)",
    )
    tournament_run.add_argument(
        "--attacks", nargs="+", default=None, metavar="NAME",
        help="subset of the default attack bank by bank name "
        "(default: the whole bank)",
    )
    tournament_run.add_argument("--rounds", type=int, default=2,
                                help="tournament rounds (best-response "
                                "re-tuning happens between rounds)")
    tournament_run.add_argument("--num-seeds", type=int, default=5)
    tournament_run.add_argument("--master-seed", type=int, default=20200803)
    tournament_run.add_argument("--n", type=int, default=8)
    tournament_run.add_argument("--d", type=int, default=2)
    tournament_run.add_argument("--f", type=int, default=1)
    tournament_run.add_argument("--noise", type=float, default=0.02)
    tournament_run.add_argument("--iterations", type=int, default=300)
    tournament_run.add_argument("--win-threshold", type=float, default=0.1,
                                help="final distance to x_H at or below "
                                "which the filter wins")
    tournament_run.add_argument("--loss-threshold", type=float, default=0.4,
                                help="final distance at or above which the "
                                "attack wins")
    tournament_run.add_argument(
        "--sequential", action="store_true",
        help="disable the process pool (single-process execution)",
    )
    tournament_run.add_argument("--workers", type=int, default=None,
                                help="pool size")
    tournament_run.add_argument(
        "--cache-dir", default=None,
        help="directory for the per-match cache (off by default; required "
        "for --resume)",
    )
    tournament_run.add_argument(
        "--events", default=None, metavar="PATH",
        help="write a JSONL event log (cache hits/misses, retunes, "
        "quarantines) and print its summary",
    )
    tournament_run.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted tournament from its match cache: "
        "finished matches are served as cache hits (requires --cache-dir)",
    )
    tournament_run.add_argument("--out-dir", default=".",
                                help="where the artifact lands (default .)")

    tournament_board = tournament_commands.add_parser(
        "leaderboard", help="render the Elo leaderboard of an artifact"
    )
    tournament_board.add_argument("path", help="a TOURNAMENT_*.json artifact")

    tournament_report = tournament_commands.add_parser(
        "report",
        help="full report: leaderboard, per-round re-tunes, and the "
        "most decisive matches",
    )
    tournament_report.add_argument("path", help="a TOURNAMENT_*.json artifact")

    trace = commands.add_parser(
        "trace", help="analyze telemetry/sweep JSONL streams"
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)
    trace_report = trace_commands.add_parser(
        "report",
        help="hotspots, rounds/sec trend, and anomaly flags for a stream",
    )
    trace_report.add_argument("path",
                              help="a telemetry JSONL file, or a directory of them")
    trace_report.add_argument("--json", metavar="PATH", default=None,
                              help="save the structured report(s) (atomic write)")
    trace_report.add_argument("--windows", type=int, default=8,
                              help="windows for the rounds/sec trend (default 8)")
    trace_report.add_argument("--fail-on-anomaly", action="store_true",
                              help="exit 1 when any stream carries anomaly flags")

    trace_export = trace_commands.add_parser(
        "export",
        help="export traced spans from JSONL stream(s) to a viewer format",
    )
    trace_export.add_argument("path",
                              help="a telemetry JSONL file, or a directory "
                              "of them (e.g. a service job directory)")
    trace_export.add_argument("--format", choices=["chrome-trace"],
                              default="chrome-trace",
                              help="output format (chrome://tracing / "
                              "Perfetto JSON)")
    trace_export.add_argument("--output", "-o", metavar="PATH",
                              default="trace.json",
                              help="where to write the artifact "
                              "(default trace.json)")

    trace_flame = trace_commands.add_parser(
        "flame",
        help="render the reconstructed cross-process span tree as a "
        "text flame view",
    )
    trace_flame.add_argument("path",
                             help="a telemetry JSONL file, or a directory "
                             "of them")

    serve = commands.add_parser(
        "serve",
        help="long-lived aggregation service: accept run/sweep/bench jobs "
        "over HTTP or a unix socket onto one shared pool and cell cache",
    )
    serve.add_argument("--state-dir", required=True, metavar="DIR",
                       help="durable root: job manifests, event streams, "
                       "results, and the shared cell cache live here")
    serve.add_argument("--socket", default=None, metavar="PATH",
                       help="unix socket to listen on "
                       "(default: <state-dir>/repro.sock)")
    serve.add_argument("--host", default=None,
                       help="TCP host to bind (needs --port)")
    serve.add_argument("--port", type=int, default=None,
                       help="TCP port to bind (needs --host)")
    serve.add_argument("--job-slots", type=int, default=2, metavar="N",
                       help="jobs executed concurrently (default 2)")
    serve.add_argument("--pool-workers", type=int, default=None, metavar="N",
                       help="worker processes in the shared pool")
    serve.add_argument("--max-queue", type=int, default=64, metavar="N",
                       help="admission bound on queued jobs (default 64)")
    serve.add_argument("--per-client", type=int, default=8, metavar="N",
                       help="jobs one client may have queued or running "
                       "(default 8)")
    serve.add_argument("--sequential", action="store_true",
                       help="run jobs without a process pool")
    serve.add_argument("--backend", choices=["batch", "sequential"],
                       default="batch",
                       help="per-cell execution engine for sweep jobs")
    serve.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS", help="per-chunk wall-clock budget")
    serve.add_argument("--retries", type=int, default=2, metavar="N",
                       help="failed attempts per chunk before quarantine")
    serve.add_argument("--job-ttl", type=float, default=None,
                       metavar="SECONDS",
                       help="GC terminal jobs (manifest, events, result) "
                       "older than this; queued/running jobs are never "
                       "touched (default: keep forever)")

    submit = commands.add_parser(
        "submit", help="submit a job to a running `repro serve`"
    )
    _add_service_endpoint_flags(submit)
    submit.add_argument("--client", default="anonymous",
                        help="client name for per-tenant admission caps")
    submit.add_argument("--priority", type=int, default=0,
                        help="higher runs first (default 0)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes and print the "
                        "result summary (exit 1 if the job failed)")
    submit.add_argument("--wait-timeout", type=float, default=600.0,
                        metavar="SECONDS",
                        help="give up waiting after this long (default 600)")
    submit_commands = submit.add_subparsers(dest="submit_command",
                                            required=True)

    submit_sweep = submit_commands.add_parser(
        "sweep", help="a (filter x attack x f x seed) grid job"
    )
    submit_sweep.add_argument("--filters", nargs="+",
                              default=["cge", "cwtm", "median", "average"],
                              choices=available_filters())
    submit_sweep.add_argument("--attacks", nargs="+",
                              default=["gradient-reverse", "random",
                                       "sign-flip", "zero"],
                              choices=available_attacks())
    submit_sweep.add_argument("--fault-counts", type=int, nargs="+",
                              default=[1])
    submit_sweep.add_argument("--num-seeds", type=int, default=10)
    submit_sweep.add_argument("--master-seed", type=int, default=20200803)
    submit_sweep.add_argument("--n", type=int, default=6)
    submit_sweep.add_argument("--d", type=int, default=2)
    submit_sweep.add_argument("--noise", type=float, default=0.0)
    submit_sweep.add_argument("--iterations", type=int, default=300)
    submit_sweep.add_argument("--telemetry", action="store_true",
                              help="keep per-round telemetry streams under "
                              "the job directory")

    submit_run = submit_commands.add_parser(
        "run", help="one filtered-DGD execution job"
    )
    submit_run.add_argument("--n", type=int, default=6)
    submit_run.add_argument("--d", type=int, default=2)
    submit_run.add_argument("--f", type=int, default=1)
    submit_run.add_argument("--noise", type=float, default=0.02)
    submit_run.add_argument("--filter", default="cge",
                            choices=available_filters(), dest="filter_name")
    submit_run.add_argument("--attack", default="gradient-reverse",
                            choices=available_attacks())
    submit_run.add_argument("--iterations", type=int, default=500)
    submit_run.add_argument("--seed", type=int, default=0)

    submit_bench = submit_commands.add_parser(
        "bench", help="a registered benchmark job"
    )
    submit_bench.add_argument("name", help="registered benchmark name")
    submit_bench.add_argument("--repeats", type=int, default=1)

    status = commands.add_parser(
        "status", help="inspect jobs on a running `repro serve`"
    )
    _add_service_endpoint_flags(status)
    status.add_argument("job_id", nargs="?", default=None,
                        help="one job id (omit to list every job)")
    status.add_argument("--events", action="store_true",
                        help="print the job's JSONL event stream")
    status.add_argument("--follow", action="store_true",
                        help="with --events: stream until the job finishes")
    status.add_argument("--result", action="store_true",
                        help="print the job's result document (JSON)")

    commands.add_parser("list", help="show registered filters, attacks, experiments")
    return parser


def _add_service_endpoint_flags(sub) -> None:
    """How ``repro submit`` / ``repro status`` find the server."""
    sub.add_argument("--socket", default=None, metavar="PATH",
                     help="the server's unix socket")
    sub.add_argument("--host", default=None, help="the server's TCP host")
    sub.add_argument("--port", type=int, default=None,
                     help="the server's TCP port")


def _add_policy_flags(sub) -> None:
    """The regression-policy knobs shared by ``bench compare`` and ``bench gate``."""
    sub.add_argument("--rel-tol", type=float, default=None, metavar="FRAC",
                     help="tolerated fractional wall-time slowdown (default 0.5)")
    sub.add_argument("--noise-floor", type=float, default=None, metavar="SECONDS",
                     help="timings under this are never compared (default 0.005)")
    sub.add_argument("--metric-tol", type=float, default=None, metavar="FRAC",
                     help="tolerated relative drift of quality metrics (default 0.01)")


def _command_experiment(args) -> int:
    result = EXPERIMENTS[args.id]()
    print(result.render())
    if args.json:
        path = save_experiment(result, args.json)
        print(f"saved JSON to {path}")
    if args.csv:
        from pathlib import Path

        Path(args.csv).write_text(experiment_to_csv(result))
        print(f"saved CSV to {args.csv}")
    return 0


def _parse_crash_recover(spec: str):
    """Parse ``ID:CRASH[:RECOVER]`` into ``(id, crash, recover_or_None)``."""
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ValueError(f"--crash-recover expects ID:CRASH[:RECOVER], got {spec!r}")
    values = [int(p) for p in parts]
    return values[0], values[1], values[2] if len(values) == 3 else None


def _build_fault_model(args, n: int):
    """Translate the degraded-network flags into a ``NetworkFaultModel``.

    Returns ``None`` when no fault flag is set (pure synchronous run).
    """
    from repro.system.netfaults import FaultProfile, NetworkFaultModel

    delay_prob = args.delay_prob
    if delay_prob is None:
        delay_prob = 0.25 if args.delay > 0 else 0.0
    base = FaultProfile(
        drop_prob=args.drop_prob,
        delay_prob=delay_prob if args.delay > 0 else 0.0,
        max_delay=args.delay,
        duplicate_prob=args.duplicate_prob,
        corrupt_prob=args.corrupt_prob,
        corrupt_mode=args.corrupt_mode,
    )
    profiles = {}
    if not base.is_null:
        profiles.update({i: base for i in range(n)})
    if args.stragglers:
        if args.stragglers < 0 or args.stragglers > n - args.f:
            raise ValueError(
                f"--stragglers must lie in [0, {n - args.f}] "
                f"(honest agents), got {args.stragglers}"
            )
        from dataclasses import replace

        for agent_id in range(n - args.stragglers, n):
            profiles[agent_id] = replace(
                profiles.get(agent_id, base),
                straggle_every=args.straggle_every,
                straggle_delay=args.straggle_delay,
            )
    if args.crash_recover:
        agent_id, crash, recover = _parse_crash_recover(args.crash_recover)
        if agent_id < 0 or agent_id >= n:
            raise ValueError(f"--crash-recover agent id {agent_id} out of range")
        from dataclasses import replace

        profiles[agent_id] = replace(
            profiles.get(agent_id, base), crash_round=crash, recover_round=recover
        )
    if not profiles:
        return None
    return NetworkFaultModel(profiles=profiles, seed=args.fault_seed)


def _command_run_decentralized(args) -> int:
    """``repro run --architecture decentralized``: sparse-topology DGD."""
    from repro.exceptions import ReproError, TopologyInfeasibilityError
    from repro.experiments.topology_resilience import (
        _spread_faulty,
        full_local_rank_costs,
    )
    from repro.system.decentralized import run_decentralized_dgd
    from repro.system.netfaults import LinkFaultModel, LinkFaultProfile
    from repro.system.topology import make_topology

    unsupported = [
        flag for flag, value in (
            ("--duplicate-prob", args.duplicate_prob),
            ("--stragglers", args.stragglers),
            ("--crash-recover", args.crash_recover),
            ("--checkpoint", args.checkpoint),
        ) if value
    ]
    if unsupported:
        print(
            f"error: {', '.join(unsupported)} not supported with "
            "--architecture decentralized (link faults cover "
            "drops/delay/corruption; churn/partitions have no flag yet)",
            file=sys.stderr,
        )
        return 2
    params = {}
    if args.topology == "ring":
        params["hops"] = args.hops
    elif args.topology == "random-regular":
        params["degree"] = args.degree
    try:
        topology = make_topology(
            args.topology, args.n, seed=args.topology_seed, **params
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    costs, x_star = full_local_rank_costs(args.n, args.d, instance_seed=args.seed)
    faulty = _spread_faulty(args.n, args.f)
    behavior = make_attack(args.attack) if faulty else None
    delay_prob = args.delay_prob
    if delay_prob is None:
        delay_prob = 0.25 if args.delay > 0 else 0.0
    profile = LinkFaultProfile(
        drop_prob=args.drop_prob,
        delay_prob=delay_prob if args.delay > 0 else 0.0,
        max_delay=args.delay,
        corrupt_prob=args.corrupt_prob,
        corrupt_mode=args.corrupt_mode,
    )
    link_faults = (
        None if profile.is_null
        else LinkFaultModel(default_profile=profile, seed=args.fault_seed)
    )
    telemetry = None
    if args.telemetry:
        from repro.observability import Telemetry

        telemetry = Telemetry(
            args.telemetry, byzantine_ids=tuple(faulty), reference_point=x_star
        )
    try:
        result = run_decentralized_dgd(
            costs,
            topology,
            aggregation=args.aggregation,
            faulty_ids=faulty,
            behavior=behavior,
            iterations=args.iterations,
            seed=args.seed,
            link_faults=link_faults,
            telemetry=telemetry,
        )
    except TopologyInfeasibilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(
            "hint: raise the graph's connectivity (--hops / --degree / a "
            "denser --topology) or lower --f until deg_i >= 2 f_i holds",
            file=sys.stderr,
        )
        return 2
    distances = result.distances_to(x_star)[result.honest_ids]
    counters = result.counters
    rows = [
        ["topology", f"{args.topology} "
         + (f"{params}" if params else "(default params)")],
        ["aggregation", args.aggregation],
        ["attack", args.attack if faulty else "(none)"],
        ["agents / edges", f"{topology.n} / {topology.num_edges}"],
        ["degree (min..max)", f"{topology.min_degree}..{topology.max_degree}"],
        ["Byzantine (spread)", len(faulty)],
        ["max honest dist to x*", float(np.max(distances))],
        ["mean honest dist to x*", float(np.mean(distances))],
        ["dropped / delayed / corrupted edges",
         f"{counters['dropped_edges']} / {counters['delayed_edges']} / "
         f"{counters['corrupted_edges']}"],
        ["quarantined / stale reuses",
         f"{counters['quarantined']} / {counters['stale_reuses']}"],
        ["degraded agent-rounds", counters["degraded_agent_rounds"]],
        ["wall time (s)", round(result.wall_time, 3)],
    ]
    print(format_table(
        ["quantity", "value"], rows,
        title=(f"decentralized DGD on n={args.n}, f={args.f}, d={args.d}, "
               f"T={args.iterations}"),
    ))
    if telemetry is not None:
        telemetry.close()
        print(f"telemetry -> {args.telemetry} ({telemetry.emitted} records)")
    return 0


def _command_run(args) -> int:
    from repro.exceptions import InvalidParameterError

    if args.architecture == "decentralized":
        return _command_run_decentralized(args)
    instance = make_redundant_regression(
        n=args.n, d=args.d, f=args.f, noise_std=args.noise, seed=args.seed
    )
    faulty = tuple(range(args.f))
    honest = [i for i in range(args.n) if i not in faulty]
    x_H = instance.honest_minimizer(honest)
    behavior = make_attack(args.attack) if faulty else None
    try:
        fault_model = _build_fault_model(args, args.n)
        if args.checkpoint_every <= 0:
            raise ValueError(
                f"--checkpoint-every must be positive, got {args.checkpoint_every}"
            )
    except (ValueError, InvalidParameterError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    telemetry = None
    if args.telemetry:
        from repro.observability import Telemetry

        telemetry = Telemetry(
            args.telemetry, byzantine_ids=faulty, reference_point=x_H
        )
    trace = run_dgd(
        instance.costs,
        behavior,
        gradient_filter=args.filter_name,
        faulty_ids=faulty,
        iterations=args.iterations,
        seed=args.seed,
        telemetry=telemetry,
        fault_model=fault_model,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
    )
    margin = measure_redundancy_margin(instance.costs, args.f).margin
    rows = [
        ["filter", args.filter_name],
        ["attack", args.attack if faulty else "(none)"],
        ["honest minimizer x_H", np.round(x_H, 4)],
        ["output x_out", np.round(trace.final_estimate, 4)],
        ["dist(x_H, x_out)", final_error(trace, x_H)],
        ["redundancy margin eps", margin],
        ["messages delivered", trace.messages_delivered],
        ["messages dropped", trace.messages_dropped],
        ["wall time (s)", round(trace.wall_time, 3)],
    ]
    resilience = trace.extra.get("resilience")
    if resilience is not None:
        rows += [
            ["stale reuses", resilience["stale_reuses"]],
            ["stalled rounds", resilience["stalled_rounds"]],
            ["quarantined payloads", resilience["quarantined_payloads"]],
            ["suspected agents", resilience["suspected"] or "(none)"],
            ["reinstatements", resilience["reinstatements"]],
            ["resumed from round", trace.extra.get("resumed_from_round", 0)],
        ]
    print(format_table(["quantity", "value"], rows,
                       title=f"filtered DGD on n={args.n}, f={args.f}, d={args.d}"))
    if trace.extra.get("traffic") is not None:
        from repro.analysis.reporting import format_traffic_summary

        print(format_traffic_summary(trace.extra["traffic"]))
    if args.checkpoint:
        print(f"checkpoint -> {args.checkpoint}")
    if telemetry is not None:
        telemetry.close()
        print(f"telemetry -> {args.telemetry} ({telemetry.emitted} records)")
    return 0


def _format_metric(value, digits: int = 3) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def _render_telemetry_summary(summary: dict, title: str) -> str:
    """Render a :meth:`Telemetry.summary` roll-up as aligned tables."""
    blocks = []
    spans = summary.get("spans") or {}
    if spans:
        rows = [
            [
                name,
                stats["count"],
                _format_metric(stats["p50"] * 1e3),
                _format_metric(stats["p95"] * 1e3),
                _format_metric(stats["total"]),
            ]
            for name, stats in sorted(spans.items())
        ]
        blocks.append(format_table(
            ["span", "count", "p50 (ms)", "p95 (ms)", "total (s)"], rows,
            title=title,
        ))
    elimination = summary.get("elimination") or {}
    rows = [
        ["rounds recorded", summary.get("rounds", 0)],
        ["rounds / sec", _format_metric(summary.get("rounds_per_sec"), 1)],
        ["eliminated Byzantine (TP)", elimination.get("true_positives", 0)],
        ["eliminated honest (FP)", elimination.get("false_positives", 0)],
        ["surviving Byzantine (FN)", elimination.get("false_negatives", 0)],
        ["elimination precision", _format_metric(elimination.get("precision"))],
        ["elimination recall", _format_metric(elimination.get("recall"))],
    ]
    blocks.append(format_table(["quantity", "value"], rows, title="roll-up"))
    return "\n".join(blocks)


def _command_profile(args) -> int:
    from repro.observability import (
        JSONLSink,
        MemorySink,
        Telemetry,
        write_summary_atomic,
    )
    from repro.system.batch import run_dgd_batch
    from repro.utils.rng import derive_seed, spawn_rngs

    if args.runs <= 0:
        print("error: --runs must be positive", file=sys.stderr)
        return 2
    if args.runs == 1 and (args.array_backend != "numpy" or args.dtype != "float64"):
        print(
            "error: --array-backend/--dtype profile the batch engine; "
            "use --runs > 1",
            file=sys.stderr,
        )
        return 2
    instance = make_redundant_regression(
        n=args.n, d=args.d, f=args.f, noise_std=args.noise, seed=args.seed
    )
    faulty = tuple(range(args.f))
    honest = [i for i in range(args.n) if i not in faulty]
    x_H = instance.honest_minimizer(honest)
    behavior = make_attack(args.attack) if faulty else None
    sinks = [MemorySink()]
    if args.telemetry:
        sinks.append(JSONLSink(args.telemetry))
    telemetry = Telemetry(sinks, byzantine_ids=faulty, reference_point=x_H)
    if args.runs == 1:
        run_dgd(
            instance.costs,
            behavior,
            gradient_filter=args.filter_name,
            faulty_ids=faulty,
            iterations=args.iterations,
            seed=args.seed,
            telemetry=telemetry,
        )
    else:
        seeds = [derive_seed(rng) for rng in spawn_rngs(args.seed, args.runs)]
        run_dgd_batch(
            instance.costs,
            behavior,
            seeds=seeds,
            gradient_filter=args.filter_name,
            faulty_ids=faulty,
            iterations=args.iterations,
            telemetry=telemetry,
            backend=args.array_backend,
            dtype=None if args.dtype == "float64" else args.dtype,
        )
    summary = telemetry.summary()
    telemetry.close()
    engine = "run_dgd" if args.runs == 1 else f"run_dgd_batch x{args.runs}"
    print(_render_telemetry_summary(
        summary,
        title=(f"profile: {engine}, filter={args.filter_name}, "
               f"attack={args.attack if faulty else '(none)'}, "
               f"n={args.n}, f={args.f}, d={args.d}, T={args.iterations}"),
    ))
    if args.telemetry:
        print(f"telemetry -> {args.telemetry} ({telemetry.emitted} records)")
    if args.json:
        write_summary_atomic(args.json, summary)
        print(f"saved summary to {args.json}")
    return 0


def _command_redundancy(args) -> int:
    rows = []
    for sigma in args.noise:
        instance = make_redundant_regression(
            n=args.n, d=args.d, f=args.f, noise_std=sigma, seed=args.seed
        )
        report = measure_redundancy_margin(instance.costs, args.f)
        rows.append([sigma, report.margin, "yes" if report.holds else "no"])
    print(format_table(
        ["noise std", "margin eps*", "2f-redundant"], rows,
        title=f"redundancy margin (n={args.n}, f={args.f}, d={args.d})",
    ))
    return 0


def _command_sweep(args) -> int:
    from repro.exceptions import BackendUnavailableError, InvalidParameterError
    from repro.experiments.sweep import RegressionGrid, SweepEngine, summarize_grid

    if args.resume and args.cache_dir is None:
        print("error: --resume requires --cache-dir (nothing to resume from)",
              file=sys.stderr)
        return 2
    grid = RegressionGrid(
        filters=tuple(args.filters),
        attacks=tuple(args.attacks),
        fault_counts=tuple(args.fault_counts),
        num_seeds=args.num_seeds,
        master_seed=args.master_seed,
        n=args.n,
        d=args.d,
        noise_std=args.noise,
        iterations=args.iterations,
    )
    try:
        engine = SweepEngine(
            parallel=not args.sequential,
            max_workers=args.workers,
            cache_dir=args.cache_dir,
            backend=args.backend,
            timeout=args.timeout,
            retries=args.retries,
            events=args.events,
            telemetry_dir=args.telemetry,
            array_backend=args.array_backend,
            dtype=args.dtype,
        )
    except (InvalidParameterError, BackendUnavailableError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cells = engine.resume(grid) if args.resume else engine.run_regression_grid(grid)
    print(summarize_grid(cells).render())
    cached = sum(cell.cached for cell in cells)
    failed = sum(cell.failed for cell in cells)
    quarantined = sum(cell.quarantined for cell in cells)
    line = f"{len(cells)} cells ({cached} from cache)"
    if failed:
        line += f", {failed} failed ({quarantined} quarantined)"
    print(line)
    if args.events:
        counts = engine.events.counts()
        rendered = ", ".join(f"{k}={counts[k]}" for k in sorted(counts))
        print(f"events -> {args.events}: {rendered}")
    if args.telemetry:
        print(f"telemetry -> {args.telemetry}/")
    return 1 if failed else 0


def _select_benches(args) -> List[str]:
    """Resolve the names/--all/--tag selection flags against the registry.

    Raises :class:`~repro.exceptions.InvalidParameterError` for an empty
    or unknown selection (mapped to exit code 2 by the handlers).
    """
    from repro.exceptions import InvalidParameterError
    from repro.observability.perf import (
        available_benches,
        get_bench,
        load_default_workloads,
    )

    load_default_workloads()
    tag = getattr(args, "tag", None)
    if args.names and (args.select_all or tag):
        raise InvalidParameterError(
            "give bench names OR --all/--tag, not both"
        )
    if args.names:
        for name in args.names:
            get_bench(name)  # raises with the known-name list
        return list(args.names)
    if args.select_all:
        return available_benches()
    if tag:
        names = available_benches(tag=tag)
        if not names:
            raise InvalidParameterError(f"no benches carry tag {tag!r}")
        return names
    raise InvalidParameterError(
        "no benches selected (give names, --all, or --tag)"
    )


def _build_policy(args):
    from repro.observability.perf import RegressionPolicy

    overrides = {}
    if args.rel_tol is not None:
        overrides["rel_tol"] = args.rel_tol
    if args.noise_floor is not None:
        overrides["noise_floor"] = args.noise_floor
    if args.metric_tol is not None:
        overrides["metric_rel_tol"] = args.metric_tol
    return RegressionPolicy(**overrides)


def _command_bench(args) -> int:
    from repro.exceptions import BenchSchemaError, InvalidParameterError, ReproError
    from repro.observability.perf import (
        BaselineStore,
        available_benches,
        bench_output_path,
        compare_payloads,
        format_comparisons,
        get_bench,
        load_bench_payload,
        load_default_workloads,
        run_registered,
        worst_verdict,
    )

    if args.bench_command == "list":
        load_default_workloads()
        rows = []
        for name in available_benches(tag=args.tag):
            spec = get_bench(name)
            rows.append([
                name,
                ",".join(spec.tags) or "-",
                spec.description or "-",
            ])
        if not rows:
            print(f"error: no benches carry tag {args.tag!r}", file=sys.stderr)
            return 2
        print(format_table(["bench", "tags", "description"], rows,
                           title="registered benchmarks"))
        return 0

    try:
        names = _select_benches(args)
    except InvalidParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.bench_command == "run":
        if args.repeats < 1:
            print("error: --repeats must be >= 1", file=sys.stderr)
            return 2
        for name in names:
            outcome = run_registered(
                name,
                repeats=args.repeats,
                memory=not args.no_memory,
                output_dir=args.output_dir,
                telemetry_dir=args.telemetry_dir,
            )
            timings = outcome.result.timings
            print(
                f"{name}: best {timings['best_seconds']:.4f}s over "
                f"{args.repeats} repeat(s), peak "
                f"{outcome.result.memory['peak_bytes'] / 1e6:.1f} MB "
                f"-> {outcome.path}"
            )
        return 0

    store = BaselineStore(args.baseline_dir)
    policy = _build_policy(args)

    if args.bench_command == "compare":
        comparisons = []
        for name in names:
            path = bench_output_path(args.current_dir, name)
            try:
                current = load_bench_payload(path)
            except (BenchSchemaError, ReproError, OSError) as exc:
                print(f"error: cannot load candidate {path}: {exc}",
                      file=sys.stderr)
                return 2
            comparisons.append(compare_payloads(current, store.load(name), policy))
        print(format_comparisons(comparisons))
        return 1 if worst_verdict(comparisons) == "regression" else 0

    # gate: run fresh, then compare.
    if args.repeats < 1:
        print("error: --repeats must be >= 1", file=sys.stderr)
        return 2
    comparisons = []
    for name in names:
        outcome = run_registered(
            name, repeats=args.repeats, output_dir=args.output_dir
        )
        comparison = compare_payloads(
            outcome.result.to_payload(), store.load(name), policy
        )
        if comparison.verdict == "new" and args.strict_missing:
            comparison.verdict = "missing"
            comparison.notes.append(
                "strict mode: a gated bench must have a committed baseline"
            )
        comparisons.append(comparison)
    print(format_comparisons(comparisons))
    failed = worst_verdict(comparisons) in ("regression", "missing")
    print("gate:", "FAIL" if failed else "ok",
          f"({len(comparisons)} bench(es) against {store.directory})")
    return 1 if failed else 0


def _format_leaderboard(payload) -> str:
    """Render an artifact's leaderboard as an aligned table."""
    rows = []
    for row in payload["leaderboard"]["all"]:
        rows.append([
            row["rank"],
            row["player"],
            row["role"],
            f"{row['rating_mean']:.1f} ± {row['ci95']:.1f}",
            row["wins"],
            row["losses"],
            row["draws"],
            row["errors"],
        ])
    counts = payload["counts"]
    return format_table(
        ["rank", "player", "role", "elo (mean ± ci95)", "w", "l", "d", "err"],
        rows,
        title=(
            f"robustness leaderboard: {payload['name']} "
            f"({counts['filters']} filters x {counts['attacks']} attacks, "
            f"{counts['seeds']} seeds, {counts['rounds']} round(s), "
            f"{counts['matches']} matches)"
        ),
    )


def _load_artifact_or_none(path: str):
    """Load + validate a tournament artifact; print the error on failure."""
    from repro.exceptions import ReproError
    from repro.experiments.tournament import load_tournament_artifact

    try:
        return load_tournament_artifact(path)
    except (ReproError, OSError) as exc:
        print(f"error: cannot load tournament artifact {path}: {exc}",
              file=sys.stderr)
        return None


def _command_tournament(args) -> int:
    from repro.exceptions import InvalidParameterError
    from repro.experiments.sweep import SweepEngine
    from repro.experiments.tournament import (
        TournamentConfig,
        default_attack_bank,
        run_tournament,
        write_tournament_artifact,
    )

    if args.tournament_command in ("leaderboard", "report"):
        payload = _load_artifact_or_none(args.path)
        if payload is None:
            return 2
        print(_format_leaderboard(payload))
        failed = payload["counts"].get("failed", 0)
        if args.tournament_command == "report":
            for round_doc in payload["rounds"]:
                for retune in round_doc.get("retuned", []):
                    print(
                        f"round {round_doc['round']}: {retune['attack']} "
                        f"re-tuned against {retune['filter']} -> "
                        f"level {retune['level']} {retune['params']}"
                    )
            scored = [
                m
                for round_doc in payload["rounds"]
                for m in round_doc["matches"]
                if "final_error" in m
            ]
            decisive = sorted(
                scored, key=lambda m: m["final_error"], reverse=True
            )[:5]
            rows = [
                [m["filter"], m["attack"], m["round"], m["seed"],
                 f"{m['final_error']:.4f}", m["outcome"]]
                for m in decisive
            ]
            if rows:
                print(format_table(
                    ["filter", "attack", "round", "seed", "final error",
                     "outcome"],
                    rows, title="most decisive matches",
                ))
        if failed:
            print(f"{failed} failed match(es) recorded in the artifact",
                  file=sys.stderr)
            return 1
        return 0

    # run
    if args.resume and args.cache_dir is None:
        print("error: --resume requires --cache-dir (nothing to resume from)",
              file=sys.stderr)
        return 2
    bank = default_attack_bank()
    if args.attacks is not None:
        by_name = {spec.name: spec for spec in bank}
        unknown = [name for name in args.attacks if name not in by_name]
        if unknown:
            print(
                f"error: unknown bank attack(s) {', '.join(unknown)}; "
                f"available: {', '.join(sorted(by_name))}",
                file=sys.stderr,
            )
            return 2
        bank = tuple(by_name[name] for name in args.attacks)
    try:
        config = TournamentConfig(
            name=args.name,
            filters=tuple(args.filters) if args.filters else (),
            attacks=bank,
            rounds=args.rounds,
            num_seeds=args.num_seeds,
            master_seed=args.master_seed,
            n=args.n,
            d=args.d,
            f=args.f,
            noise_std=args.noise,
            iterations=args.iterations,
            win_threshold=args.win_threshold,
            loss_threshold=args.loss_threshold,
        )
        engine = SweepEngine(
            parallel=not args.sequential,
            max_workers=args.workers,
            cache_dir=args.cache_dir,
            events=args.events,
        )
        if args.resume:
            engine.events.emit("resume", kind="tournament", name=args.name)
        payload = run_tournament(config, engine)
    except InvalidParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    path = write_tournament_artifact(payload, args.out_dir)
    print(_format_leaderboard(payload))
    execution = payload["execution"]
    print(
        f"{payload['counts']['matches']} matches "
        f"({execution['cache_hits']} from cache) -> {path}"
    )
    if args.events:
        counts = engine.events.counts()
        rendered = ", ".join(f"{k}={counts[k]}" for k in sorted(counts))
        print(f"events -> {args.events}: {rendered}")
    failed = payload["counts"]["failed"]
    if failed:
        print(f"{failed} match(es) failed", file=sys.stderr)
    return 1 if failed else 0


def _command_trace(args) -> int:
    if args.trace_command == "export":
        return _command_trace_export(args)
    if args.trace_command == "flame":
        return _command_trace_flame(args)
    return _command_trace_report(args)


def _command_trace_export(args) -> int:
    from repro.exceptions import InvalidParameterError
    from repro.observability.perf import (
        collect_trace_records,
        write_chrome_trace,
    )

    try:
        records = collect_trace_records(args.path)
        document = write_chrome_trace(args.output, records)
    except InvalidParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    events = [e for e in document["traceEvents"] if e.get("ph") == "X"]
    if not events:
        print("no traced spans found (was tracing enabled?)",
              file=sys.stderr)
        return 1
    print(f"wrote {len(events)} span(s) to {args.output} "
          f"(load in chrome://tracing or ui.perfetto.dev)")
    return 0


def _command_trace_flame(args) -> int:
    from repro.exceptions import InvalidParameterError
    from repro.observability.perf import (
        build_span_tree,
        collect_trace_records,
        render_flame,
    )

    try:
        roots = build_span_tree(collect_trace_records(args.path))
    except InvalidParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_flame(roots))
    return 0


def _command_trace_report(args) -> int:
    from repro.exceptions import InvalidParameterError
    from repro.observability import write_summary_atomic
    from repro.observability.perf import analyze_trace_path

    if args.windows < 1:
        print("error: --windows must be >= 1", file=sys.stderr)
        return 2
    try:
        reports = analyze_trace_path(args.path, windows=args.windows)
    except InvalidParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for report in reports:
        print(report.render())
        print()
    anomalies = sum(len(report.anomalies) for report in reports)
    print(f"{len(reports)} stream(s), {anomalies} anomaly flag(s)")
    if args.json:
        write_summary_atomic(
            args.json, {"reports": [r.to_payload() for r in reports]}
        )
        print(f"saved report to {args.json}")
    if args.fail_on_anomaly and anomalies:
        return 1
    return 0


def _command_list(_args) -> int:
    from repro.system.backends import available_backends

    print("gradient filters:", ", ".join(available_filters()))
    print("attacks:         ", ", ".join(available_attacks()))
    print("experiments:     ", ", ".join(sorted(EXPERIMENTS)))
    backends = available_backends()
    print(
        "array backends:  ",
        ", ".join(
            name if ok else f"{name} (unavailable)"
            for name, ok in sorted(backends.items())
        ),
    )
    return 0


def _command_serve(args) -> int:
    """Run the long-lived aggregation service until interrupted."""
    import asyncio

    from repro.exceptions import InvalidParameterError
    from repro.service import ReproService, ServiceConfig

    try:
        config = ServiceConfig(
            state_dir=args.state_dir,
            socket_path=args.socket,
            host=args.host,
            port=args.port,
            job_slots=args.job_slots,
            pool_workers=args.pool_workers,
            max_queue=args.max_queue,
            per_client=args.per_client,
            parallel=not args.sequential,
            backend=args.backend,
            timeout=args.timeout,
            retries=args.retries,
            job_ttl=args.job_ttl,
        )
    except InvalidParameterError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    service = ReproService(config)
    target = config.socket_path or f"{config.host}:{config.port}"
    print(f"repro serve: state in {config.state_dir}, listening on {target}",
          flush=True)
    try:
        asyncio.run(service.serve_forever())
    except KeyboardInterrupt:
        pass
    return 0


def _service_client(args):
    """Build a :class:`ServiceClient` from endpoint flags, or ``None``."""
    from repro.service import ServiceClient

    try:
        return ServiceClient(socket_path=args.socket, host=args.host,
                             port=args.port)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _command_submit(args) -> int:
    """Submit one job; exit 0 accepted / 1 rejected or failed / 2 usage."""
    from repro.exceptions import AdmissionRejectedError, ServiceError

    client = _service_client(args)
    if client is None:
        return 2
    if args.submit_command == "sweep":
        kind, params = "sweep", {
            "filters": args.filters,
            "attacks": args.attacks,
            "fault_counts": args.fault_counts,
            "num_seeds": args.num_seeds,
            "master_seed": args.master_seed,
            "n": args.n,
            "d": args.d,
            "noise_std": args.noise,
            "iterations": args.iterations,
            "telemetry": args.telemetry,
        }
    elif args.submit_command == "run":
        kind, params = "run", {
            "n": args.n,
            "d": args.d,
            "f": args.f,
            "noise_std": args.noise,
            "filter": args.filter_name,
            "attack": args.attack,
            "iterations": args.iterations,
            "seed": args.seed,
        }
    else:
        kind, params = "bench", {"name": args.name, "repeats": args.repeats}
    try:
        record = client.submit(kind, params, client=args.client,
                               priority=args.priority)
    except AdmissionRejectedError as exc:
        print(f"rejected ({exc.reason}): {exc.detail} "
              f"[limit {exc.limit}, queue depth {exc.queue_depth}]",
              file=sys.stderr)
        return 1
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"accepted {record['job_id']} ({kind}, "
          f"priority {record['spec']['priority']}, "
          f"trace {record['trace_id']})")
    if not args.wait:
        return 0
    try:
        final = client.wait(record["job_id"], timeout=args.wait_timeout)
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{final['job_id']}: {final['state']}"
          + (f" — {final['error']}" if final.get("error") else ""))
    if final["state"] != "done":
        return 1
    if final.get("summary"):
        print("summary:", json.dumps(final["summary"], sort_keys=True))
    return 0


def _command_status(args) -> int:
    """Inspect the server's job table; exit codes follow ``submit``."""
    from repro.exceptions import ServiceError

    client = _service_client(args)
    if client is None:
        return 2
    try:
        if args.job_id is None:
            health = client.healthz()
            stats = client.stats()
            cache = stats.get("cache", {})
            pool = stats.get("pool", {})
            ratio = cache.get("hit_ratio")
            print(
                f"up {health.get('uptime', 0.0):.0f}s | "
                f"queue depth {stats.get('queue', {}).get('depth', 0)} | "
                f"pool workers {pool.get('live_workers', 0)} live, "
                f"{pool.get('rebuilds', 0)} rebuild(s) | "
                f"cache {cache.get('cells', 0)} cell(s), "
                + ("hit ratio n/a" if ratio is None
                   else f"hit ratio {ratio:.0%}")
            )
            rows = [
                [record["job_id"], record["spec"]["kind"],
                 record["spec"]["client"], str(record["spec"]["priority"]),
                 record["state"], str(record["attempts"]),
                 record.get("error") or ""]
                for record in client.jobs()
            ]
            print(format_table(
                ["job", "kind", "client", "prio", "state", "attempts",
                 "error"], rows))
            return 0
        if args.events:
            try:
                for event in client.events(args.job_id, follow=args.follow):
                    print(json.dumps(event, sort_keys=True), flush=True)
            except BrokenPipeError:
                # downstream consumer (e.g. ``| head``) closed the pipe;
                # swallow the write error and suppress the one the
                # interpreter would raise flushing stdout at exit
                os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return 0
        if args.result:
            print(json.dumps(client.result(args.job_id), indent=2,
                             sort_keys=True))
            return 0
        record = client.job(args.job_id)
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0 if record["state"] != "failed" else 1
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "experiment": _command_experiment,
        "run": _command_run,
        "profile": _command_profile,
        "redundancy": _command_redundancy,
        "sweep": _command_sweep,
        "bench": _command_bench,
        "tournament": _command_tournament,
        "trace": _command_trace,
        "serve": _command_serve,
        "submit": _command_submit,
        "status": _command_status,
        "list": _command_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
