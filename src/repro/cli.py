"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiment <id>``
    Run one of the reconstructed experiments (E1..E15, A1..A4) and print
    the rendered table/series; optionally save the structured result as
    JSON or its table as CSV.
``run``
    One filtered-DGD execution on a generated regression instance, with
    the filter, attack, and system parameters as flags.
``redundancy``
    Measure the 2f-redundancy margin of a generated instance across a
    noise sweep.
``sweep``
    Execute a (filter × attack × f × seed) grid through the batched,
    process-pooled sweep engine and print the per-configuration summary.
``profile``
    Run one configured scenario with telemetry enabled and print the
    roll-up: p50/p95 span latencies, rounds/sec, and the filter's
    elimination precision/recall against the ground-truth Byzantine set.
``list``
    Show the registered gradient filters, attacks, and experiments.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

import numpy as np

from repro import __version__
from repro.aggregators.registry import available_filters
from repro.analysis.metrics import final_error
from repro.analysis.reporting import format_table
from repro.analysis.serialization import experiment_to_csv, save_experiment
from repro.attacks.registry import available_attacks, make_attack
from repro.core.redundancy import measure_redundancy_margin
from repro.problems.linear_regression import make_redundant_regression
from repro.system.runner import run_dgd
from repro import experiments as experiment_module

#: Experiment id → zero-argument runner.
EXPERIMENTS: Dict[str, Callable] = {
    "E1": experiment_module.run_table1,
    "E2": experiment_module.run_trajectories,
    "E3": lambda: experiment_module.run_trajectories(early_window=80),
    "E4": experiment_module.run_exact_algorithm_table,
    "E5": experiment_module.run_noise_sweep,
    "E6": experiment_module.run_fault_sweep,
    "E7": experiment_module.run_learning_eval,
    "E8": experiment_module.run_peer_vs_server,
    "E9": experiment_module.run_aggregator_scaling,
    "E10": experiment_module.run_robustness_matrix,
    "E11": experiment_module.run_replication_design,
    "E12": experiment_module.run_cwtm_dimension_sweep,
    "E13": experiment_module.run_worst_case_certification,
    "E14": experiment_module.run_heterogeneity_sweep,
    "E15": experiment_module.run_communication_costs,
    "A1": experiment_module.run_cge_sum_vs_mean,
    "A2": experiment_module.run_step_size_ablation,
    "A3": experiment_module.run_projection_ablation,
    "A4": experiment_module.run_stochastic_step_sizes,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault-Tolerance in Distributed Optimization: The Case of "
        "Redundancy (PODC 2020) — reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command", required=True)

    experiment = commands.add_parser(
        "experiment", help="run a reconstructed table/figure experiment"
    )
    experiment.add_argument("id", choices=sorted(EXPERIMENTS), help="experiment id")
    experiment.add_argument("--json", metavar="PATH", help="save the structured result")
    experiment.add_argument("--csv", metavar="PATH", help="save the table rows as CSV")

    run = commands.add_parser("run", help="one filtered-DGD execution")
    run.add_argument("--n", type=int, default=6, help="number of agents")
    run.add_argument("--d", type=int, default=2, help="problem dimension")
    run.add_argument("--f", type=int, default=1, help="fault bound")
    run.add_argument("--noise", type=float, default=0.02, help="observation noise std")
    run.add_argument(
        "--filter", default="cge", choices=available_filters(), dest="filter_name"
    )
    run.add_argument(
        "--attack", default="gradient-reverse",
        choices=[a for a in available_attacks() if a not in ("constant-bias", "cost-substitution", "optimal-direction", "intermittent")],
    )
    run.add_argument("--iterations", type=int, default=500)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="stream per-round telemetry records (JSONL) to PATH",
    )

    profile = commands.add_parser(
        "profile",
        help="run one scenario with telemetry and print the profiling roll-up",
    )
    profile.add_argument("--n", type=int, default=6, help="number of agents")
    profile.add_argument("--d", type=int, default=2, help="problem dimension")
    profile.add_argument("--f", type=int, default=1, help="fault bound")
    profile.add_argument("--noise", type=float, default=0.02,
                         help="observation noise std")
    profile.add_argument(
        "--filter", default="cge", choices=available_filters(), dest="filter_name"
    )
    profile.add_argument(
        "--attack", default="gradient-reverse",
        choices=[a for a in available_attacks() if a not in ("constant-bias", "cost-substitution", "optimal-direction", "intermittent")],
    )
    profile.add_argument("--iterations", type=int, default=500)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--runs", type=int, default=1,
        help="replicate runs; >1 profiles the vectorized batch engine "
        "(seeds derived from --seed)",
    )
    profile.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="also keep the raw JSONL record stream at PATH",
    )
    profile.add_argument(
        "--json", metavar="PATH", default=None,
        help="save the roll-up summary (checksummed atomic write)",
    )

    redundancy = commands.add_parser(
        "redundancy", help="measure the redundancy margin over a noise sweep"
    )
    redundancy.add_argument("--n", type=int, default=6)
    redundancy.add_argument("--d", type=int, default=2)
    redundancy.add_argument("--f", type=int, default=1)
    redundancy.add_argument(
        "--noise", type=float, nargs="+", default=[0.0, 0.01, 0.05, 0.1]
    )
    redundancy.add_argument("--seed", type=int, default=0)

    sweep = commands.add_parser(
        "sweep", help="run a (filter x attack x f x seed) grid via the sweep engine"
    )
    sweep.add_argument(
        "--filters", nargs="+", default=["cge", "cwtm", "median", "average"],
        choices=available_filters(),
    )
    sweep.add_argument(
        "--attacks", nargs="+",
        default=["gradient-reverse", "random", "sign-flip", "zero"],
        choices=available_attacks(),
    )
    sweep.add_argument("--fault-counts", type=int, nargs="+", default=[1])
    sweep.add_argument("--num-seeds", type=int, default=10)
    sweep.add_argument("--master-seed", type=int, default=20200803)
    sweep.add_argument("--n", type=int, default=6)
    sweep.add_argument("--d", type=int, default=2)
    sweep.add_argument("--noise", type=float, default=0.0)
    sweep.add_argument("--iterations", type=int, default=300)
    sweep.add_argument(
        "--sequential", action="store_true",
        help="disable the process pool (single-process execution)",
    )
    sweep.add_argument("--workers", type=int, default=None, help="pool size")
    sweep.add_argument(
        "--backend", choices=["batch", "sequential"], default="batch",
        help="per-cell execution engine (numerically identical)",
    )
    sweep.add_argument(
        "--cache-dir", default=None,
        help="directory for the on-disk trace cache (off by default)",
    )
    sweep.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-chunk wall-clock budget; hung chunks are retried in a "
        "fresh pool (unlimited by default)",
    )
    sweep.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="failed attempts allowed per chunk before quarantine (default 2)",
    )
    sweep.add_argument(
        "--events", default=None, metavar="PATH",
        help="write a JSONL event log (retries, cache hits/misses, "
        "quarantines, per-chunk wall time) and print its summary",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted grid from its cache: recompute only "
        "cells without a valid cache entry (requires --cache-dir)",
    )
    sweep.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="write per-round run telemetry, one JSONL stream per "
        "(f, filter, attack) group, into DIR (same event schema as --events)",
    )

    commands.add_parser("list", help="show registered filters, attacks, experiments")
    return parser


def _command_experiment(args) -> int:
    result = EXPERIMENTS[args.id]()
    print(result.render())
    if args.json:
        path = save_experiment(result, args.json)
        print(f"saved JSON to {path}")
    if args.csv:
        from pathlib import Path

        Path(args.csv).write_text(experiment_to_csv(result))
        print(f"saved CSV to {args.csv}")
    return 0


def _command_run(args) -> int:
    instance = make_redundant_regression(
        n=args.n, d=args.d, f=args.f, noise_std=args.noise, seed=args.seed
    )
    faulty = tuple(range(args.f))
    honest = [i for i in range(args.n) if i not in faulty]
    x_H = instance.honest_minimizer(honest)
    behavior = make_attack(args.attack) if faulty else None
    telemetry = None
    if args.telemetry:
        from repro.observability import Telemetry

        telemetry = Telemetry(
            args.telemetry, byzantine_ids=faulty, reference_point=x_H
        )
    trace = run_dgd(
        instance.costs,
        behavior,
        gradient_filter=args.filter_name,
        faulty_ids=faulty,
        iterations=args.iterations,
        seed=args.seed,
        telemetry=telemetry,
    )
    margin = measure_redundancy_margin(instance.costs, args.f).margin
    rows = [
        ["filter", args.filter_name],
        ["attack", args.attack if faulty else "(none)"],
        ["honest minimizer x_H", np.round(x_H, 4)],
        ["output x_out", np.round(trace.final_estimate, 4)],
        ["dist(x_H, x_out)", final_error(trace, x_H)],
        ["redundancy margin eps", margin],
        ["messages delivered", trace.messages_delivered],
        ["wall time (s)", round(trace.wall_time, 3)],
    ]
    print(format_table(["quantity", "value"], rows,
                       title=f"filtered DGD on n={args.n}, f={args.f}, d={args.d}"))
    if telemetry is not None:
        telemetry.close()
        print(f"telemetry -> {args.telemetry} ({telemetry.emitted} records)")
    return 0


def _format_metric(value, digits: int = 3) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def _render_telemetry_summary(summary: dict, title: str) -> str:
    """Render a :meth:`Telemetry.summary` roll-up as aligned tables."""
    blocks = []
    spans = summary.get("spans") or {}
    if spans:
        rows = [
            [
                name,
                stats["count"],
                _format_metric(stats["p50"] * 1e3),
                _format_metric(stats["p95"] * 1e3),
                _format_metric(stats["total"]),
            ]
            for name, stats in sorted(spans.items())
        ]
        blocks.append(format_table(
            ["span", "count", "p50 (ms)", "p95 (ms)", "total (s)"], rows,
            title=title,
        ))
    elimination = summary.get("elimination") or {}
    rows = [
        ["rounds recorded", summary.get("rounds", 0)],
        ["rounds / sec", _format_metric(summary.get("rounds_per_sec"), 1)],
        ["eliminated Byzantine (TP)", elimination.get("true_positives", 0)],
        ["eliminated honest (FP)", elimination.get("false_positives", 0)],
        ["surviving Byzantine (FN)", elimination.get("false_negatives", 0)],
        ["elimination precision", _format_metric(elimination.get("precision"))],
        ["elimination recall", _format_metric(elimination.get("recall"))],
    ]
    blocks.append(format_table(["quantity", "value"], rows, title="roll-up"))
    return "\n".join(blocks)


def _command_profile(args) -> int:
    from repro.observability import (
        JSONLSink,
        MemorySink,
        Telemetry,
        write_summary_atomic,
    )
    from repro.system.batch import run_dgd_batch
    from repro.utils.rng import derive_seed, spawn_rngs

    if args.runs <= 0:
        print("error: --runs must be positive", file=sys.stderr)
        return 2
    instance = make_redundant_regression(
        n=args.n, d=args.d, f=args.f, noise_std=args.noise, seed=args.seed
    )
    faulty = tuple(range(args.f))
    honest = [i for i in range(args.n) if i not in faulty]
    x_H = instance.honest_minimizer(honest)
    behavior = make_attack(args.attack) if faulty else None
    sinks = [MemorySink()]
    if args.telemetry:
        sinks.append(JSONLSink(args.telemetry))
    telemetry = Telemetry(sinks, byzantine_ids=faulty, reference_point=x_H)
    if args.runs == 1:
        run_dgd(
            instance.costs,
            behavior,
            gradient_filter=args.filter_name,
            faulty_ids=faulty,
            iterations=args.iterations,
            seed=args.seed,
            telemetry=telemetry,
        )
    else:
        seeds = [derive_seed(rng) for rng in spawn_rngs(args.seed, args.runs)]
        run_dgd_batch(
            instance.costs,
            behavior,
            seeds=seeds,
            gradient_filter=args.filter_name,
            faulty_ids=faulty,
            iterations=args.iterations,
            telemetry=telemetry,
        )
    summary = telemetry.summary()
    telemetry.close()
    engine = "run_dgd" if args.runs == 1 else f"run_dgd_batch x{args.runs}"
    print(_render_telemetry_summary(
        summary,
        title=(f"profile: {engine}, filter={args.filter_name}, "
               f"attack={args.attack if faulty else '(none)'}, "
               f"n={args.n}, f={args.f}, d={args.d}, T={args.iterations}"),
    ))
    if args.telemetry:
        print(f"telemetry -> {args.telemetry} ({telemetry.emitted} records)")
    if args.json:
        write_summary_atomic(args.json, summary)
        print(f"saved summary to {args.json}")
    return 0


def _command_redundancy(args) -> int:
    rows = []
    for sigma in args.noise:
        instance = make_redundant_regression(
            n=args.n, d=args.d, f=args.f, noise_std=sigma, seed=args.seed
        )
        report = measure_redundancy_margin(instance.costs, args.f)
        rows.append([sigma, report.margin, "yes" if report.holds else "no"])
    print(format_table(
        ["noise std", "margin eps*", "2f-redundant"], rows,
        title=f"redundancy margin (n={args.n}, f={args.f}, d={args.d})",
    ))
    return 0


def _command_sweep(args) -> int:
    from repro.experiments.sweep import RegressionGrid, SweepEngine, summarize_grid

    if args.resume and args.cache_dir is None:
        print("error: --resume requires --cache-dir (nothing to resume from)",
              file=sys.stderr)
        return 2
    grid = RegressionGrid(
        filters=tuple(args.filters),
        attacks=tuple(args.attacks),
        fault_counts=tuple(args.fault_counts),
        num_seeds=args.num_seeds,
        master_seed=args.master_seed,
        n=args.n,
        d=args.d,
        noise_std=args.noise,
        iterations=args.iterations,
    )
    engine = SweepEngine(
        parallel=not args.sequential,
        max_workers=args.workers,
        cache_dir=args.cache_dir,
        backend=args.backend,
        timeout=args.timeout,
        retries=args.retries,
        events=args.events,
        telemetry_dir=args.telemetry,
    )
    cells = engine.resume(grid) if args.resume else engine.run_regression_grid(grid)
    print(summarize_grid(cells).render())
    cached = sum(cell.cached for cell in cells)
    failed = sum(cell.failed for cell in cells)
    quarantined = sum(cell.quarantined for cell in cells)
    line = f"{len(cells)} cells ({cached} from cache)"
    if failed:
        line += f", {failed} failed ({quarantined} quarantined)"
    print(line)
    if args.events:
        counts = engine.events.counts()
        rendered = ", ".join(f"{k}={counts[k]}" for k in sorted(counts))
        print(f"events -> {args.events}: {rendered}")
    if args.telemetry:
        print(f"telemetry -> {args.telemetry}/")
    return 1 if failed else 0


def _command_list(_args) -> int:
    print("gradient filters:", ", ".join(available_filters()))
    print("attacks:         ", ", ".join(available_attacks()))
    print("experiments:     ", ", ".join(sorted(EXPERIMENTS)))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "experiment": _command_experiment,
        "run": _command_run,
        "profile": _command_profile,
        "redundancy": _command_redundancy,
        "sweep": _command_sweep,
        "list": _command_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
