"""SignSGD with majority vote (Bernstein et al., 2019).

Each agent's gradient is reduced to its coordinate-wise sign; the server
outputs the sign of the per-coordinate vote. A Byzantine agent controls
exactly one vote per coordinate, so a strict honest majority bounds its
influence — a communication-efficient robust baseline cited by the paper.

Because the output carries no magnitude information, the method converges
to a step-size-sized neighbourhood rather than the exact minimizer: it
trades exactness for one-bit-per-coordinate communication.
"""

from __future__ import annotations

import numpy as np

from repro.aggregators.base import GradientFilter
from repro.exceptions import InvalidParameterError


class SignSGDMajorityVote(GradientFilter):
    """Coordinate-wise majority vote over gradient signs.

    Parameters
    ----------
    f:
        Declared tolerance; robustness holds when the honest agents hold a
        strict per-coordinate majority.
    scale:
        Magnitude of the output vector's entries (the server's step size
        multiplies this).
    """

    name = "signsgd"

    def __init__(self, f: int = 0, scale: float = 1.0):
        super().__init__(f)
        if scale <= 0:
            raise InvalidParameterError(f"scale must be positive, got {scale}")
        self._scale = float(scale)

    def minimum_inputs(self) -> int:
        return max(2 * self._f + 1, 1)

    def _aggregate(self, gradients: np.ndarray) -> np.ndarray:
        votes = np.sign(gradients)
        tally = votes.sum(axis=0)
        return self._scale * np.sign(tally)
