"""Bulyan gradient filter (El Mhamdi et al., ICML 2018).

Two stages: (1) repeatedly apply Krum to select ``n − 2f`` gradients;
(2) per coordinate, average the ``n − 4f`` values closest to the
coordinate-wise median of the selection. Requires ``n >= 4f + 3``.
"""

from __future__ import annotations

import numpy as np

from repro.aggregators.base import GradientFilter
from repro.aggregators.krum import _krum_scores
from repro.exceptions import InvalidParameterError


class Bulyan(GradientFilter):
    """Krum-selection followed by a median-centered trimmed average."""

    name = "bulyan"

    def minimum_inputs(self) -> int:
        return 4 * self._f + 3

    def _aggregate(self, gradients: np.ndarray) -> np.ndarray:
        n = gradients.shape[0]
        f = self._f
        selection_size = n - 2 * f
        remaining = list(range(n))
        selected = []
        while len(selected) < selection_size:
            pool = gradients[remaining]
            # Krum's neighbour count must stay >= 1 as the pool shrinks.
            effective_f = min(f, len(remaining) - 3)
            if effective_f < 0:
                # Pool too small for scoring: take what's left in order.
                selected.extend(remaining[: selection_size - len(selected)])
                break
            scores = _krum_scores(pool, effective_f)
            best = int(np.argmin(scores))
            selected.append(remaining.pop(best))
        chosen = gradients[selected]
        beta = max(selection_size - 2 * f, 1)
        median = np.median(chosen, axis=0)
        # Per coordinate, keep the beta values nearest the median.
        deviations = np.abs(chosen - median)
        order = np.argsort(deviations, axis=0, kind="stable")[:beta]
        kept = np.take_along_axis(chosen, order, axis=0)
        return kept.mean(axis=0)
