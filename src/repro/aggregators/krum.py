"""Krum and Multi-Krum gradient filters (Blanchard et al., NeurIPS 2017).

Krum scores each gradient by the sum of squared distances to its
``n − f − 2`` nearest neighbours and outputs the gradient with the smallest
score. Multi-Krum averages the ``m`` best-scoring gradients. Standard
baselines for the comparison experiments.
"""

from __future__ import annotations

import numpy as np

from repro.aggregators.base import GradientFilter
from repro.exceptions import InvalidParameterError


def _krum_scores(gradients: np.ndarray, f: int) -> np.ndarray:
    """Krum score of each row: sum of its ``n − f − 2`` smallest squared distances."""
    n = gradients.shape[0]
    neighbours = n - f - 2
    if neighbours < 1:
        raise InvalidParameterError(
            f"Krum requires n >= f + 3; got n={n}, f={f}"
        )
    deltas = gradients[:, None, :] - gradients[None, :, :]
    squared = np.einsum("ijk,ijk->ij", deltas, deltas)
    np.fill_diagonal(squared, np.inf)
    nearest = np.sort(squared, axis=1)[:, :neighbours]
    return nearest.sum(axis=1)


class Krum(GradientFilter):
    """Select the single gradient closest to its nearest-neighbour cloud."""

    name = "krum"

    def minimum_inputs(self) -> int:
        return self._f + 3

    def _aggregate(self, gradients: np.ndarray) -> np.ndarray:
        scores = _krum_scores(gradients, self._f)
        return gradients[int(np.argmin(scores))].copy()


class MultiKrum(GradientFilter):
    """Average of the ``m`` best Krum-scoring gradients.

    Parameters
    ----------
    f:
        Fault bound used in the score definition.
    m:
        Number of selected gradients; defaults to ``n − f`` at call time
        when left unset.
    """

    name = "multikrum"

    def __init__(self, f: int, m: int = None):
        super().__init__(f)
        if m is not None and m <= 0:
            raise InvalidParameterError(f"m must be positive, got {m}")
        self._m = m

    def minimum_inputs(self) -> int:
        return self._f + 3

    def _aggregate(self, gradients: np.ndarray) -> np.ndarray:
        n = gradients.shape[0]
        m = self._m if self._m is not None else n - self._f
        m = min(m, n)
        scores = _krum_scores(gradients, self._f)
        chosen = np.argsort(scores, kind="stable")[:m]
        return gradients[chosen].mean(axis=0)
