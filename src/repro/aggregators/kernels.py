"""Pure-numpy batched aggregation kernels.

The gradient filters in this package expose their hot loops as free
functions over ``(K, n, d)`` tensors so that (a) the scalar and batched
filter paths share one implementation — which is what makes the batch
engine's bit-identity contract hold *by construction* — and (b) the
:mod:`repro.system.backends` seam can describe an aggregation as a plain
``kernel_spec`` dict and route it to an alternative array backend without
importing any filter class.

This module must stay importable with numpy alone (no ``repro.system``
imports): the backend layer imports it, and the aggregators sit below the
system layer in the package graph.

Determinism notes
-----------------
``np.partition`` with a single ``kth`` and ``np.mean`` along a contiguous
axis are lane-deterministic: the result for one ``(n,)`` lane does not
depend on how many other lanes share the call. That property is what lets
:func:`partition_trimmed_mean` back both ``CoordinateWiseTrimmedMean``
paths — ``_aggregate(g)`` is exactly ``kernel(g[None])[0]`` — while the
batch equivalence suite keeps asserting ``np.array_equal``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "cge_aggregate_batch",
    "cge_kept_indices",
    "cge_kept_indices_batch",
    "mean_batch",
    "median_batch",
    "partition_trimmed_mean",
    "sort_trimmed_mean",
    "sum_batch",
]


# ----------------------------------------------------------------------
# Coordinate-wise trimmed mean
# ----------------------------------------------------------------------


def sort_trimmed_mean(tensor: np.ndarray, f: int) -> np.ndarray:
    """Reference CWTM kernel: full per-coordinate sort, then slice + mean.

    ``O(K d n log n)``. Kept as the correctness oracle for the optimized
    kernel (the equivalence tests and the ``scale_cwtm_*`` benches compare
    against it) — production code uses :func:`partition_trimmed_mean`.
    """
    if f == 0:
        return tensor.mean(axis=1)
    ordered = np.sort(tensor, axis=1)
    return ordered[:, f : tensor.shape[1] - f].mean(axis=1)


def partition_trimmed_mean(tensor: np.ndarray, f: int) -> np.ndarray:
    """CWTM via two single-``kth`` selections instead of a full sort.

    Only the identity of the ``f`` smallest and ``f`` largest entries per
    coordinate matters, so two ``np.partition`` passes suffice:

    1. transpose to ``(K, d, n)`` and make the trim lanes contiguous —
       numpy's AVX-vectorized introselect only engages on unit-stride
       lanes, and a multi-``kth`` partition falls off that fast path
       entirely (measured ~2.4x slower than a full sort);
    2. partition at ``kth=f``: the ``f`` smallest land in ``[..., :f]``;
    3. partition the remaining suffix at ``kth=n-2f-1``: the ``f``
       largest land past it, leaving the kept multiset in a prefix.

    Both passes partition in place on the private transposed copy, so the
    kernel allocates exactly one ``(K, d, n)`` scratch tensor. ~2x faster
    than :func:`sort_trimmed_mean` at ``n=1024, d=256`` and never slower
    asymptotically (``O(K d n)`` selection vs ``O(K d n log n)`` sort).

    Per-lane results are bit-deterministic regardless of ``K`` (see the
    module docstring), so slicing a batch and re-running one slice gives
    byte-identical output.
    """
    if f == 0:
        return tensor.mean(axis=1)
    n = tensor.shape[1]
    keep = n - 2 * f
    lanes = np.ascontiguousarray(np.swapaxes(tensor, 1, 2))
    lanes.partition(f, axis=2)
    tail = lanes[..., f:]
    tail.partition(keep - 1, axis=2)
    return tail[..., :keep].mean(axis=2)


# ----------------------------------------------------------------------
# Comparative gradient elimination
# ----------------------------------------------------------------------


def cge_kept_indices(matrix: np.ndarray, f: int) -> np.ndarray:
    """Stable kept set of one ``(n, d)`` matrix: ``n - f`` smallest norms.

    Sorting is stable on ``(norm, index)`` so tied norms resolve by agent
    index — the deterministic reading of the paper's "ties broken
    arbitrarily".
    """
    norms = np.linalg.norm(matrix, axis=1)
    order = np.lexsort((np.arange(matrix.shape[0]), norms))
    keep = matrix.shape[0] - f
    return np.sort(order[:keep])


def cge_kept_indices_batch(tensor: np.ndarray, f: int) -> np.ndarray:
    """Kept indices of every run slice: ``(K, n, d)`` → ``(K, n - f)``.

    Fast path: batched norms + ``argpartition`` (O(n) per run instead of
    a full sort). ``argpartition`` breaks norm ties arbitrarily, so any
    run whose cut boundary has tied norms is redone with the stable
    (norm, index) order to match :func:`cge_kept_indices` exactly.
    """
    K, n, _ = tensor.shape
    keep = n - f
    norms = np.linalg.norm(tensor, axis=2)
    if f == 0:
        return np.broadcast_to(np.arange(n), (K, n)).copy()
    part = np.argpartition(norms, keep - 1, axis=1)
    kept = np.sort(part[:, :keep], axis=1)
    boundary = np.take_along_axis(norms, part[:, keep - 1 : keep], axis=1)
    cut = np.take_along_axis(norms, part[:, keep:], axis=1)
    ambiguous = np.flatnonzero((cut <= boundary).any(axis=1))
    for k in ambiguous:
        kept[k] = cge_kept_indices(tensor[k], f)
    return kept


def cge_aggregate_batch(tensor: np.ndarray, f: int, mode: str = "sum") -> np.ndarray:
    """Batched CGE: sum (or mean) of each slice's ``n - f`` smallest-norm rows."""
    kept = cge_kept_indices_batch(tensor, f)
    total = np.take_along_axis(tensor, kept[:, :, None], axis=1).sum(axis=1)
    if mode == "mean":
        return total / kept.shape[1]
    return total


# ----------------------------------------------------------------------
# Trivial batched kernels (uniform entry points for the backend seam)
# ----------------------------------------------------------------------


def mean_batch(tensor: np.ndarray) -> np.ndarray:
    """Per-slice arithmetic mean: ``(K, n, d)`` → ``(K, d)``."""
    return tensor.mean(axis=1)


def sum_batch(tensor: np.ndarray) -> np.ndarray:
    """Per-slice sum: ``(K, n, d)`` → ``(K, d)``."""
    return tensor.sum(axis=1)


def median_batch(tensor: np.ndarray) -> np.ndarray:
    """Per-slice coordinate-wise median (numpy semantics: even ``n``
    averages the two middle order statistics)."""
    return np.median(tensor, axis=1)
