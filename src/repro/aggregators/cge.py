"""Comparative Gradient Elimination (CGE) — the paper's gradient filter.

CGE sorts the ``n`` received gradients by Euclidean norm and outputs the
**sum of the ``n − f`` smallest-norm gradients**::

    ||g_{i_1}|| <= ... <= ||g_{i_n}||        (ties broken by agent index)
    CGE(g_1, ..., g_n) = Σ_{j=1..n-f} g_{i_j}

Intuition: under 2f-redundancy and bounded heterogeneity, honest gradients
near the honest minimizer are small; a Byzantine gradient can therefore
survive the cut only by having a norm no larger than some honest gradient's,
which caps the damage it can inject. The paper proves exact convergence of
gradient descent with this filter when ``α = 1 − (f/n)(1 + 2μ/γ) > 0``.
"""

from __future__ import annotations

import numpy as np

from repro.aggregators.base import GradientFilter
from repro.exceptions import InvalidParameterError
from repro.utils.validation import check_matrix


class ComparativeGradientElimination(GradientFilter):
    """CGE filter: sum (paper) or mean (ablation) of smallest-norm gradients.

    Parameters
    ----------
    f:
        Number of largest-norm gradients to eliminate.
    mode:
        ``"sum"`` — the paper's definition; ``"mean"`` — averages the kept
        gradients instead, an ablation that changes only the effective step
        size (direction is identical), exercised by the ablation bench.
    """

    name = "cge"

    def __init__(self, f: int, mode: str = "sum"):
        super().__init__(f)
        if mode not in ("sum", "mean"):
            raise InvalidParameterError(f"mode must be 'sum' or 'mean', got {mode!r}")
        self._mode = mode

    @property
    def mode(self) -> str:
        return self._mode

    def minimum_inputs(self) -> int:
        # Need at least one surviving gradient.
        return self._f + 1

    def kept_indices(self, gradients) -> np.ndarray:
        """Indices of the ``n − f`` gradients the filter keeps.

        Exposed for diagnostics: the attack experiments use it to audit how
        often Byzantine gradients survive the cut. Sorting is stable on
        (norm, index) so results are deterministic under ties. Validates and
        sanitizes arbitrary input; internal callers that already hold a
        validated matrix use :meth:`_kept_indices` to avoid re-copying the
        matrix on the hot path.
        """
        matrix = check_matrix(gradients, name="gradients", allow_non_finite=True)
        return self._kept_indices(self.sanitize(matrix))

    def _kept_indices(self, matrix: np.ndarray) -> np.ndarray:
        """Kept indices of a pre-validated, sanitized ``(n, d)`` matrix."""
        norms = np.linalg.norm(matrix, axis=1)
        order = np.lexsort((np.arange(matrix.shape[0]), norms))
        keep = matrix.shape[0] - self._f
        return np.sort(order[:keep])

    def _kept_indices_batch(self, tensor: np.ndarray) -> np.ndarray:
        """Kept indices of every run slice: ``(K, n, d)`` → ``(K, n − f)``.

        Fast path: batched norms + ``argpartition`` (O(n) per run instead of
        a full sort). ``argpartition`` breaks norm ties arbitrarily, so any
        run whose cut boundary has tied norms is redone with the stable
        (norm, index) order to match :meth:`_kept_indices` exactly.
        """
        K, n, _ = tensor.shape
        keep = n - self._f
        norms = np.linalg.norm(tensor, axis=2)
        if self._f == 0:
            return np.broadcast_to(np.arange(n), (K, n)).copy()
        part = np.argpartition(norms, keep - 1, axis=1)
        kept = np.sort(part[:, :keep], axis=1)
        boundary = np.take_along_axis(norms, part[:, keep - 1 : keep], axis=1)
        cut = np.take_along_axis(norms, part[:, keep:], axis=1)
        ambiguous = np.flatnonzero((cut <= boundary).any(axis=1))
        for k in ambiguous:
            kept[k] = self._kept_indices(tensor[k])
        return kept

    def _aggregate(self, gradients: np.ndarray) -> np.ndarray:
        kept = self._kept_indices(gradients)
        total = gradients[kept].sum(axis=0)
        if self._mode == "mean":
            return total / kept.shape[0]
        return total

    def _aggregate_batch(self, tensor: np.ndarray) -> np.ndarray:
        kept = self._kept_indices_batch(tensor)
        total = np.take_along_axis(tensor, kept[:, :, None], axis=1).sum(axis=1)
        if self._mode == "mean":
            return total / kept.shape[1]
        return total

    def __repr__(self) -> str:
        return f"ComparativeGradientElimination(f={self._f}, mode={self._mode!r})"
