"""Comparative Gradient Elimination (CGE) — the paper's gradient filter.

CGE sorts the ``n`` received gradients by Euclidean norm and outputs the
**sum of the ``n − f`` smallest-norm gradients**::

    ||g_{i_1}|| <= ... <= ||g_{i_n}||        (ties broken by agent index)
    CGE(g_1, ..., g_n) = Σ_{j=1..n-f} g_{i_j}

Intuition: under 2f-redundancy and bounded heterogeneity, honest gradients
near the honest minimizer are small; a Byzantine gradient can therefore
survive the cut only by having a norm no larger than some honest gradient's,
which caps the damage it can inject. The paper proves exact convergence of
gradient descent with this filter when ``α = 1 − (f/n)(1 + 2μ/γ) > 0``.
"""

from __future__ import annotations

import numpy as np

from repro.aggregators import kernels
from repro.aggregators.base import GradientFilter
from repro.exceptions import InvalidParameterError
from repro.utils.validation import check_matrix


class ComparativeGradientElimination(GradientFilter):
    """CGE filter: sum (paper) or mean (ablation) of smallest-norm gradients.

    Parameters
    ----------
    f:
        Number of largest-norm gradients to eliminate.
    mode:
        ``"sum"`` — the paper's definition; ``"mean"`` — averages the kept
        gradients instead, an ablation that changes only the effective step
        size (direction is identical), exercised by the ablation bench.
    """

    name = "cge"

    def __init__(self, f: int, mode: str = "sum"):
        super().__init__(f)
        if mode not in ("sum", "mean"):
            raise InvalidParameterError(f"mode must be 'sum' or 'mean', got {mode!r}")
        self._mode = mode

    @property
    def mode(self) -> str:
        return self._mode

    def minimum_inputs(self) -> int:
        # Need at least one surviving gradient.
        return self._f + 1

    def kept_indices(self, gradients) -> np.ndarray:
        """Indices of the ``n − f`` gradients the filter keeps.

        Exposed for diagnostics: the attack experiments use it to audit how
        often Byzantine gradients survive the cut. Sorting is stable on
        (norm, index) so results are deterministic under ties. Validates and
        sanitizes arbitrary input; internal callers that already hold a
        validated matrix use :meth:`_kept_indices` to avoid re-copying the
        matrix on the hot path.
        """
        matrix = check_matrix(gradients, name="gradients", allow_non_finite=True)
        return self._kept_indices(self.sanitize(matrix))

    def _kept_indices(self, matrix: np.ndarray) -> np.ndarray:
        """Kept indices of a pre-validated, sanitized ``(n, d)`` matrix."""
        return kernels.cge_kept_indices(matrix, self._f)

    def _kept_indices_batch(self, tensor: np.ndarray) -> np.ndarray:
        """Kept indices of every run slice: ``(K, n, d)`` → ``(K, n − f)``.

        Delegates to :func:`repro.aggregators.kernels.cge_kept_indices_batch`
        (batched ``argpartition`` with a stable redo of any run whose cut
        boundary has tied norms).
        """
        return kernels.cge_kept_indices_batch(tensor, self._f)

    def _aggregate(self, gradients: np.ndarray) -> np.ndarray:
        kept = self._kept_indices(gradients)
        total = gradients[kept].sum(axis=0)
        if self._mode == "mean":
            return total / kept.shape[0]
        return total

    def _aggregate_batch(self, tensor: np.ndarray) -> np.ndarray:
        return kernels.cge_aggregate_batch(tensor, self._f, self._mode)

    def kernel_spec(self):
        return {"kind": "cge", "f": self._f, "mode": self._mode}

    def __repr__(self) -> str:
        return f"ComparativeGradientElimination(f={self._f}, mode={self._mode!r})"
