"""Median-of-means style gradient filters.

Gradients are split into ``k`` contiguous groups, each group is averaged,
and the group means are combined robustly — coordinate-wise median
(:class:`MedianOfMeans`) or geometric median (:class:`GeometricMedianOfMeans`,
after Chen, Su & Xu 2017).
"""

from __future__ import annotations

import numpy as np

from repro.aggregators.base import GradientFilter
from repro.aggregators.median import weiszfeld
from repro.exceptions import InvalidParameterError


def _group_means(gradients: np.ndarray, num_groups: int) -> np.ndarray:
    n = gradients.shape[0]
    if num_groups > n:
        raise InvalidParameterError(
            f"cannot split {n} gradients into {num_groups} groups"
        )
    boundaries = np.linspace(0, n, num_groups + 1, dtype=int)
    return np.stack(
        [gradients[boundaries[i] : boundaries[i + 1]].mean(axis=0) for i in range(num_groups)]
    )


class MedianOfMeans(GradientFilter):
    """Coordinate-wise median over ``num_groups`` group means.

    Parameters
    ----------
    f:
        Fault bound; robustness requires ``num_groups > 2 f`` (a Byzantine
        agent corrupts at most its own group), validated at call time.
    num_groups:
        Number of groups; defaults to ``2 f + 1``.
    """

    name = "mom"

    def __init__(self, f: int, num_groups: int = None):
        super().__init__(f)
        if num_groups is not None and num_groups <= 0:
            raise InvalidParameterError(f"num_groups must be positive, got {num_groups}")
        self._num_groups = num_groups

    def _groups(self, n: int) -> int:
        groups = self._num_groups if self._num_groups is not None else 2 * self._f + 1
        if groups <= 2 * self._f:
            raise InvalidParameterError(
                f"median-of-means needs more than 2f = {2 * self._f} groups, got {groups}"
            )
        return min(groups, n)

    def _aggregate(self, gradients: np.ndarray) -> np.ndarray:
        means = _group_means(gradients, self._groups(gradients.shape[0]))
        return np.median(means, axis=0)


class GeometricMedianOfMeans(MedianOfMeans):
    """Geometric median over group means (GMoM)."""

    name = "gmom"

    def _aggregate(self, gradients: np.ndarray) -> np.ndarray:
        means = _group_means(gradients, self._groups(gradients.shape[0]))
        return weiszfeld(means)
