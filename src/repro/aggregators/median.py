"""Median-based gradient filters: coordinate-wise and geometric median."""

from __future__ import annotations

import numpy as np

from repro.aggregators.base import GradientFilter
from repro.exceptions import InvalidParameterError


class CoordinateWiseMedian(GradientFilter):
    """Per-coordinate median of the received gradients.

    The extreme case of the trimmed mean (maximal trimming); tolerates any
    minority of Byzantine inputs per coordinate.
    """

    name = "median"

    def minimum_inputs(self) -> int:
        return max(2 * self._f + 1, 1)

    def _aggregate(self, gradients: np.ndarray) -> np.ndarray:
        return np.median(gradients, axis=0)

    def _aggregate_batch(self, tensor: np.ndarray) -> np.ndarray:
        return np.median(tensor, axis=1)

    def kernel_spec(self):
        return {"kind": "median", "f": self._f}


class GeometricMedian(GradientFilter):
    """Geometric (spatial) median computed with Weiszfeld's algorithm.

    Minimizes ``Σ_i ||z − g_i||`` over ``z ∈ R^d``. The implementation uses
    the smoothed Weiszfeld iteration (a small ``smoothing`` is added to each
    distance) which sidesteps the classical breakdown when an iterate
    coincides with an input point, and stops on a fixed-point tolerance.

    Parameters
    ----------
    f:
        Declared tolerance (informational; the geometric median's breakdown
        point is 1/2 regardless).
    max_iterations, tolerance, smoothing:
        Weiszfeld iteration controls.
    """

    name = "geomed"

    def __init__(
        self,
        f: int = 0,
        max_iterations: int = 200,
        tolerance: float = 1e-10,
        smoothing: float = 1e-12,
    ):
        super().__init__(f)
        if max_iterations <= 0:
            raise InvalidParameterError(f"max_iterations must be positive, got {max_iterations}")
        if tolerance <= 0:
            raise InvalidParameterError(f"tolerance must be positive, got {tolerance}")
        if smoothing <= 0:
            raise InvalidParameterError(f"smoothing must be positive, got {smoothing}")
        self._max_iterations = int(max_iterations)
        self._tolerance = float(tolerance)
        self._smoothing = float(smoothing)

    def minimum_inputs(self) -> int:
        return max(2 * self._f + 1, 1)

    def _aggregate(self, gradients: np.ndarray) -> np.ndarray:
        return weiszfeld(
            gradients,
            max_iterations=self._max_iterations,
            tolerance=self._tolerance,
            smoothing=self._smoothing,
        )


def weiszfeld(
    points: np.ndarray,
    max_iterations: int = 200,
    tolerance: float = 1e-10,
    smoothing: float = 1e-12,
) -> np.ndarray:
    """Smoothed Weiszfeld iteration for the geometric median of ``points``.

    Parameters
    ----------
    points:
        ``(n, d)`` array.
    max_iterations:
        Iteration budget; the iterate after the budget is returned (the
        iteration is a descent method, so the last iterate is the best).
    tolerance:
        Fixed-point stopping threshold on the iterate displacement.
    smoothing:
        Additive distance smoothing preventing division by zero.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InvalidParameterError("points must be a non-empty (n, d) array")
    if points.shape[0] == 1:
        return points[0].copy()
    estimate = points.mean(axis=0)
    for _ in range(max_iterations):
        distances = np.linalg.norm(points - estimate, axis=1) + smoothing
        weights = 1.0 / distances
        updated = (points * weights[:, None]).sum(axis=0) / weights.sum()
        if np.linalg.norm(updated - estimate) <= tolerance:
            return updated
        estimate = updated
    return estimate
