"""Diagnostic instrumentation for gradient filters.

:class:`RecordingFilter` wraps any filter transparently (it *is* a
:class:`GradientFilter`, so the server accepts it unchanged) and records a
per-round log of input norms and the aggregate output. For CGE it
additionally records which rows survived the norm cut, enabling survival
analysis of Byzantine gradients — e.g. "in what fraction of rounds did the
forged gradient slip past the filter?", the quantity that explains CGE's
behaviour under norm-camouflaged attacks (see EXPERIMENTS.md E10/E13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.aggregators.base import GradientFilter
from repro.aggregators.cge import ComparativeGradientElimination


@dataclass
class FilterCallRecord:
    """One aggregation call's diagnostics."""

    round_index: int
    input_norms: np.ndarray
    output: np.ndarray
    kept_rows: Optional[np.ndarray] = None  # CGE only

    @property
    def num_inputs(self) -> int:
        return int(self.input_norms.shape[0])


class RecordingFilter(GradientFilter):
    """Transparent recording wrapper around any gradient filter.

    The wrapped filter's result is returned unchanged; every call appends a
    :class:`FilterCallRecord` to :attr:`records`.
    """

    name = "recording"
    stateful = True  # accumulates per-round records

    def __init__(self, inner: GradientFilter):
        super().__init__(inner.f)
        self._inner = inner
        self.records: List[FilterCallRecord] = []

    @property
    def inner(self) -> GradientFilter:
        return self._inner

    def minimum_inputs(self) -> int:
        return self._inner.minimum_inputs()

    def reset(self) -> None:
        """Clear recorded calls (and delegate to stateful inner filters)."""
        self.records.clear()
        if hasattr(self._inner, "reset"):
            self._inner.reset()

    def _aggregate(self, gradients: np.ndarray) -> np.ndarray:
        # ``gradients`` is already validated and sanitized by the base
        # ``__call__`` (which also enforced the inner filter's minimum-input
        # requirement via the delegated ``minimum_inputs``), so go straight
        # to the inner aggregation instead of re-running the full pipeline.
        output = self._inner._aggregate(gradients)
        kept = None
        if isinstance(self._inner, ComparativeGradientElimination):
            kept = self._inner._kept_indices(gradients)
        self.records.append(
            FilterCallRecord(
                round_index=len(self.records),
                input_norms=np.linalg.norm(gradients, axis=1),
                output=np.asarray(output, dtype=float).copy(),
                kept_rows=kept,
            )
        )
        return output

    def survival_fraction(self, row_index: int) -> float:
        """Fraction of recorded CGE rounds in which ``row_index`` was kept.

        Only meaningful when the inner filter is CGE (rows are ordered by
        the server's sorted sender ids, so a fixed Byzantine sender maps to
        a fixed row). Returns NaN when no kept-row data was recorded.
        """
        relevant = [r for r in self.records if r.kept_rows is not None]
        if not relevant:
            return float("nan")
        kept = sum(1 for r in relevant if row_index in r.kept_rows)
        return kept / len(relevant)

    def output_norm_series(self) -> np.ndarray:
        """``||GradFilter(·)||`` per recorded round."""
        return np.array([float(np.linalg.norm(r.output)) for r in self.records])
