"""Base class shared by all gradient filters."""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.utils.validation import check_matrix


class GradientFilter(abc.ABC):
    """A map from ``n`` received gradients to one aggregate direction.

    Subclasses implement :meth:`_aggregate` on a validated ``(n, d)``
    matrix; the public ``__call__`` handles validation (shape, finiteness of
    what can be checked, and the filter's own feasibility constraints).

    Parameters
    ----------
    f:
        Number of Byzantine inputs the filter is configured to tolerate.
        ``0`` is allowed — most filters then degenerate gracefully (e.g.
        CGE with ``f = 0`` is a plain sum).
    """

    #: Human-readable short name used by the registry and reports.
    name: str = "filter"

    def __init__(self, f: int = 0):
        f = int(f)
        if f < 0:
            raise InvalidParameterError(f"f must be non-negative, got {f}")
        self._f = f

    @property
    def f(self) -> int:
        """Configured fault tolerance."""
        return self._f

    def minimum_inputs(self) -> int:
        """Smallest ``n`` for which the filter is well defined."""
        return max(2 * self._f + 1, 1)

    def __call__(self, gradients) -> np.ndarray:
        """Aggregate the received gradients.

        Parameters
        ----------
        gradients:
            Array-like of shape ``(n, d)``: one row per agent, Byzantine
            rows included. Rows may contain arbitrary finite values; NaNs
            and infinities are replaced by large-but-finite surrogates so a
            Byzantine agent cannot crash the server with a malformed
            message (the filter's robustness must handle the surrogate like
            any other outlier).

        Returns
        -------
        numpy.ndarray
            The aggregated ``d``-vector.
        """
        matrix = check_matrix(gradients, name="gradients", allow_non_finite=True)
        matrix = self.sanitize(matrix)
        n = matrix.shape[0]
        if n < self.minimum_inputs():
            raise InvalidParameterError(
                f"{type(self).__name__} with f={self._f} requires at least "
                f"{self.minimum_inputs()} gradients, got {n}"
            )
        return self._aggregate(matrix)

    @staticmethod
    def sanitize(matrix: np.ndarray, cap: float = 1e12) -> np.ndarray:
        """Replace non-finite entries with large finite surrogates.

        A Byzantine sender controls its message bytes, so the server must
        not assume finiteness; mapping ``±inf``/``nan`` to ``±cap`` keeps
        every downstream norm/sort well defined while preserving the
        "extreme outlier" character of the message.
        """
        if np.all(np.isfinite(matrix)):
            return matrix
        cleaned = matrix.copy()
        cleaned[np.isnan(cleaned)] = cap
        cleaned[np.isposinf(cleaned)] = cap
        cleaned[np.isneginf(cleaned)] = -cap
        return cleaned

    @abc.abstractmethod
    def _aggregate(self, gradients: np.ndarray) -> np.ndarray:
        """Aggregate a validated, finite ``(n, d)`` matrix."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(f={self._f})"
