"""Base class shared by all gradient filters."""

from __future__ import annotations

import abc
from typing import Dict, Optional

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.utils.validation import check_matrix


class GradientFilter(abc.ABC):
    """A map from ``n`` received gradients to one aggregate direction.

    Subclasses implement :meth:`_aggregate` on a validated ``(n, d)``
    matrix; the public ``__call__`` handles validation (shape, finiteness of
    what can be checked, and the filter's own feasibility constraints).

    Parameters
    ----------
    f:
        Number of Byzantine inputs the filter is configured to tolerate.
        ``0`` is allowed — most filters then degenerate gracefully (e.g.
        CGE with ``f = 0`` is a plain sum).
    """

    #: Human-readable short name used by the registry and reports.
    name: str = "filter"

    #: Whether the filter carries mutable per-execution state (e.g. a
    #: running reference). Stateful filters cannot be shared across the
    #: replicate runs of a batch, so the batch engine falls back to
    #: sequential execution for them.
    stateful: bool = False

    def __init__(self, f: int = 0):
        f = int(f)
        if f < 0:
            raise InvalidParameterError(f"f must be non-negative, got {f}")
        self._f = f

    @property
    def f(self) -> int:
        """Configured fault tolerance."""
        return self._f

    def minimum_inputs(self) -> int:
        """Smallest ``n`` for which the filter is well defined."""
        return max(2 * self._f + 1, 1)

    def __call__(self, gradients) -> np.ndarray:
        """Aggregate the received gradients.

        Parameters
        ----------
        gradients:
            Array-like of shape ``(n, d)``: one row per agent, Byzantine
            rows included. Rows may contain arbitrary finite values; NaNs
            and infinities are replaced by large-but-finite surrogates so a
            Byzantine agent cannot crash the server with a malformed
            message (the filter's robustness must handle the surrogate like
            any other outlier).

        Returns
        -------
        numpy.ndarray
            The aggregated ``d``-vector.
        """
        matrix = check_matrix(gradients, name="gradients", allow_non_finite=True)
        matrix = self.sanitize(matrix)
        n = matrix.shape[0]
        if n < self.minimum_inputs():
            raise InvalidParameterError(
                f"{type(self).__name__} with f={self._f} requires at least "
                f"{self.minimum_inputs()} gradients, got {n}"
            )
        return self._aggregate(matrix)

    def aggregate_batch(self, gradients, presanitized: bool = False) -> np.ndarray:
        """Aggregate ``K`` stacked gradient matrices in one call.

        Parameters
        ----------
        gradients:
            Array-like of shape ``(K, n, d)``: ``K`` independent ``(n, d)``
            gradient matrices (one per replicate run). Non-finite entries
            are sanitized exactly as in :meth:`__call__`. Floating dtypes
            are preserved (the batch engine's ``float32`` precision mode
            rides on that); anything else is cast to float64.
        presanitized:
            Skip the internal :meth:`sanitize` pass. Callers that already
            sanitized the exact tensor they pass in (the batch engine
            sanitizes once per round and shares the result with its
            telemetry records) set this to avoid a redundant scan.

        Returns
        -------
        numpy.ndarray
            ``(K, d)`` array whose ``k``-th row equals
            ``self(gradients[k])`` bit-for-bit. The base implementation
            loops over the slices; filters with a vectorized kernel
            override :meth:`_aggregate_batch`.
        """
        tensor = np.asarray(gradients)
        if tensor.dtype not in (np.float32, np.float64):
            tensor = tensor.astype(float)
        if tensor.ndim != 3:
            raise InvalidParameterError(
                f"gradients must be a (K, n, d) tensor, got shape {tensor.shape}"
            )
        if tensor.shape[0] == 0:
            raise InvalidParameterError("batch must contain at least one run")
        if not presanitized:
            tensor = self.sanitize(tensor)
        n = tensor.shape[1]
        if n < self.minimum_inputs():
            raise InvalidParameterError(
                f"{type(self).__name__} with f={self._f} requires at least "
                f"{self.minimum_inputs()} gradients, got {n}"
            )
        return self._aggregate_batch(tensor)

    def _aggregate_batch(self, tensor: np.ndarray) -> np.ndarray:
        """Aggregate a validated, finite ``(K, n, d)`` tensor to ``(K, d)``.

        Default: per-slice loop over :meth:`_aggregate`. Overrides must be
        bit-identical to the loop (the equivalence suite enforces this).
        """
        return np.stack([self._aggregate(matrix) for matrix in tensor])

    def kernel_spec(self) -> Optional[Dict]:
        """A plain-dict description of the filter's batched kernel.

        The :mod:`repro.system.backends` seam uses this to route the
        aggregation to an alternative array backend without importing any
        filter class: ``{"kind": "cge", "f": 1, "mode": "sum"}`` and so
        on. ``None`` (the default) means the filter has no
        backend-portable kernel — the batch engine then always aggregates
        through the filter's own numpy implementation.
        """
        return None

    @staticmethod
    def sanitize(matrix: np.ndarray, cap: float = 1e12) -> np.ndarray:
        """Replace non-finite entries with large finite surrogates.

        A Byzantine sender controls its message bytes, so the server must
        not assume finiteness; mapping ``±inf``/``nan`` to ``±cap`` keeps
        every downstream norm/sort well defined while preserving the
        "extreme outlier" character of the message.
        """
        if np.all(np.isfinite(matrix)):
            return matrix
        cleaned = matrix.copy()
        cleaned[np.isnan(cleaned)] = cap
        cleaned[np.isposinf(cleaned)] = cap
        cleaned[np.isneginf(cleaned)] = -cap
        return cleaned

    @abc.abstractmethod
    def _aggregate(self, gradients: np.ndarray) -> np.ndarray:
        """Aggregate a validated, finite ``(n, d)`` matrix."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(f={self._f})"
