"""Coordinate-Wise Trimmed Mean (CWTM) gradient filter.

For each coordinate ``k``, discard the ``f`` largest and ``f`` smallest
values among the received gradients' ``k``-th entries, and average the
remaining ``n − 2f``. A standard robust-aggregation baseline (Su & Vaidya;
Yin et al.) that the paper's experiments compare CGE against.
"""

from __future__ import annotations

import numpy as np

from repro.aggregators.base import GradientFilter


class CoordinateWiseTrimmedMean(GradientFilter):
    """CWTM: per-coordinate trimmed mean with symmetric trim count ``f``."""

    name = "cwtm"

    def minimum_inputs(self) -> int:
        # Need at least one value to survive per coordinate.
        return 2 * self._f + 1

    def _aggregate(self, gradients: np.ndarray) -> np.ndarray:
        if self._f == 0:
            return gradients.mean(axis=0)
        ordered = np.sort(gradients, axis=0)
        kept = ordered[self._f : gradients.shape[0] - self._f]
        return kept.mean(axis=0)

    def _aggregate_batch(self, tensor: np.ndarray) -> np.ndarray:
        if self._f == 0:
            return tensor.mean(axis=1)
        ordered = np.sort(tensor, axis=1)
        kept = ordered[:, self._f : tensor.shape[1] - self._f]
        return kept.mean(axis=1)
