"""Coordinate-Wise Trimmed Mean (CWTM) gradient filter.

For each coordinate ``k``, discard the ``f`` largest and ``f`` smallest
values among the received gradients' ``k``-th entries, and average the
remaining ``n − 2f``. A standard robust-aggregation baseline (Su & Vaidya;
Yin et al.) that the paper's experiments compare CGE against.

Both the scalar and batched paths run through
:func:`repro.aggregators.kernels.partition_trimmed_mean` — a two-pass
single-``kth`` selection that replaces the former full ``np.sort`` (about
2x faster at ``n=1024, d=256``; the ``scale_cwtm_*`` benches track the
ratio). The scalar path is the batched kernel on a singleton batch, which
is what keeps the scalar/batch bit-identity contract true by construction.
"""

from __future__ import annotations

import numpy as np

from repro.aggregators import kernels
from repro.aggregators.base import GradientFilter


class CoordinateWiseTrimmedMean(GradientFilter):
    """CWTM: per-coordinate trimmed mean with symmetric trim count ``f``."""

    name = "cwtm"

    def minimum_inputs(self) -> int:
        # Need at least one value to survive per coordinate.
        return 2 * self._f + 1

    def _aggregate(self, gradients: np.ndarray) -> np.ndarray:
        return kernels.partition_trimmed_mean(gradients[None], self._f)[0]

    def _aggregate_batch(self, tensor: np.ndarray) -> np.ndarray:
        return kernels.partition_trimmed_mean(tensor, self._f)

    def kernel_spec(self):
        return {"kind": "cwtm", "f": self._f}
