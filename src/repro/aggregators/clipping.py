"""Centered-clipping gradient filter (Karimireddy, He & Jaggi, 2021).

Iteratively re-centers on the clipped mean: starting from a reference point
``v`` (the previous round's aggregate), each gradient's deviation from ``v``
is clipped to radius ``tau`` and the deviations are averaged back onto
``v``. Stateful across rounds — the filter remembers its last output as the
next round's reference, matching the "history" mechanism of the original
method.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.aggregators.base import GradientFilter
from repro.exceptions import InvalidParameterError


class CenteredClipping(GradientFilter):
    """Clip deviations from a running reference and average.

    Parameters
    ----------
    f:
        Declared tolerance (informational).
    radius:
        Clipping radius ``tau``.
    inner_iterations:
        Re-centering passes per call.
    """

    name = "clipping"
    stateful = True  # remembers the previous round's aggregate

    def __init__(self, f: int = 0, radius: float = 1.0, inner_iterations: int = 3):
        super().__init__(f)
        if radius <= 0:
            raise InvalidParameterError(f"radius must be positive, got {radius}")
        if inner_iterations <= 0:
            raise InvalidParameterError(
                f"inner_iterations must be positive, got {inner_iterations}"
            )
        self._radius = float(radius)
        self._inner_iterations = int(inner_iterations)
        self._reference: Optional[np.ndarray] = None

    def minimum_inputs(self) -> int:
        return 1

    def reset(self) -> None:
        """Forget the running reference (start of a new execution)."""
        self._reference = None

    def _aggregate(self, gradients: np.ndarray) -> np.ndarray:
        if self._reference is None or self._reference.shape[0] != gradients.shape[1]:
            reference = np.median(gradients, axis=0)
        else:
            reference = self._reference
        for _ in range(self._inner_iterations):
            deviations = gradients - reference
            norms = np.linalg.norm(deviations, axis=1)
            scales = np.minimum(1.0, self._radius / np.maximum(norms, 1e-12))
            reference = reference + (deviations * scales[:, None]).mean(axis=0)
        self._reference = reference.copy()
        return reference
