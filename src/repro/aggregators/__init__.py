"""Gradient filters (Byzantine-robust aggregation rules).

The server-side defence of the paper's gradient-descent algorithm: a
gradient filter maps the ``n`` received gradients (a ``(n, d)`` matrix) to a
single ``d``-vector used in the update rule. The paper's filter is
**Comparative Gradient Elimination (CGE)**; the others are standard
baselines from the robust-aggregation literature used by the comparison
experiments.
"""

from repro.aggregators.base import GradientFilter
from repro.aggregators.bulyan import Bulyan
from repro.aggregators.cge import ComparativeGradientElimination
from repro.aggregators.clipping import CenteredClipping
from repro.aggregators.diagnostics import FilterCallRecord, RecordingFilter
from repro.aggregators.krum import Krum, MultiKrum
from repro.aggregators.mean import Average, TrimmedSum
from repro.aggregators.median import CoordinateWiseMedian, GeometricMedian
from repro.aggregators.mom import GeometricMedianOfMeans, MedianOfMeans
from repro.aggregators.registry import available_filters, make_filter
from repro.aggregators.signsgd import SignSGDMajorityVote
from repro.aggregators.trimmed_mean import CoordinateWiseTrimmedMean

__all__ = [
    "GradientFilter",
    "Average",
    "TrimmedSum",
    "ComparativeGradientElimination",
    "CoordinateWiseTrimmedMean",
    "CoordinateWiseMedian",
    "GeometricMedian",
    "Krum",
    "MultiKrum",
    "Bulyan",
    "MedianOfMeans",
    "GeometricMedianOfMeans",
    "CenteredClipping",
    "SignSGDMajorityVote",
    "RecordingFilter",
    "FilterCallRecord",
    "make_filter",
    "available_filters",
]
