"""Name-based construction of gradient filters.

The experiment harness and benches refer to filters by short names so that
sweep configurations are plain data; this registry is the single place that
maps those names to classes.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.aggregators.base import GradientFilter
from repro.aggregators.bulyan import Bulyan
from repro.aggregators.cge import ComparativeGradientElimination
from repro.aggregators.clipping import CenteredClipping
from repro.aggregators.krum import Krum, MultiKrum
from repro.aggregators.mean import Average, TrimmedSum
from repro.aggregators.median import CoordinateWiseMedian, GeometricMedian
from repro.aggregators.mom import GeometricMedianOfMeans, MedianOfMeans
from repro.aggregators.signsgd import SignSGDMajorityVote
from repro.aggregators.trimmed_mean import CoordinateWiseTrimmedMean
from repro.exceptions import UnknownRegistryEntryError

_FACTORIES: Dict[str, Callable[..., GradientFilter]] = {
    Average.name: Average,
    TrimmedSum.name: TrimmedSum,
    ComparativeGradientElimination.name: ComparativeGradientElimination,
    CoordinateWiseTrimmedMean.name: CoordinateWiseTrimmedMean,
    CoordinateWiseMedian.name: CoordinateWiseMedian,
    GeometricMedian.name: GeometricMedian,
    Krum.name: Krum,
    MultiKrum.name: MultiKrum,
    Bulyan.name: Bulyan,
    MedianOfMeans.name: MedianOfMeans,
    GeometricMedianOfMeans.name: GeometricMedianOfMeans,
    CenteredClipping.name: CenteredClipping,
    SignSGDMajorityVote.name: SignSGDMajorityVote,
}


def available_filters() -> List[str]:
    """Sorted list of registered filter names."""
    return sorted(_FACTORIES)


def make_filter(name: str, f: int = 0, **kwargs) -> GradientFilter:
    """Instantiate a gradient filter by registry name.

    Parameters
    ----------
    name:
        One of :func:`available_filters`.
    f:
        Fault bound passed to the filter.
    kwargs:
        Filter-specific options (e.g. ``mode`` for CGE, ``radius`` for
        centered clipping).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise UnknownRegistryEntryError("filter", name, available_filters()) from None
    return factory(f=f, **kwargs)
