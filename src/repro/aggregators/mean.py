"""Non-robust reference aggregators: plain averaging and plain summation.

These implement the *unfiltered* distributed gradient-descent baseline the
paper compares against — a single Byzantine agent can drive them anywhere,
which the attack experiments demonstrate.
"""

from __future__ import annotations

import numpy as np

from repro.aggregators.base import GradientFilter


class Average(GradientFilter):
    """Arithmetic mean of all received gradients (no robustness)."""

    name = "average"

    def __init__(self, f: int = 0):
        # f is accepted for interface uniformity; averaging ignores it.
        super().__init__(f)

    def minimum_inputs(self) -> int:
        return 1

    def _aggregate(self, gradients: np.ndarray) -> np.ndarray:
        return gradients.mean(axis=0)

    def _aggregate_batch(self, tensor: np.ndarray) -> np.ndarray:
        return tensor.mean(axis=1)

    def kernel_spec(self):
        return {"kind": "mean"}


class TrimmedSum(GradientFilter):
    """Sum of all received gradients (the fault-free DGD direction).

    Named for symmetry with CGE, which is exactly this sum after trimming
    the ``f`` largest-norm gradients; with ``f = 0`` CGE and this filter
    coincide, a relationship the property tests pin down.
    """

    name = "sum"

    def minimum_inputs(self) -> int:
        return 1

    def _aggregate(self, gradients: np.ndarray) -> np.ndarray:
        return gradients.sum(axis=0)

    def _aggregate_batch(self, tensor: np.ndarray) -> np.ndarray:
        return tensor.sum(axis=1)

    def kernel_spec(self):
        return {"kind": "sum"}
