"""The constructive subset-enumeration algorithm from the achievability proof.

The paper's sufficiency argument exhibits an (expensive) algorithm achieving
exact fault-tolerance under 2f-redundancy:

- **Step 1.** Every agent sends its cost function to the server (Byzantine
  agents may send arbitrary functions).
- **Step 2.** For each candidate set ``T`` of ``n − f`` received functions,
  the server computes a minimizer ``x_T`` of ``Σ_{i ∈ T} Q_i`` and the score

  ``r_T = max over Ŝ ⊂ T, |Ŝ| = n − 2f of dist(x_T, argmin Σ_{i ∈ Ŝ} Q_i)``.

- **Step 3.** The server outputs ``x_S`` for ``S`` minimizing ``r_T``.

Under exact 2f-redundancy every honest ``T`` scores ``r_T = 0``, so the
selected subset's minimizer coincides with every honest subset's minimizer —
exact fault-tolerance. The implementation keeps the score machinery fully
quantitative so the same class also demonstrates graceful degradation when
redundancy is only approximate.

The algorithm is combinatorial — ``C(n, f) · C(n − f, f)`` subset solves —
so a complexity guard refuses configurations beyond an explicit budget
instead of silently hanging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import comb
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.geometry import ArgminSet
from repro.core.redundancy import ArgminSolver, default_solver
from repro.exceptions import InfeasibleConfigurationError, InvalidParameterError
from repro.optimization.cost_functions import CostFunction
from repro.utils.subsets import iter_fixed_size_subsets
from repro.utils.validation import check_fault_bound

Subset = Tuple[int, ...]


@dataclass
class SubsetScore:
    """Score record for one candidate subset ``T``.

    Attributes
    ----------
    subset:
        The candidate agent set ``T`` with ``|T| = n − f``.
    minimizer:
        The computed ``x_T``.
    score:
        ``r_T`` — worst distance from ``x_T`` to any inner-subset argmin.
    worst_inner:
        The inner subset realizing the score.
    """

    subset: Subset
    minimizer: np.ndarray
    score: float
    worst_inner: Optional[Subset]


@dataclass
class ExactAlgorithmResult:
    """Output of a :class:`SubsetEnumerationAlgorithm` run."""

    output: np.ndarray
    selected_subset: Subset
    selected_score: float
    scores: List[SubsetScore] = field(repr=False, default_factory=list)

    @property
    def score_by_subset(self) -> Dict[Subset, float]:
        return {record.subset: record.score for record in self.scores}


class SubsetEnumerationAlgorithm:
    """Server-side implementation of the achievability-proof algorithm.

    Parameters
    ----------
    n, f:
        System size and fault bound; requires ``2 f < n``.
    solver:
        Subset-aggregate argmin solver (closed form for quadratics by
        default).
    max_subset_solves:
        Complexity budget: upper bound on the number of distinct aggregate
        argmin problems the run may solve. Configurations exceeding it raise
        :class:`InfeasibleConfigurationError` — this algorithm is a
        feasibility witness, not a practical method, and the guard makes
        that explicit.
    """

    def __init__(
        self,
        n: int,
        f: int,
        solver: Optional[ArgminSolver] = None,
        max_subset_solves: int = 200_000,
    ):
        check_fault_bound(n, f)
        self._n = int(n)
        self._f = int(f)
        self._solver = solver if solver is not None else default_solver
        self._max_subset_solves = int(max_subset_solves)

    @property
    def n(self) -> int:
        return self._n

    @property
    def f(self) -> int:
        return self._f

    def estimated_subset_solves(self) -> int:
        """Number of distinct argmin problems a run will solve."""
        n, f = self._n, self._f
        outer = comb(n, n - f)
        inner = comb(n, n - 2 * f)  # inner subsets are shared across outers
        return outer + inner

    def run(self, costs: Sequence[CostFunction], keep_scores: bool = False) -> ExactAlgorithmResult:
        """Execute Steps 2-3 on the received cost functions.

        Parameters
        ----------
        costs:
            The ``n`` received cost functions, indexed by agent. Byzantine
            agents may have sent arbitrary (but well-formed) costs.
        keep_scores:
            Retain every candidate subset's :class:`SubsetScore` for
            inspection (used by the E4 experiment).
        """
        costs = list(costs)
        if len(costs) != self._n:
            raise InvalidParameterError(
                f"expected {self._n} cost functions, got {len(costs)}"
            )
        if self.estimated_subset_solves() > self._max_subset_solves:
            raise InfeasibleConfigurationError(
                f"subset enumeration needs ~{self.estimated_subset_solves()} argmin "
                f"solves, beyond the budget of {self._max_subset_solves}; this "
                "algorithm is exponential by design — reduce n or raise the budget"
            )
        n, f = self._n, self._f
        if f == 0:
            full = tuple(range(n))
            argmin_set = self._solver(costs, full)
            point = argmin_set.project(np.zeros(costs[0].dimension))
            record = SubsetScore(subset=full, minimizer=point, score=0.0, worst_inner=None)
            return ExactAlgorithmResult(
                output=point,
                selected_subset=full,
                selected_score=0.0,
                scores=[record] if keep_scores else [],
            )

        inner_cache: Dict[Subset, ArgminSet] = {}

        def inner_argmin(subset: Subset) -> ArgminSet:
            if subset not in inner_cache:
                inner_cache[subset] = self._solver(costs, subset)
            return inner_cache[subset]

        best: Optional[SubsetScore] = None
        records: List[SubsetScore] = []
        for outer in iter_fixed_size_subsets(range(n), n - f):
            outer_set = self._solver(costs, outer)
            x_outer = outer_set.project(np.zeros(costs[0].dimension))
            # Plain argmax with strict improvement: ties keep the first
            # (lexicographically smallest) inner subset encountered.
            score = -1.0
            worst_inner: Optional[Subset] = None
            for inner in iter_fixed_size_subsets(outer, n - 2 * f):
                distance = inner_argmin(inner).distance_to(x_outer)
                if distance > score:
                    score = distance
                    worst_inner = inner
            record = SubsetScore(
                subset=outer, minimizer=x_outer, score=score, worst_inner=worst_inner
            )
            if keep_scores:
                records.append(record)
            if best is None or record.score < best.score:
                best = record
        assert best is not None  # n >= 1 guarantees at least one subset
        return ExactAlgorithmResult(
            output=best.minimizer.copy(),
            selected_subset=best.subset,
            selected_score=best.score,
            scores=records,
        )
