"""Core theory of the paper: redundancy, resilience, and the exact algorithm.

This package holds the machinery that corresponds one-to-one with the
definitions and theorems of *Fault-Tolerance in Distributed Optimization:
The Case of Redundancy* (Gupta & Vaidya, PODC 2020):

- :mod:`repro.core.geometry` — set distances used by the definitions;
- :mod:`repro.core.redundancy` — the 2f-redundancy property (Definition 1)
  and its quantitative margin;
- :mod:`repro.core.resilience` — evaluating whether an algorithm output
  achieves exact fault-tolerance;
- :mod:`repro.core.exact_algorithm` — the constructive subset-enumeration
  algorithm from the achievability proof;
- :mod:`repro.core.conditions` — regularity constants and the convergence
  condition of the CGE-filtered gradient-descent method.

Exports are resolved lazily (PEP 562): the geometry primitives here are a
dependency of :mod:`repro.optimization`, whose cost functions the redundancy
and condition modules consume in turn — eager imports would make that cycle
unresolvable.
"""

from importlib import import_module
from typing import TYPE_CHECKING

_EXPORTS = {
    # geometry
    "ArgminSet": "repro.core.geometry",
    "Singleton": "repro.core.geometry",
    "FinitePointSet": "repro.core.geometry",
    "AffineSubspace": "repro.core.geometry",
    "AxisAlignedBox": "repro.core.geometry",
    "distance_point_to_set": "repro.core.geometry",
    "hausdorff_distance": "repro.core.geometry",
    "pairwise_max_distance": "repro.core.geometry",
    # redundancy
    "RedundancyReport": "repro.core.redundancy",
    "check_2f_redundancy": "repro.core.redundancy",
    "measure_redundancy_margin": "repro.core.redundancy",
    "minimal_subset_rank_condition": "repro.core.redundancy",
    # resilience
    "ResilienceReport": "repro.core.resilience",
    "evaluate_resilience": "repro.core.resilience",
    "is_exactly_fault_tolerant": "repro.core.resilience",
    "distance_to_honest_minimizer": "repro.core.resilience",
    # exact algorithm
    "SubsetEnumerationAlgorithm": "repro.core.exact_algorithm",
    "SubsetScore": "repro.core.exact_algorithm",
    "ExactAlgorithmResult": "repro.core.exact_algorithm",
    # conditions
    "RegularityConstants": "repro.core.conditions",
    "regularity_of_quadratics": "repro.core.conditions",
    "estimate_lipschitz_smoothness": "repro.core.conditions",
    "estimate_strong_convexity": "repro.core.conditions",
    "estimate_gradient_skew": "repro.core.conditions",
    "cge_alpha": "repro.core.conditions",
    "cge_error_radius": "repro.core.conditions",
    "cge_max_tolerable_faults": "repro.core.conditions",
    "cwtm_error_radius": "repro.core.conditions",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}") from None
    module = import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.core.conditions import (
        RegularityConstants,
        cge_alpha,
        cge_error_radius,
        cge_max_tolerable_faults,
        cwtm_error_radius,
        estimate_gradient_skew,
        estimate_lipschitz_smoothness,
        estimate_strong_convexity,
        regularity_of_quadratics,
    )
    from repro.core.exact_algorithm import (
        ExactAlgorithmResult,
        SubsetEnumerationAlgorithm,
        SubsetScore,
    )
    from repro.core.geometry import (
        AffineSubspace,
        ArgminSet,
        AxisAlignedBox,
        FinitePointSet,
        Singleton,
        distance_point_to_set,
        hausdorff_distance,
        pairwise_max_distance,
    )
    from repro.core.redundancy import (
        RedundancyReport,
        check_2f_redundancy,
        measure_redundancy_margin,
        minimal_subset_rank_condition,
    )
    from repro.core.resilience import (
        ResilienceReport,
        distance_to_honest_minimizer,
        evaluate_resilience,
        is_exactly_fault_tolerant,
    )
