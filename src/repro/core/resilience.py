"""Evaluating exact fault-tolerance of an algorithm's output.

An execution's output ``x̂`` achieves *exact fault-tolerance* when it is a
minimum point of the honest aggregate ``Σ_{i ∈ H} Q_i``. Because the
adversary's identity is unknown to the algorithm, the operational criterion
quantifies over every ``(n − f)``-sized subset ``S`` of honest agents:
``x̂`` must be (within tolerance) a minimizer of each subset aggregate.

This module evaluates the criterion against a concrete output, reporting the
worst-case distance over all quantified subsets — which is also the ``ε``
for which the output would count as ``(f, ε)``-resilient, connecting the
exact theory to its approximate generalization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.geometry import ArgminSet
from repro.core.redundancy import ArgminSolver, default_solver
from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import CostFunction
from repro.utils.subsets import iter_fixed_size_subsets
from repro.utils.validation import check_vector

Subset = Tuple[int, ...]


@dataclass
class ResilienceReport:
    """How close an output is to minimizing every honest-subset aggregate.

    Attributes
    ----------
    epsilon:
        ``max_S dist(x̂, argmin Σ_{i ∈ S} Q_i)`` over all quantified honest
        subsets ``S`` — the tightest ``ε`` for which the output is
        ``(f, ε)``-resilient on this execution.
    exact:
        Whether ``epsilon <= tolerance`` (exact fault-tolerance achieved).
    worst_subset:
        The subset realizing ``epsilon``.
    per_subset:
        Distance for every quantified subset.
    """

    epsilon: float
    exact: bool
    tolerance: float
    worst_subset: Optional[Subset]
    per_subset: Dict[Subset, float] = field(default_factory=dict, repr=False)

    def summary(self) -> str:
        verdict = "exact" if self.exact else f"approximate (ε={self.epsilon:.6g})"
        return f"fault-tolerance: {verdict} over {len(self.per_subset)} honest subsets"


def evaluate_resilience(
    output,
    costs: Sequence[CostFunction],
    honest: Sequence[int],
    f: int,
    solver: Optional[ArgminSolver] = None,
    tolerance: float = 1e-5,
) -> ResilienceReport:
    """Evaluate an algorithm output against the fault-tolerance criterion.

    Parameters
    ----------
    output:
        The point ``x̂`` produced by the algorithm.
    costs:
        All ``n`` agents' cost functions (Byzantine entries are ignored —
        only indices in ``honest`` are consulted).
    honest:
        Indices of the non-faulty agents; must number at least ``n − f``.
    f:
        Fault bound of the execution.
    solver:
        Subset-aggregate argmin solver; defaults to the closed-form/GD
        hybrid.
    tolerance:
        Distance below which the output counts as an exact minimizer.
    """
    costs = list(costs)
    n = len(costs)
    honest = sorted(set(int(i) for i in honest))
    if any(i < 0 or i >= n for i in honest):
        raise InvalidParameterError("honest indices out of range")
    if len(honest) < n - f:
        raise InvalidParameterError(
            f"at least n - f = {n - f} honest agents required, got {len(honest)}"
        )
    if solver is None:
        solver = default_solver
    dimension = costs[honest[0]].dimension
    x_hat = check_vector(output, dimension=dimension, name="output")
    per_subset: Dict[Subset, float] = {}
    worst: Optional[Subset] = None
    epsilon = 0.0
    for subset in iter_fixed_size_subsets(honest, n - f):
        argmin_set: ArgminSet = solver(costs, subset)
        distance = argmin_set.distance_to(x_hat)
        per_subset[subset] = distance
        if distance > epsilon or worst is None:
            epsilon = max(epsilon, distance)
            if distance >= epsilon:
                worst = subset
    return ResilienceReport(
        epsilon=epsilon,
        exact=epsilon <= tolerance,
        tolerance=tolerance,
        worst_subset=worst,
        per_subset=per_subset,
    )


def is_exactly_fault_tolerant(
    output,
    costs: Sequence[CostFunction],
    honest: Sequence[int],
    f: int,
    tolerance: float = 1e-5,
    solver: Optional[ArgminSolver] = None,
) -> bool:
    """Boolean form: is ``output`` an exact honest minimizer (within tolerance)?"""
    report = evaluate_resilience(
        output, costs, honest, f, solver=solver, tolerance=tolerance
    )
    return report.exact


def distance_to_honest_minimizer(
    output,
    costs: Sequence[CostFunction],
    honest: Sequence[int],
    solver: Optional[ArgminSolver] = None,
) -> float:
    """Distance from ``output`` to ``argmin Σ_{i ∈ honest} Q_i`` (all honest agents)."""
    if solver is None:
        solver = default_solver
    costs = list(costs)
    subset = tuple(sorted(int(i) for i in honest))
    argmin_set = solver(costs, subset)
    dimension = costs[subset[0]].dimension
    x_hat = check_vector(output, dimension=dimension, name="output")
    return argmin_set.distance_to(x_hat)
