"""The 2f-redundancy property (Definition 1) and its quantitative margin.

The paper's central characterization: exact fault-tolerance with up to ``f``
Byzantine agents is achievable **iff** for every pair of subsets
``Ŝ ⊆ S ⊆ {1..n}`` with ``|S| = n − f`` and ``|Ŝ| >= n − 2f``::

    argmin Σ_{i ∈ Ŝ} Q_i  =  argmin Σ_{i ∈ S} Q_i .

This module checks the property exhaustively (or by reproducible sampling
for large systems) and, beyond the boolean answer, measures the *redundancy
margin*: the largest Hausdorff distance between the two argmin sets over all
quantified pairs. A margin of ``0`` is exactly 2f-redundancy; a positive
margin quantifies how badly noise has broken it, which drives the
redundancy-violation experiments (E5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import inf
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.geometry import ArgminSet, hausdorff_distance
from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import CostFunction
from repro.optimization.gd import solve_argmin
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.subsets import (
    count_redundancy_pairs,
    iter_fixed_size_subsets,
    iter_redundancy_pairs,
)
from repro.utils.validation import check_fault_bound

Subset = Tuple[int, ...]
ArgminSolver = Callable[[Sequence[CostFunction], Subset], ArgminSet]


def default_solver(costs: Sequence[CostFunction], subset: Subset) -> ArgminSet:
    """Default subset-aggregate argmin solver (closed form when quadratic)."""
    return solve_argmin(costs, indices=subset)


@dataclass
class RedundancyReport:
    """Result of a redundancy check.

    Attributes
    ----------
    n, f:
        System parameters the property was checked against.
    margin:
        Largest Hausdorff distance between inner- and outer-subset argmin
        sets over all checked pairs — the smallest ``ε`` such that the
        checked pairs satisfy an ``ε``-relaxed redundancy. ``0`` means
        exact 2f-redundancy held on every checked pair.
    holds:
        Whether ``margin <= tolerance``.
    tolerance:
        Numerical tolerance used for the boolean verdict.
    worst_pair:
        The ``(S, Ŝ)`` pair realizing the margin.
    pairs_checked:
        Number of pairs evaluated.
    pairs_total:
        Number of pairs the full quantifier ranges over; larger than
        ``pairs_checked`` when sampling was used.
    exhaustive:
        Whether every quantified pair was evaluated.
    per_pair:
        Optional detailed mapping ``(S, Ŝ) → distance`` (populated when
        ``keep_details`` is requested).
    """

    n: int
    f: int
    margin: float
    holds: bool
    tolerance: float
    worst_pair: Optional[Tuple[Subset, Subset]]
    pairs_checked: int
    pairs_total: int
    exhaustive: bool
    per_pair: Dict[Tuple[Subset, Subset], float] = field(default_factory=dict, repr=False)

    def summary(self) -> str:
        """One-line human-readable summary."""
        verdict = "holds" if self.holds else "VIOLATED"
        scope = "exhaustive" if self.exhaustive else f"sampled {self.pairs_checked}/{self.pairs_total}"
        return (
            f"2f-redundancy (n={self.n}, f={self.f}) {verdict}: "
            f"margin={self.margin:.6g} (tol={self.tolerance:g}, {scope})"
        )


def _iterate_pairs(
    n: int, f: int, max_pairs: Optional[int], seed: SeedLike
) -> Tuple[Iterable[Tuple[Subset, Subset]], int, bool]:
    total = count_redundancy_pairs(n, f)
    if max_pairs is None or total <= max_pairs:
        return iter_redundancy_pairs(n, f), total, True
    rng = ensure_rng(seed)
    agents = list(range(n))
    outer_size = n - f
    inner_min = max(n - 2 * f, 1)
    pairs: List[Tuple[Subset, Subset]] = []
    seen = set()
    # Sample outer subsets uniformly, then inner subsets uniformly within.
    while len(pairs) < max_pairs:
        outer = tuple(sorted(rng.choice(n, size=outer_size, replace=False)))
        inner_size = int(rng.integers(inner_min, outer_size))
        positions = rng.choice(outer_size, size=inner_size, replace=False)
        inner = tuple(sorted(outer[p] for p in positions))
        key = (outer, inner)
        if key not in seen:
            seen.add(key)
            pairs.append(key)
    return pairs, total, False


def measure_redundancy_margin(
    costs: Sequence[CostFunction],
    f: int,
    solver: Optional[ArgminSolver] = None,
    max_pairs: Optional[int] = 20_000,
    seed: SeedLike = 0,
    keep_details: bool = False,
    tolerance: float = 1e-6,
) -> RedundancyReport:
    """Measure the redundancy margin of ``costs`` for fault bound ``f``.

    Parameters
    ----------
    costs:
        The ``n`` agents' local cost functions (assumed honest — the
        property is about the system design, not an execution).
    f:
        Fault bound; requires ``2 f < n``.
    solver:
        Maps ``(costs, subset)`` to the aggregate's argmin set. Defaults to
        the closed-form/GD hybrid :func:`default_solver`.
    max_pairs:
        Cap on the number of ``(S, Ŝ)`` pairs evaluated; beyond it, a
        reproducible uniform sample is drawn (seeded by ``seed``).
    keep_details:
        Record every pair's distance in :attr:`RedundancyReport.per_pair`.
    tolerance:
        Numerical slack for declaring that the property *holds*.
    """
    costs = list(costs)
    n = len(costs)
    check_fault_bound(n, f)
    if f == 0:
        # No quantified pairs: the property is vacuously exact.
        return RedundancyReport(
            n=n, f=0, margin=0.0, holds=True, tolerance=tolerance,
            worst_pair=None, pairs_checked=0, pairs_total=0, exhaustive=True,
        )
    if solver is None:
        solver = default_solver
    pairs, total, exhaustive = _iterate_pairs(n, f, max_pairs, seed)
    cache: Dict[Subset, ArgminSet] = {}

    def argmin_of(subset: Subset) -> ArgminSet:
        if subset not in cache:
            cache[subset] = solver(costs, subset)
        return cache[subset]

    margin = 0.0
    worst: Optional[Tuple[Subset, Subset]] = None
    details: Dict[Tuple[Subset, Subset], float] = {}
    checked = 0
    for outer, inner in pairs:
        distance = hausdorff_distance(argmin_of(outer), argmin_of(inner))
        checked += 1
        if keep_details:
            details[(outer, inner)] = distance
        if distance > margin:
            margin = distance
            worst = (outer, inner)
    return RedundancyReport(
        n=n,
        f=f,
        margin=margin,
        holds=margin <= tolerance,
        tolerance=tolerance,
        worst_pair=worst,
        pairs_checked=checked,
        pairs_total=total,
        exhaustive=exhaustive,
        per_pair=details,
    )


def check_2f_redundancy(
    costs: Sequence[CostFunction],
    f: int,
    solver: Optional[ArgminSolver] = None,
    tolerance: float = 1e-6,
    max_pairs: Optional[int] = 20_000,
    seed: SeedLike = 0,
) -> bool:
    """Boolean form of Definition 1: does 2f-redundancy hold (within ``tolerance``)?"""
    report = measure_redundancy_margin(
        costs, f, solver=solver, max_pairs=max_pairs, seed=seed, tolerance=tolerance
    )
    return report.holds


def minimal_subset_rank_condition(matrix, f: int) -> bool:
    """Specialized 2f-redundancy witness for consistent least squares.

    For the paper's regression workload with noiseless observations
    ``b = A x*``, 2f-redundancy holds iff every ``(n − 2f)``-row submatrix of
    ``A`` has full column rank (then every subset aggregate minimizes
    uniquely at ``x*``). This check is much cheaper than solving argmins.
    """
    import numpy as np

    A = np.asarray(matrix, dtype=float)
    if A.ndim != 2:
        raise InvalidParameterError("matrix must be 2-D")
    n, d = A.shape
    check_fault_bound(n, f)
    size = n - 2 * f
    if size < d:
        return False
    for subset in iter_fixed_size_subsets(range(n), size):
        submatrix = A[list(subset)]
        if np.linalg.matrix_rank(submatrix) < d:
            return False
    return True
