"""Set-valued geometry underlying the paper's definitions.

The 2f-redundancy property compares *sets* of minimum points, and the
resilience definitions measure the Euclidean distance from a point to such a
set. For the cost families in this library, argmin sets take one of three
concrete shapes, each represented by a small class:

- :class:`Singleton` — the unique minimizer of a strongly convex aggregate;
- :class:`FinitePointSet` — a finite collection of candidate minimizers
  (e.g. produced by multi-start numerical minimization of a non-convex cost);
- :class:`AffineSubspace` — the solution set of a rank-deficient
  least-squares problem, ``{p + V t : t ∈ R^k}`` with orthonormal ``V``.

All classes implement ``distance_to(x)`` (the metric projection distance)
and ``support_points()`` (a finite witness sample used for Hausdorff
estimation between sets that have no closed-form pairwise distance).
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.exceptions import DimensionMismatchError, InvalidParameterError
from repro.utils.validation import check_matrix, check_vector


class ArgminSet(abc.ABC):
    """A non-empty closed subset of ``R^d`` arising as a set of minimizers."""

    def __init__(self, dimension: int):
        if dimension <= 0:
            raise InvalidParameterError(f"dimension must be positive, got {dimension}")
        self._dimension = int(dimension)

    @property
    def dimension(self) -> int:
        """Ambient dimension ``d``."""
        return self._dimension

    @abc.abstractmethod
    def distance_to(self, x) -> float:
        """Euclidean distance ``dist(x, X) = inf_{y ∈ X} ||x - y||``."""

    @abc.abstractmethod
    def project(self, x) -> np.ndarray:
        """A nearest point of the set to ``x`` (ties broken arbitrarily)."""

    @abc.abstractmethod
    def support_points(self) -> np.ndarray:
        """A finite ``(m, d)`` sample of points witnessing the set's extent."""

    def contains(self, x, tol: float = 1e-9) -> bool:
        """Whether ``x`` lies within ``tol`` of the set."""
        return self.distance_to(x) <= tol

    def _check_dimension(self, x) -> np.ndarray:
        return check_vector(x, dimension=self._dimension, name="x")


class Singleton(ArgminSet):
    """The argmin set of a cost with a unique minimizer."""

    def __init__(self, point):
        point = check_vector(point, name="point")
        super().__init__(point.shape[0])
        self._point = point

    @property
    def point(self) -> np.ndarray:
        """The unique element of the set."""
        return self._point.copy()

    def distance_to(self, x) -> float:
        x = self._check_dimension(x)
        return float(np.linalg.norm(x - self._point))

    def project(self, x) -> np.ndarray:
        self._check_dimension(x)
        return self._point.copy()

    def support_points(self) -> np.ndarray:
        return self._point.reshape(1, -1).copy()

    def __repr__(self) -> str:
        return f"Singleton({np.array2string(self._point, precision=4)})"


class FinitePointSet(ArgminSet):
    """A finite set of candidate minimizers."""

    def __init__(self, points):
        points = check_matrix(points, name="points")
        if points.shape[0] == 0:
            raise InvalidParameterError("FinitePointSet requires at least one point")
        super().__init__(points.shape[1])
        self._points = points

    @property
    def points(self) -> np.ndarray:
        """The ``(m, d)`` array of member points."""
        return self._points.copy()

    def distance_to(self, x) -> float:
        x = self._check_dimension(x)
        return float(np.min(np.linalg.norm(self._points - x, axis=1)))

    def project(self, x) -> np.ndarray:
        x = self._check_dimension(x)
        index = int(np.argmin(np.linalg.norm(self._points - x, axis=1)))
        return self._points[index].copy()

    def support_points(self) -> np.ndarray:
        return self._points.copy()

    def __repr__(self) -> str:
        return f"FinitePointSet(m={self._points.shape[0]}, d={self.dimension})"


class AffineSubspace(ArgminSet):
    """An affine solution set ``{p + V t}`` with orthonormal direction basis ``V``.

    ``V`` has shape ``(d, k)`` with ``0 <= k <= d``; ``k = 0`` degenerates to
    a singleton. The orthonormality of ``V`` is validated on construction.
    """

    _SUPPORT_SCALE = 1.0

    def __init__(self, point, directions=None):
        point = check_vector(point, name="point")
        super().__init__(point.shape[0])
        self._point = point
        if directions is None:
            directions = np.zeros((point.shape[0], 0))
        directions = np.asarray(directions, dtype=float)
        if directions.ndim != 2 or directions.shape[0] != point.shape[0]:
            raise DimensionMismatchError(
                f"directions must have shape (d, k) with d={point.shape[0]}, "
                f"got {directions.shape}"
            )
        if directions.shape[1] > 0:
            gram = directions.T @ directions
            if not np.allclose(gram, np.eye(directions.shape[1]), atol=1e-8):
                raise InvalidParameterError("directions must be orthonormal columns")
        self._directions = directions

    @property
    def point(self) -> np.ndarray:
        """A particular point of the subspace."""
        return self._point.copy()

    @property
    def directions(self) -> np.ndarray:
        """Orthonormal basis ``(d, k)`` of the subspace's direction space."""
        return self._directions.copy()

    @property
    def codimension(self) -> int:
        return self.dimension - self._directions.shape[1]

    def distance_to(self, x) -> float:
        x = self._check_dimension(x)
        return float(np.linalg.norm(x - self.project(x)))

    def project(self, x) -> np.ndarray:
        x = self._check_dimension(x)
        delta = x - self._point
        if self._directions.shape[1] == 0:
            return self._point.copy()
        coeffs = self._directions.T @ delta
        return self._point + self._directions @ coeffs

    def support_points(self) -> np.ndarray:
        if self._directions.shape[1] == 0:
            return self._point.reshape(1, -1).copy()
        offsets = np.concatenate(
            [
                np.zeros((1, self._directions.shape[1])),
                self._SUPPORT_SCALE * np.eye(self._directions.shape[1]),
                -self._SUPPORT_SCALE * np.eye(self._directions.shape[1]),
            ]
        )
        return self._point + offsets @ self._directions.T

    def is_parallel_to(self, other: "AffineSubspace", tol: float = 1e-8) -> bool:
        """Whether two subspaces share the same direction space."""
        if self._directions.shape[1] != other._directions.shape[1]:
            return False
        if self._directions.shape[1] == 0:
            return True
        # Same span iff projecting one basis onto the other loses nothing.
        projected = other._directions @ (other._directions.T @ self._directions)
        return bool(np.allclose(projected, self._directions, atol=tol))

    def __repr__(self) -> str:
        return f"AffineSubspace(d={self.dimension}, k={self._directions.shape[1]})"


def distance_point_to_set(x, target: ArgminSet) -> float:
    """Euclidean distance from point ``x`` to the set ``target`` (eq. (3))."""
    return target.distance_to(x)


def hausdorff_distance(first: ArgminSet, second: ArgminSet) -> float:
    """Euclidean Hausdorff distance between two argmin sets (eq. (4)).

    Exact for every pairing of :class:`Singleton`, :class:`FinitePointSet`
    and *parallel* :class:`AffineSubspace` instances. Non-parallel affine
    subspaces have unbounded one-sided deviation; ``inf`` is returned, which
    is the mathematically correct value of the supremum.
    """
    if first.dimension != second.dimension:
        raise DimensionMismatchError(
            f"sets live in different dimensions: {first.dimension} vs {second.dimension}"
        )
    if isinstance(first, AffineSubspace) and isinstance(second, AffineSubspace):
        if first.directions.shape[1] or second.directions.shape[1]:
            if not first.is_parallel_to(second):
                return float("inf")
            return first.distance_to(second.point)
    one_sided_forward = _one_sided_deviation(first, second)
    one_sided_backward = _one_sided_deviation(second, first)
    return max(one_sided_forward, one_sided_backward)


def _one_sided_deviation(source: ArgminSet, target: ArgminSet) -> float:
    """``sup_{x ∈ source} dist(x, target)`` via the source's support points.

    Exact when ``source`` is finite (singleton / finite set); for affine
    subspaces the callers above handle the parallel case exactly before
    reaching here.
    """
    points = source.support_points()
    return float(max(target.distance_to(p) for p in points))


def pairwise_max_distance(points: Sequence[np.ndarray]) -> float:
    """Largest pairwise Euclidean distance among ``points`` (set diameter)."""
    stacked = np.asarray(list(points), dtype=float)
    if stacked.ndim != 2:
        raise DimensionMismatchError("points must stack into an (m, d) array")
    if stacked.shape[0] < 2:
        return 0.0
    diffs = stacked[:, None, :] - stacked[None, :, :]
    return float(np.max(np.linalg.norm(diffs, axis=2)))


class AxisAlignedBox(ArgminSet):
    """A compact axis-aligned box ``[lower, upper]`` of minimizers.

    This is the argmin-set shape of *separable piecewise-linear* aggregates
    (e.g. sums of weighted absolute deviations, whose per-coordinate argmin
    is a weighted-median interval). Distance and projection are exact;
    Hausdorff distances against other sets use the corner points, which is
    exact because ``dist(·, S)`` is convex and therefore maximized over a
    box at one of its extreme points.
    """

    _MAX_SUPPORT_DIMENSION = 16

    def __init__(self, lower, upper):
        lower = check_vector(lower, name="lower")
        upper = check_vector(upper, dimension=lower.shape[0], name="upper")
        if np.any(lower > upper + 1e-12):
            raise InvalidParameterError("lower bound exceeds upper bound")
        super().__init__(lower.shape[0])
        self._lower = lower
        self._upper = np.maximum(upper, lower)

    @property
    def lower(self) -> np.ndarray:
        return self._lower.copy()

    @property
    def upper(self) -> np.ndarray:
        return self._upper.copy()

    def is_degenerate(self, tol: float = 1e-12) -> bool:
        """Whether the box collapses to a single point."""
        return bool(np.all(self._upper - self._lower <= tol))

    def distance_to(self, x) -> float:
        x = self._check_dimension(x)
        clipped = np.clip(x, self._lower, self._upper)
        return float(np.linalg.norm(x - clipped))

    def project(self, x) -> np.ndarray:
        x = self._check_dimension(x)
        return np.clip(x, self._lower, self._upper)

    def support_points(self) -> np.ndarray:
        if self.dimension > self._MAX_SUPPORT_DIMENSION:
            raise InvalidParameterError(
                f"corner enumeration limited to dimension "
                f"{self._MAX_SUPPORT_DIMENSION}; got {self.dimension}"
            )
        corners = np.array(
            np.meshgrid(*[[lo, hi] for lo, hi in zip(self._lower, self._upper)],
                        indexing="ij")
        ).reshape(self.dimension, -1).T
        return np.unique(corners, axis=0)

    def __repr__(self) -> str:
        return f"AxisAlignedBox(d={self.dimension})"
