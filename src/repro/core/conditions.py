"""Regularity constants and the convergence conditions of the filtered DGD.

The convergence guarantee for gradient-descent with the CGE filter requires
(besides 2f-redundancy):

- **Lipschitz smoothness** (Assumption 2): ``||∇Q_i(x) − ∇Q_i(x')|| <= μ ||x − x'||``
  for every honest agent ``i``;
- **Strong convexity of honest averages** (Assumption 3): the average cost
  of every ``(n − f)``-sized honest set is ``γ``-strongly convex;
- a bounded fraction of faults: ``α = 1 − (f/n)(1 + 2 μ/γ) > 0``, i.e.
  ``f/n < γ / (γ + 2 μ)`` — in particular ``f < n/3`` since ``γ <= μ``.

This module computes the constants exactly for quadratic families and
estimates them by sampling for general differentiable costs, and evaluates
the resulting conditions and error radii. Error-radius formulas take the
redundancy margin ``ε`` as input; with exact redundancy (``ε = 0``) they
reduce to exact convergence, which is the paper's headline regime.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb, inf, sqrt
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import CostFunction, MeanCost, QuadraticCost, ScaledCost, SumCost
from repro.optimization.projections import ConvexSet
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.subsets import iter_fixed_size_subsets
from repro.utils.validation import check_fault_bound


@dataclass(frozen=True)
class RegularityConstants:
    """Smoothness/convexity constants of a family of honest costs.

    Attributes
    ----------
    mu:
        Lipschitz-smoothness constant of individual honest gradients
        (Assumption 2).
    gamma:
        Strong-convexity constant of the worst ``(n − f)``-honest average
        cost (Assumption 3).
    dimension:
        Ambient dimension ``d``.
    exact:
        Whether the constants were derived in closed form (quadratics) or
        estimated by sampling.
    """

    mu: float
    gamma: float
    dimension: int
    exact: bool

    @property
    def condition_number(self) -> float:
        if self.gamma <= 0:
            return inf
        return self.mu / self.gamma

    def validate(self) -> None:
        if self.mu <= 0:
            raise InvalidParameterError(f"mu must be positive, got {self.mu}")
        if self.gamma <= 0:
            raise InvalidParameterError(f"gamma must be positive, got {self.gamma}")
        if self.gamma > self.mu + 1e-9:
            raise InvalidParameterError(
                f"gamma ({self.gamma}) cannot exceed mu ({self.mu}); "
                "Assumptions 2-3 force gamma <= mu"
            )


def _as_quadratic(cost: CostFunction) -> Optional[QuadraticCost]:
    weight = 1.0
    inner = cost
    while isinstance(inner, ScaledCost):
        weight *= inner.weight
        inner = inner.base
    if isinstance(inner, QuadraticCost):
        if weight == 1.0:
            return inner
        return QuadraticCost(weight * inner.P, weight * inner.q, weight * inner.c)
    if isinstance(inner, SumCost) and inner.is_quadratic:
        # Reuse the assembled internal quadratic through the public argmin path.
        total = inner
        P = sum((m.hessian(np.zeros(m.dimension)) for m in total.members), np.zeros((cost.dimension, cost.dimension)))
        q = total.gradient(np.zeros(cost.dimension))
        return QuadraticCost(weight * P, weight * q)
    return None


def regularity_of_quadratics(
    costs: Sequence[CostFunction], f: int, honest: Optional[Sequence[int]] = None
) -> RegularityConstants:
    """Exact ``(μ, γ)`` for quadratic honest costs.

    ``μ`` is the largest Hessian eigenvalue over honest agents; ``γ`` is the
    smallest eigenvalue of the *average* Hessian over every honest
    ``(n − f)``-subset (the binding subset is reported implicitly via the
    minimum). Raises when any honest cost is not quadratic.
    """
    costs = list(costs)
    n = len(costs)
    check_fault_bound(n, f)
    honest = list(range(n)) if honest is None else sorted(set(int(i) for i in honest))
    quadratics = []
    for index in honest:
        quad = _as_quadratic(costs[index])
        if quad is None:
            raise InvalidParameterError(
                f"cost {index} is not quadratic; use the sampling estimators instead"
            )
        quadratics.append(quad)
    hessians = [quad.P for quad in quadratics]
    mu = max(float(np.linalg.eigvalsh(H)[-1]) for H in hessians)
    dimension = quadratics[0].dimension
    gamma = inf
    subset_size = n - f
    for subset in iter_fixed_size_subsets(range(len(hessians)), min(subset_size, len(hessians))):
        average = sum(hessians[i] for i in subset) / len(subset)
        gamma = min(gamma, float(np.linalg.eigvalsh(average)[0]))
    constants = RegularityConstants(mu=mu, gamma=max(gamma, 0.0), dimension=dimension, exact=True)
    return constants


def estimate_lipschitz_smoothness(
    costs: Sequence[CostFunction],
    region: ConvexSet,
    num_samples: int = 512,
    seed: SeedLike = 0,
) -> float:
    """Sampled lower bound on the worst honest smoothness constant ``μ``.

    Draws random pairs in (a box around) ``region`` and maximizes the ratio
    ``||∇Q(x) − ∇Q(y)|| / ||x − y||``. A lower bound by construction; with
    enough samples it is tight in practice for the library's cost families.
    """
    rng = ensure_rng(seed)
    best = 0.0
    for cost in costs:
        for _ in range(num_samples):
            x = _sample_in(region, rng)
            y = _sample_in(region, rng)
            gap = float(np.linalg.norm(x - y))
            if gap < 1e-12:
                continue
            ratio = float(np.linalg.norm(cost.gradient(x) - cost.gradient(y))) / gap
            best = max(best, ratio)
    return best


def estimate_strong_convexity(
    costs: Sequence[CostFunction],
    f: int,
    region: ConvexSet,
    num_samples: int = 512,
    seed: SeedLike = 0,
    honest: Optional[Sequence[int]] = None,
) -> float:
    """Sampled upper bound on the strong-convexity constant ``γ`` of Assumption 3.

    For every honest ``(n − f)``-subset's average cost, minimizes the ratio
    ``⟨∇Q(x) − ∇Q(y), x − y⟩ / ||x − y||²`` over sampled pairs.
    """
    costs = list(costs)
    n = len(costs)
    check_fault_bound(n, f)
    honest = list(range(n)) if honest is None else sorted(set(int(i) for i in honest))
    rng = ensure_rng(seed)
    worst = inf
    for subset in iter_fixed_size_subsets(honest, n - f):
        average = MeanCost([costs[i] for i in subset])
        for _ in range(num_samples):
            x = _sample_in(region, rng)
            y = _sample_in(region, rng)
            gap = x - y
            gap_sq = float(gap @ gap)
            if gap_sq < 1e-24:
                continue
            inner = float((average.gradient(x) - average.gradient(y)) @ gap)
            worst = min(worst, inner / gap_sq)
    return max(worst, 0.0) if worst is not inf else 0.0


def estimate_gradient_skew(
    costs: Sequence[CostFunction],
    region: ConvexSet,
    num_samples: int = 512,
    seed: SeedLike = 0,
) -> float:
    """Sampled gradient-skew constant ``λ`` between honest agents.

    ``λ`` bounds ``||∇Q_i(x) − ∇Q_j(x)|| <= λ max(||∇Q_i(x)||, ||∇Q_j(x)||)``
    for all honest pairs — the heterogeneity measure under which the
    coordinate-wise trimmed-mean filter admits guarantees. Always at most 2
    by the triangle inequality.
    """
    costs = list(costs)
    rng = ensure_rng(seed)
    worst = 0.0
    for _ in range(num_samples):
        x = _sample_in(region, rng)
        gradients = [cost.gradient(x) for cost in costs]
        norms = [float(np.linalg.norm(g)) for g in gradients]
        for i in range(len(costs)):
            for j in range(i + 1, len(costs)):
                reference = max(norms[i], norms[j])
                if reference < 1e-12:
                    continue
                skew = float(np.linalg.norm(gradients[i] - gradients[j])) / reference
                worst = max(worst, skew)
    return min(worst, 2.0)


def _sample_in(region: ConvexSet, rng: np.random.Generator) -> np.ndarray:
    """Draw a point in ``region`` by projecting a Gaussian sample."""
    raw = rng.normal(scale=1.0, size=region.dimension)
    return region.project(raw)


def cge_alpha(n: int, f: int, mu: float, gamma: float) -> float:
    """The CGE convergence margin ``α = 1 − (f/n)(1 + 2 μ/γ)``.

    Positive ``α`` is the paper's sufficient condition for the CGE-filtered
    gradient-descent method to converge to the honest minimizer (exactly,
    under 2f-redundancy).
    """
    check_fault_bound(n, f)
    if mu <= 0 or gamma <= 0:
        raise InvalidParameterError("mu and gamma must be positive")
    return 1.0 - (f / n) * (1.0 + 2.0 * mu / gamma)


def cge_max_tolerable_faults(n: int, mu: float, gamma: float) -> int:
    """Largest ``f`` with ``α > 0`` for the given constants (0 when none)."""
    if mu <= 0 or gamma <= 0:
        raise InvalidParameterError("mu and gamma must be positive")
    threshold = n * gamma / (gamma + 2.0 * mu)
    f = int(np.ceil(threshold)) - 1
    return max(min(f, (n - 1) // 2), 0)


def cge_error_radius(n: int, f: int, mu: float, gamma: float, epsilon: float = 0.0) -> float:
    """Asymptotic error radius ``(4 μ f / (α γ)) ε`` of the CGE-filtered DGD.

    With exact 2f-redundancy (``ε = 0``) the radius is 0 — exact
    convergence, the paper's headline result. Infinite when the fault
    fraction violates ``α > 0``.
    """
    if epsilon < 0:
        raise InvalidParameterError(f"epsilon must be non-negative, got {epsilon}")
    alpha = cge_alpha(n, f, mu, gamma)
    if alpha <= 0:
        return inf
    if f == 0:
        return 0.0
    return (4.0 * mu * f / (alpha * gamma)) * epsilon


def cwtm_error_radius(
    n: int, f: int, mu: float, gamma: float, skew: float, dimension: int, epsilon: float = 0.0
) -> float:
    """Asymptotic error radius of the trimmed-mean-filtered DGD.

    Valid when ``λ < γ / (μ √d)``; returns ``inf`` otherwise. With
    ``ε = 0`` the radius is 0: under exact redundancy and small skew, the
    trimmed mean also achieves exact convergence.
    """
    check_fault_bound(n, f)
    if epsilon < 0:
        raise InvalidParameterError(f"epsilon must be non-negative, got {epsilon}")
    if mu <= 0 or gamma <= 0 or dimension <= 0:
        raise InvalidParameterError("mu, gamma and dimension must be positive")
    if skew < 0:
        raise InvalidParameterError(f"skew must be non-negative, got {skew}")
    if f == 0:
        return 0.0
    root_d = sqrt(dimension)
    denominator = gamma - root_d * mu * skew
    if denominator <= 0:
        return inf
    return (2.0 * root_d * n * mu * skew / denominator) * epsilon
