"""Shared low-level helpers: RNG handling, validation, subsets, atomic IO."""

from repro.utils.atomicio import (
    payload_checksum,
    read_json_checked,
    write_json_atomic,
)
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.subsets import (
    count_redundancy_pairs,
    iter_fixed_size_subsets,
    iter_redundancy_pairs,
    sample_fixed_size_subsets,
)
from repro.utils.validation import (
    check_fault_bound,
    check_matrix,
    check_probability,
    check_vector,
    require,
)

__all__ = [
    "payload_checksum",
    "read_json_checked",
    "write_json_atomic",
    "ensure_rng",
    "spawn_rngs",
    "iter_fixed_size_subsets",
    "sample_fixed_size_subsets",
    "iter_redundancy_pairs",
    "count_redundancy_pairs",
    "require",
    "check_vector",
    "check_matrix",
    "check_probability",
    "check_fault_bound",
]
