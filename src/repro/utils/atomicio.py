"""Atomic, checksum-verified JSON file IO.

The sweep trace cache (and any other on-disk state the library keeps) must
survive the failure modes real infrastructure exhibits: a process killed
mid-write leaves a truncated file, a flaky disk or concurrent writer can
corrupt bytes in place, and a partially synced directory can expose a file
that parses but carries the wrong content. Two invariants defend against
all of them:

- **Atomic visibility.** :func:`write_json_atomic` serializes to a
  temporary sibling and ``os.replace``\\ s it into place, so a reader never
  observes a half-written document — it sees the old file, the new file,
  or no file.
- **End-to-end integrity.** Documents are wrapped as
  ``{"sha256": <hexdigest>, "payload": <document>}`` where the digest is
  taken over the canonical JSON encoding of the payload.
  :func:`read_json_checked` recomputes and compares it, raising
  :class:`~repro.exceptions.CacheIntegrityError` on any malformed,
  truncated, or bit-flipped file instead of returning poisoned data.

Legacy documents written before checksumming (bare payloads with no
wrapper) are still readable: they parse, carry no digest, and are returned
as-is — callers that require integrity can reject them via
``require_checksum=True``.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict

from repro.exceptions import CacheIntegrityError

__all__ = [
    "CHECKSUM_KEY",
    "PAYLOAD_KEY",
    "payload_checksum",
    "write_json_atomic",
    "read_json_checked",
]

#: Wrapper field holding the hex digest of the canonical payload encoding.
CHECKSUM_KEY = "sha256"
#: Wrapper field holding the document itself.
PAYLOAD_KEY = "payload"


def _canonical(payload: Any) -> str:
    """The canonical JSON encoding the checksum is computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_checksum(payload: Any) -> str:
    """SHA-256 hex digest of ``payload``'s canonical JSON encoding."""
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


def write_json_atomic(path: str, payload: Any, checksum: bool = True) -> str:
    """Write ``payload`` as JSON to ``path`` atomically; return ``path``.

    With ``checksum=True`` (the default) the document is wrapped as
    ``{"sha256": ..., "payload": ...}`` so :func:`read_json_checked` can
    verify it end-to-end. The bytes land in a temporary sibling first and
    are renamed into place, so concurrent readers never see a partial
    file and concurrent writers of identical content are idempotent.
    """
    document: Any = payload
    if checksum:
        document = {CHECKSUM_KEY: payload_checksum(payload), PAYLOAD_KEY: payload}
    tmp_path = f"{path}.tmp.{os.getpid()}"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    os.replace(tmp_path, path)
    return path


def _is_wrapped(document: Any) -> bool:
    return (
        isinstance(document, dict)
        and set(document) == {CHECKSUM_KEY, PAYLOAD_KEY}
        and isinstance(document.get(CHECKSUM_KEY), str)
    )


def read_json_checked(path: str, require_checksum: bool = False) -> Any:
    """Read a JSON document from ``path``, verifying its checksum wrapper.

    Raises
    ------
    CacheIntegrityError
        If the file is unreadable, is not valid JSON (e.g. truncated by a
        killed writer), carries a checksum that does not match its payload
        (bit-flip / in-place corruption), or — with
        ``require_checksum=True`` — lacks a checksum wrapper entirely.

    Returns
    -------
    The unwrapped payload for checksummed documents; the raw document for
    legacy unwrapped files (when ``require_checksum`` is off).
    """
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        raise CacheIntegrityError(f"cannot read {path}: {exc}") from exc
    try:
        document = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CacheIntegrityError(
            f"malformed JSON in {path} (truncated or corrupted write): {exc}"
        ) from exc
    if not _is_wrapped(document):
        if require_checksum:
            raise CacheIntegrityError(f"{path} has no integrity checksum")
        return document
    expected = document[CHECKSUM_KEY]
    actual = payload_checksum(document[PAYLOAD_KEY])
    if actual != expected:
        raise CacheIntegrityError(
            f"checksum mismatch in {path}: stored {expected[:12]}…, "
            f"recomputed {actual[:12]}… (corrupted entry)"
        )
    return document[PAYLOAD_KEY]


def read_json_dict_checked(path: str, require_checksum: bool = False) -> Dict:
    """:func:`read_json_checked` that additionally requires a JSON object."""
    payload = read_json_checked(path, require_checksum=require_checksum)
    if not isinstance(payload, dict):
        raise CacheIntegrityError(
            f"{path} holds a {type(payload).__name__}, expected a JSON object"
        )
    return payload
