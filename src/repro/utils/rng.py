"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either a seed or an
existing :class:`numpy.random.Generator`. Centralizing the coercion here
keeps experiment scripts reproducible: a single integer seed at the top of a
script deterministically derives every stream used below it.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int`` seed, a ``SeedSequence``,
        or an existing ``Generator`` (returned unchanged).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent generators from one seed.

    Used to give every simulated agent its own stream so that adding or
    removing one agent does not perturb the randomness seen by the others.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # A Generator cannot be split reproducibly; derive children from its
        # own bit stream instead. The high bound is exclusive, so 2**63 (not
        # 2**63 - 1) covers the full non-negative int64 seed range; uint64
        # dtype is required because the bound overflows int64.
        seeds = seed.integers(0, 2**63, size=count, dtype=np.uint64)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh integer seed from ``rng`` (for logging / replay).

    The draw is uniform over ``[0, 2**63)`` — the exclusive high bound means
    ``2**63`` (not ``2**63 - 1``, which would silently drop the largest
    seed) and needs uint64 because the bound itself overflows int64.
    """
    return int(rng.integers(0, 2**63, dtype=np.uint64))


def default_seed() -> Optional[int]:
    """The library-wide default seed used by examples and benches."""
    return 20200803  # PODC 2020 took place August 3-7, 2020.
