"""Subset enumeration used by the redundancy and resilience machinery.

The 2f-redundancy property (Definition 1 of the paper) quantifies over pairs
of agent subsets ``(S, Ŝ)`` with ``|S| = n - f``, ``Ŝ ⊆ S`` and
``|Ŝ| >= n - 2f``. This module provides exhaustive iteration over these
pairs for small systems and reproducible random sampling for larger ones.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.exceptions import InvalidParameterError
from repro.utils.rng import SeedLike, ensure_rng

Subset = Tuple[int, ...]


def iter_fixed_size_subsets(items: Sequence[int], size: int) -> Iterator[Subset]:
    """Yield all subsets of ``items`` with exactly ``size`` elements.

    Subsets are emitted in lexicographic order of their (sorted) index
    tuples, which makes downstream reports deterministic.
    """
    if size < 0:
        raise InvalidParameterError(f"subset size must be non-negative, got {size}")
    if size > len(items):
        return iter(())
    return combinations(sorted(items), size)


def sample_fixed_size_subsets(
    items: Sequence[int], size: int, count: int, seed: SeedLike = None
) -> List[Subset]:
    """Draw ``count`` distinct random subsets of the given ``size``.

    Falls back to exhaustive enumeration when the population of subsets is
    no larger than ``count``.
    """
    if count < 0:
        raise InvalidParameterError(f"count must be non-negative, got {count}")
    total = comb(len(items), size) if size <= len(items) else 0
    if total <= count:
        return list(iter_fixed_size_subsets(items, size))
    rng = ensure_rng(seed)
    chosen = set()
    ordered: List[Subset] = []
    items = sorted(items)
    # Rejection sampling; collision probability is negligible until count
    # approaches total, which the branch above already excludes.
    while len(ordered) < count:
        subset = tuple(sorted(rng.choice(len(items), size=size, replace=False)))
        subset = tuple(items[i] for i in subset)
        if subset not in chosen:
            chosen.add(subset)
            ordered.append(subset)
    return ordered


def iter_redundancy_pairs(
    n: int, f: int, minimum_inner: int = None
) -> Iterator[Tuple[Subset, Subset]]:
    """Yield every pair ``(S, Ŝ)`` quantified by the 2f-redundancy property.

    Parameters
    ----------
    n:
        Total number of agents, indexed ``0 .. n-1``.
    f:
        Fault bound.
    minimum_inner:
        Minimum size of the inner subset ``Ŝ``; defaults to ``n - 2f`` as in
        Definition 1. Pairs are produced for every ``|Ŝ|`` from this minimum
        up to ``n - f - 1`` (the proper-subset sizes) plus the trivial
        ``Ŝ = S`` pair is skipped since it is vacuous.

    Yields
    ------
    (S, Ŝ):
        Tuples of agent indices with ``Ŝ ⊂ S``.
    """
    if f < 0:
        raise InvalidParameterError(f"f must be non-negative, got {f}")
    if n <= 0:
        raise InvalidParameterError(f"n must be positive, got {n}")
    outer_size = n - f
    inner_min = n - 2 * f if minimum_inner is None else minimum_inner
    inner_min = max(inner_min, 1)
    agents = range(n)
    for outer in iter_fixed_size_subsets(agents, outer_size):
        for inner_size in range(inner_min, outer_size):
            for inner in iter_fixed_size_subsets(outer, inner_size):
                yield outer, inner


def count_redundancy_pairs(n: int, f: int) -> int:
    """Number of pairs :func:`iter_redundancy_pairs` will yield.

    Useful to decide between exhaustive checking and sampling before
    starting an expensive enumeration.
    """
    outer_size = n - f
    inner_min = max(n - 2 * f, 1)
    per_outer = sum(comb(outer_size, k) for k in range(inner_min, outer_size))
    return comb(n, outer_size) * per_outer


def restrict_pairs_to_minimal(
    pairs: Iterable[Tuple[Subset, Subset]], n: int, f: int
) -> Iterator[Tuple[Subset, Subset]]:
    """Keep only pairs whose inner subset has the minimal size ``n - 2f``.

    Checking the minimal-size subsets is sufficient for cost families whose
    argmin is monotone under aggregation (e.g. consistent least squares),
    and reduces the pair count substantially.
    """
    minimal = n - 2 * f
    for outer, inner in pairs:
        if len(inner) == minimal:
            yield outer, inner
