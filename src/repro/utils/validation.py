"""Argument-validation helpers shared across the library.

These functions normalize inputs to ``float64`` numpy arrays and raise the
library's typed exceptions with actionable messages. They exist so that the
public API fails fast at the boundary instead of deep inside numpy.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import (
    DimensionMismatchError,
    InfeasibleConfigurationError,
    InvalidParameterError,
)


def require(condition: bool, message: str, exception: type = InvalidParameterError) -> None:
    """Raise ``exception(message)`` unless ``condition`` holds."""
    if not condition:
        raise exception(message)


def check_vector(
    x,
    dimension: Optional[int] = None,
    name: str = "x",
    allow_non_finite: bool = False,
) -> np.ndarray:
    """Validate and coerce ``x`` into a finite 1-D float64 array.

    Parameters
    ----------
    x:
        Array-like input.
    dimension:
        If given, the exact length the vector must have.
    name:
        Name used in error messages.
    allow_non_finite:
        Permit NaN/Inf entries. Off by default — the only legitimate
        carriers of non-finite payloads are fault-injection paths (e.g. a
        corrupted in-flight gradient), which opt in explicitly.
    """
    arr = np.asarray(x, dtype=float)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise DimensionMismatchError(f"{name} must be a 1-D vector, got shape {arr.shape}")
    if dimension is not None and arr.shape[0] != dimension:
        raise DimensionMismatchError(
            f"{name} must have dimension {dimension}, got {arr.shape[0]}"
        )
    if not allow_non_finite and not np.all(np.isfinite(arr)):
        raise InvalidParameterError(f"{name} contains non-finite entries")
    return arr


def check_matrix(
    m,
    rows: Optional[int] = None,
    cols: Optional[int] = None,
    name: str = "matrix",
    allow_non_finite: bool = False,
) -> np.ndarray:
    """Validate and coerce ``m`` into a 2-D float64 array."""
    arr = np.asarray(m, dtype=float)
    if arr.ndim != 2:
        raise DimensionMismatchError(f"{name} must be a 2-D array, got shape {arr.shape}")
    if rows is not None and arr.shape[0] != rows:
        raise DimensionMismatchError(f"{name} must have {rows} rows, got {arr.shape[0]}")
    if cols is not None and arr.shape[1] != cols:
        raise DimensionMismatchError(f"{name} must have {cols} columns, got {arr.shape[1]}")
    if not allow_non_finite and not np.all(np.isfinite(arr)):
        raise InvalidParameterError(f"{name} contains non-finite entries")
    return arr


def check_probability(p: float, name: str = "p") -> float:
    """Validate that ``p`` lies in ``[0, 1]``."""
    p = float(p)
    if not 0.0 <= p <= 1.0:
        raise InvalidParameterError(f"{name} must lie in [0, 1], got {p}")
    return p


def check_fault_bound(n: int, f: int, *, architecture: str = "server") -> None:
    """Validate the fault bound ``f`` for ``n`` agents.

    ``architecture`` is ``"server"`` (requires ``2 f < n``, the paper's
    feasibility bound for exact fault-tolerance) or ``"peer"`` (requires
    ``3 f < n``, needed to simulate the server via Byzantine broadcast).
    """
    n = int(n)
    f = int(f)
    if n <= 0:
        raise InvalidParameterError(f"n must be positive, got {n}")
    if f < 0:
        raise InvalidParameterError(f"f must be non-negative, got {f}")
    if architecture == "server":
        if 2 * f >= n:
            raise InfeasibleConfigurationError(
                f"exact fault-tolerance requires 2f < n; got n={n}, f={f}"
            )
    elif architecture == "peer":
        if 3 * f >= n:
            raise InfeasibleConfigurationError(
                f"the peer-to-peer architecture requires 3f < n; got n={n}, f={f}"
            )
    else:
        raise InvalidParameterError(f"unknown architecture {architecture!r}")
