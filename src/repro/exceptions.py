"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause while
still being able to distinguish configuration problems from runtime failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidParameterError(ReproError, ValueError):
    """A parameter value is outside its documented domain.

    Raised, for example, when a fault bound ``f`` is negative, a step-size
    constant is non-positive, or a trim count exceeds what the filter can
    tolerate.
    """


class UnknownRegistryEntryError(InvalidParameterError):
    """A name-based registry lookup failed.

    Raised by :func:`repro.aggregators.registry.make_filter` and
    :func:`repro.attacks.registry.make_attack` when the requested name is
    not registered. Carries the offending :attr:`name` and the sorted
    :attr:`available` names so callers (CLI, tournament engine) can render
    actionable suggestions instead of re-parsing the message string.
    """

    def __init__(self, kind: str, name: str, available):
        self.kind = str(kind)
        self.name = name
        self.available = tuple(available)
        super().__init__(
            f"unknown {self.kind} {name!r}; available: {', '.join(self.available)}"
        )


class DimensionMismatchError(ReproError, ValueError):
    """Two arrays that must share a dimension do not.

    Raised when, e.g., a gradient matrix has a different column count than
    the current estimate, or cost functions of different dimensions are
    aggregated.
    """


class InfeasibleConfigurationError(ReproError):
    """The requested system configuration violates a feasibility bound.

    Examples: ``f >= n / 2`` for exact fault-tolerance, ``f >= n / 3`` for
    the peer-to-peer architecture, or ``n < 4 f + 3`` for the Bulyan filter.
    """


class TopologyInfeasibilityError(InfeasibleConfigurationError):
    """A sparse topology cannot honour its per-neighborhood fault budgets.

    Local 2f-redundancy requires each agent's *closed* neighborhood (the
    agent plus its graph neighbors) to outnumber its local fault budget:
    ``deg_i + 1 >= 2 f_i + 1``. Carries the offending agents with their
    degrees and budgets so callers can repair the topology (densify, or
    shrink the budget) instead of parsing a message string.

    Attributes
    ----------
    agents:
        Sorted ids of the agents whose neighborhoods are infeasible.
    degrees:
        ``{agent: degree}`` for the offending agents.
    budgets:
        ``{agent: f_i}`` for the offending agents.
    """

    def __init__(self, agents, degrees, budgets):
        self.agents = sorted(int(i) for i in agents)
        self.degrees = {int(k): int(v) for k, v in dict(degrees).items()}
        self.budgets = {int(k): int(v) for k, v in dict(budgets).items()}
        worst = self.agents[0] if self.agents else None
        detail = (
            f" (e.g. agent {worst}: degree {self.degrees.get(worst)}, "
            f"budget f_i={self.budgets.get(worst)})"
            if worst is not None
            else ""
        )
        super().__init__(
            f"{len(self.agents)} agent(s) violate local 2f-redundancy "
            f"(need degree >= 2 f_i): {self.agents[:10]}"
            f"{'...' if len(self.agents) > 10 else ''}{detail}"
        )


class ConvergenceError(ReproError, RuntimeError):
    """An iterative numerical routine failed to converge.

    Carries the best iterate found so far in :attr:`best` when available so
    callers can decide whether the partial answer is usable.
    """

    def __init__(self, message: str, best=None):
        super().__init__(message)
        self.best = best


class CacheIntegrityError(ReproError, RuntimeError):
    """An on-disk cache entry failed its integrity check.

    Raised by :mod:`repro.utils.atomicio` when a stored document is
    truncated, is not valid JSON, or carries a checksum that does not match
    its payload. The sweep engine treats this as "entry absent": the
    corrupt file is discarded and the cell recomputed, so corruption can
    cost time but never poison results.
    """


class BackendUnavailableError(ReproError, ImportError):
    """A named array backend's implementation cannot be imported.

    Raised by :mod:`repro.system.backends` when resolving an optional
    backend (``"torch"``, ``"numba"``) whose extra dependency is not
    installed. Deriving from :class:`ImportError` lets test suites treat
    it with ``pytest.importorskip``-style gating, while :class:`ReproError`
    keeps it catchable alongside other configuration failures.
    """


class BenchSchemaError(ReproError, ValueError):
    """A benchmark document violates the ``repro.bench`` result schema.

    Raised by :mod:`repro.observability.perf.bench_harness` when a
    ``BENCH_*.json`` payload (freshly produced or loaded from the baseline
    store) is missing required fields, carries ill-typed values, or is
    internally inconsistent (e.g. a ``best_seconds`` that is not the
    minimum of its repeats). The regression gate refuses such documents
    instead of comparing against garbage.
    """


class TournamentSchemaError(ReproError, ValueError):
    """A tournament artifact violates the ``repro.tournament`` schema.

    Raised by :mod:`repro.experiments.tournament` when a
    ``TOURNAMENT_*.json`` payload is missing required fields, carries an
    unknown schema tag, or is internally inconsistent. The leaderboard and
    report CLIs refuse such documents instead of rendering garbage.
    """


class ServiceError(ReproError, RuntimeError):
    """The aggregation service (or its client) failed an operation.

    Raised by :mod:`repro.service` for protocol-level failures: a request
    the server rejected, a job that does not exist, a result requested
    before the job finished, or a server that cannot be reached. Carries
    the HTTP-style :attr:`status` code when one applies (0 for transport
    failures) so CLI handlers can map it onto exit codes.
    """

    def __init__(self, message: str, status: int = 0):
        super().__init__(message)
        self.status = int(status)


class AdmissionRejectedError(ServiceError):
    """The service refused to enqueue a job (429-style admission control).

    Structured so clients can react without parsing messages:
    :attr:`reason` is a stable code (``"queue-full"`` or ``"client-cap"``),
    :attr:`limit` the bound that was hit, and :attr:`queue_depth` the
    depth observed at rejection time. The request was not enqueued and is
    safe to retry later.
    """

    def __init__(self, reason: str, detail: str, limit: int, queue_depth: int):
        super().__init__(
            f"job rejected ({reason}): {detail}", status=429
        )
        self.reason = str(reason)
        self.detail = str(detail)
        self.limit = int(limit)
        self.queue_depth = int(queue_depth)


class InjectedFault(ReproError, RuntimeError):
    """A deliberately injected infrastructure fault (chaos testing).

    Raised by the :mod:`repro.system.faultinjection` policies to simulate
    worker crashes and transient failures. Deriving from
    :class:`ReproError` keeps it catchable alongside genuine library
    errors, but production code never raises it.
    """


class ProtocolViolationError(ReproError, RuntimeError):
    """A simulated distributed protocol reached a state its specification forbids.

    This indicates a bug in the simulator (or a deliberately injected fault
    exceeding the tolerated bound), never expected behaviour under the
    documented preconditions.
    """
