"""Synchronous round-based network simulator.

Models the paper's synchrony assumption: every message sent in a round is
delivered within that round, so a missing reply is *proof* the sender is
faulty (the server exploits this to eliminate silent agents). The network
logs every delivery for post-hoc inspection and accounts traffic volume.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional

from repro.exceptions import InvalidParameterError
from repro.system.messages import Message
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class DeliveryRecord:
    """One delivered (or dropped) message, as seen by the network."""

    round_index: int
    sender: int
    receiver: int
    message_type: str
    size_bytes: int
    dropped: bool


class SynchronousNetwork:
    """Delivers messages between nodes in lock-step rounds.

    Parameters
    ----------
    drop_probabilities:
        Optional per-sender probability that a message from that sender is
        lost in a round. In the synchronous model only *faulty* senders may
        be silent, so configuring a positive probability for an honest
        agent models a crash fault that the server will correctly attribute
        to faultiness.
    rng:
        Randomness source for drops.
    log_capacity:
        Maximum retained delivery records (older records are evicted);
        counters are never evicted.
    """

    def __init__(
        self,
        drop_probabilities: Optional[Dict[int, float]] = None,
        rng=None,
        log_capacity: int = 10_000,
    ):
        if log_capacity <= 0:
            raise InvalidParameterError(f"log_capacity must be positive, got {log_capacity}")
        self._drop_probabilities = {
            int(k): check_probability(v, name=f"drop_probabilities[{k}]")
            for k, v in (drop_probabilities or {}).items()
        }
        self._rng = rng
        self._log: Deque[DeliveryRecord] = deque(maxlen=int(log_capacity))
        self._messages_delivered = 0
        self._messages_dropped = 0
        self._bytes_delivered = 0
        self._bytes_dropped = 0
        self._records_seen = 0
        self._eviction_warned = False

    @property
    def messages_delivered(self) -> int:
        return self._messages_delivered

    @property
    def messages_dropped(self) -> int:
        return self._messages_dropped

    @property
    def bytes_delivered(self) -> int:
        return self._bytes_delivered

    @property
    def bytes_dropped(self) -> int:
        """Payload bytes the network absorbed without delivering.

        Dropped traffic costs the sender bandwidth even though nothing
        arrives; accounting it separately keeps ``bytes_delivered`` an
        honest measure of *useful* traffic instead of silently conflating
        the two.
        """
        return self._bytes_dropped

    def traffic_summary(self) -> Dict[str, int]:
        """Delivered/dropped message and byte totals as a plain dict."""
        return {
            "messages_delivered": self._messages_delivered,
            "messages_dropped": self._messages_dropped,
            "bytes_delivered": self._bytes_delivered,
            "bytes_dropped": self._bytes_dropped,
        }

    @property
    def log_capacity(self) -> int:
        """Maximum number of retained delivery records."""
        return self._log.maxlen

    @property
    def records_evicted(self) -> int:
        """Delivery records dropped from the log because it was full."""
        return self._records_seen - len(self._log)

    @property
    def log(self) -> List[DeliveryRecord]:
        """Retained delivery records, oldest first.

        Warns (once per network) when the log has evicted records, so a
        truncated delivery history is never mistaken for a complete one.
        """
        if self.records_evicted > 0 and not self._eviction_warned:
            self._eviction_warned = True
            warnings.warn(
                f"network delivery log overflowed: {self.records_evicted} of "
                f"{self._records_seen} records were evicted (capacity "
                f"{self._log.maxlen}); raise log_capacity (e.g. via "
                "DGDConfig.log_capacity) to retain the full history",
                stacklevel=2,
            )
        return list(self._log)

    def _should_drop(self, sender: int) -> bool:
        probability = self._drop_probabilities.get(sender, 0.0)
        if probability <= 0.0:
            return False
        if self._rng is None:
            raise InvalidParameterError(
                "drop probabilities configured but no rng supplied to the network"
            )
        return bool(self._rng.random() < probability)

    def deliver(self, message: Message, receiver: int) -> Optional[Message]:
        """Deliver one message; returns ``None`` when the message is dropped."""
        dropped = self._should_drop(message.sender)
        record = DeliveryRecord(
            round_index=message.round_index,
            sender=message.sender,
            receiver=int(receiver),
            message_type=type(message).__name__,
            size_bytes=message.size_bytes(),
            dropped=dropped,
        )
        self._log.append(record)
        self._records_seen += 1
        if dropped:
            self._messages_dropped += 1
            self._bytes_dropped += record.size_bytes
            return None
        self._messages_delivered += 1
        self._bytes_delivered += record.size_bytes
        return message

    def broadcast(self, message: Message, receivers: Iterable[int]) -> Dict[int, Message]:
        """Deliver ``message`` to every receiver; returns the per-receiver copies."""
        delivered: Dict[int, Message] = {}
        for receiver in receivers:
            result = self.deliver(message, receiver)
            if result is not None:
                delivered[int(receiver)] = result
        return delivered

    def gather(self, messages: Iterable[Message], receiver: int) -> List[Message]:
        """Deliver many messages to one receiver, dropping per sender policy."""
        received: List[Message] = []
        for message in messages:
            result = self.deliver(message, receiver)
            if result is not None:
                received.append(result)
        return received
