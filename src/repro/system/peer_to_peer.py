"""Peer-to-peer filtered DGD via Byzantine broadcast.

In the peer-to-peer architecture there is no trusted server: every agent
maintains its own estimate and, each round, broadcasts its gradient with the
authenticated Byzantine broadcast primitive. Because broadcast guarantees
that all honest agents deliver the *same* vector per sender, and the filter
and update rule are deterministic, all honest agents evolve identical
estimates — effectively each honest agent locally simulates the server.
Feasibility requires ``f < n/3`` (validated up front).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.aggregators.base import GradientFilter
from repro.attacks.base import AttackContext, ByzantineBehavior
from repro.exceptions import InvalidParameterError, ProtocolViolationError
from repro.observability import TelemetryLike, ensure_telemetry
from repro.optimization.cost_functions import CostFunction
from repro.optimization.projections import BoxSet, ConvexSet
from repro.optimization.step_sizes import StepSizeSchedule
from repro.system.broadcast import EquivocatingSender, byzantine_broadcast
from repro.system.faultinjection import deterministic_choice, deterministic_draw
from repro.system.healing import ResiliencePolicy
from repro.system.netfaults import NetworkFaultModel, corrupt_gradient
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_fault_bound, check_vector


@dataclass
class PeerExecutionResult:
    """Outcome of a peer-to-peer DGD execution.

    Attributes
    ----------
    estimates:
        ``(T + 1, d)`` trajectory of the (common) honest estimate.
    per_agent_final:
        Final estimate of each honest agent — asserted identical, retained
        as evidence.
    broadcast_messages:
        Total point-to-point messages spent in broadcasts (the cost of
        removing the server).
    agreement_verified:
        Whether honest estimates were checked equal every round.
    """

    estimates: np.ndarray
    honest_ids: List[int]
    faulty_ids: List[int]
    per_agent_final: Dict[int, np.ndarray]
    broadcast_messages: int
    wall_time: float
    agreement_verified: bool = True
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def final_estimate(self) -> np.ndarray:
        return self.estimates[-1].copy()

    def distances_to(self, point) -> np.ndarray:
        point = check_vector(point, dimension=self.estimates.shape[1], name="point")
        return np.linalg.norm(self.estimates - point, axis=1)


def _degrade_agreed_rows(
    rows: List[np.ndarray],
    t: int,
    model: NetworkFaultModel,
    policy: ResiliencePolicy,
    in_flight: List,
    last_agreed: Dict[int, tuple],
    counters: Dict[str, int],
    dimension: int,
) -> List[np.ndarray]:
    """Apply the fault model to one round's agreed broadcast values.

    Works on the broadcast *outcomes* — by then every honest agent holds
    the same per-sender vector, and every fault draw below is a pure
    function of ``(model seed, "p2p", sender, round)``, so all honest
    agents degrade the matrix identically and agreement survives. A
    sender's value can be lost for the round, delayed a bounded number of
    rounds, or corrupted; consumers fall back to the sender's last agreed
    value up to ``policy.max_staleness`` rounds old and to the zero vector
    (the protocol's ⊥ convention) beyond that. Duplicated deliveries are
    inherently idempotent here — re-delivering an agreed value changes
    nothing — so duplication needs no handling.
    """
    seed = model.seed
    for sender, value in enumerate(rows):
        profile = model.profile(sender)
        key = ("p2p", sender, t)
        if profile.is_down(t):
            counters["dropped"] += 1
            continue
        if profile.drop_prob > 0 and deterministic_draw(seed, "drop", *key) < profile.drop_prob:
            counters["dropped"] += 1
            continue
        if (
            profile.corrupt_prob > 0
            and deterministic_draw(seed, "corrupt", *key) < profile.corrupt_prob
        ):
            value = corrupt_gradient(value, profile.corrupt_mode, seed, *key)
            counters["corrupted"] += 1
        delay = 0
        if profile.straggles_at(t):
            delay += profile.straggle_delay
        if profile.delay_prob > 0 and deterministic_draw(seed, "delay", *key) < profile.delay_prob:
            delay += deterministic_choice(seed, 1, profile.max_delay, "delay-len", *key)
        if delay > 0:
            counters["delayed"] += 1
        in_flight.append((t + delay, t, sender, value))

    arrivals: Dict[int, tuple] = {}
    remaining = []
    for due, origin, sender, value in in_flight:
        if due <= t:
            best = arrivals.get(sender)
            if best is None or origin > best[0]:
                arrivals[sender] = (origin, value)
        else:
            remaining.append((due, origin, sender, value))
    in_flight[:] = remaining

    for sender, (origin, value) in arrivals.items():
        if policy.quarantine_non_finite and not np.all(np.isfinite(value)):
            counters["quarantined"] += 1
            continue
        prev = last_agreed.get(sender)
        if prev is None or origin > prev[0]:
            last_agreed[sender] = (origin, value)

    degraded: List[np.ndarray] = []
    for sender in range(len(rows)):
        entry = last_agreed.get(sender)
        if entry is not None and t - entry[0] <= policy.max_staleness:
            if entry[0] < t:
                counters["stale_reuses"] += 1
            degraded.append(entry[1])
        else:
            counters["zero_filled"] += 1
            degraded.append(np.zeros(dimension))
    return degraded


def run_peer_to_peer_dgd(
    costs: Sequence[CostFunction],
    gradient_filter: GradientFilter,
    faulty_ids: Sequence[int] = (),
    behavior: Optional[ByzantineBehavior] = None,
    iterations: int = 100,
    step_sizes: Optional[StepSizeSchedule] = None,
    projection: Optional[ConvexSet] = None,
    x0=None,
    seed: SeedLike = 0,
    equivocate: bool = True,
    telemetry: TelemetryLike = None,
    fault_model: Optional[NetworkFaultModel] = None,
    resilience: Optional["ResiliencePolicy"] = None,
) -> PeerExecutionResult:
    """Run filtered DGD in the peer-to-peer architecture.

    Parameters
    ----------
    costs:
        All ``n`` agents' local costs.
    gradient_filter:
        The deterministic filter every honest agent applies locally.
    faulty_ids / behavior:
        Byzantine agents and their gradient-forging strategy.
    equivocate:
        When ``True``, faulty broadcasters additionally *equivocate* inside
        the broadcast primitive (sending different vectors to different
        peers); the primitive must — and does — still force a consistent
        delivered value.
    telemetry:
        Optional :class:`~repro.observability.Telemetry` handle (or JSONL
        path), defaulting to the no-op. Emits ``"round"``/``"broadcast"``/
        ``"filter"`` spans and a per-round record of the filter's
        kept/eliminated senders on the *delivered* (post-broadcast)
        gradient matrix — the matrix every honest agent filters locally.
    fault_model:
        Optional :class:`~repro.system.netfaults.NetworkFaultModel`
        degrading the *outcome* of each sender's broadcast: the agreed
        value may be lost for the round (drop / crash window), arrive a
        bounded number of rounds late (delay / straggle schedule), or be
        corrupted in flight. Every fault draw is a pure function of
        ``(model seed, "p2p", sender, round)`` — identical at every honest
        agent — so broadcast agreement is preserved by construction. A
        ``None`` or null model reproduces the fault-free execution
        bit-for-bit.
    resilience:
        Optional :class:`~repro.system.healing.ResiliencePolicy`; defaults
        to ``ResiliencePolicy.for_model(fault_model)``. Under faults each
        honest agent reuses a sender's last agreed gradient up to
        ``max_staleness`` rounds old and zero-fills beyond (the protocol's
        deterministic ⊥ convention), and quarantines non-finite agreed
        values at the message boundary.
    """
    costs = list(costs)
    n = len(costs)
    faulty = sorted(set(int(i) for i in faulty_ids))
    if any(i < 0 or i >= n for i in faulty):
        raise InvalidParameterError(
            f"faulty_ids must lie in [0, {n}), got {faulty}"
        )
    f = len(faulty)
    check_fault_bound(n, f, architecture="peer")
    if faulty and behavior is None:
        raise InvalidParameterError("faulty agents configured but no behavior given")
    if iterations <= 0:
        raise InvalidParameterError(f"iterations must be positive, got {iterations}")
    dimension = costs[0].dimension
    honest = [i for i in range(n) if i not in faulty]
    rng = ensure_rng(seed)
    from repro.system.runner import _default_schedule

    schedule = step_sizes or _default_schedule(costs, gradient_filter)
    constraint = projection or BoxSet.centered(dimension, 1000.0)
    start_point = (
        np.zeros(dimension) if x0 is None else check_vector(x0, dimension=dimension, name="x0")
    )

    # Each honest agent's local estimate; initialized identically (the
    # common x0 is itself agreed via one broadcast in a real deployment).
    local: Dict[int, np.ndarray] = {i: constraint.project(start_point) for i in honest}
    estimates = np.empty((iterations + 1, dimension))
    estimates[0] = local[honest[0]]
    broadcast_messages = 0

    policy: Optional[ResiliencePolicy] = None
    in_flight: List = []
    last_agreed: Dict[int, tuple] = {}
    overlay_counters = {
        "dropped": 0,
        "delayed": 0,
        "corrupted": 0,
        "quarantined": 0,
        "stale_reuses": 0,
        "zero_filled": 0,
    }
    if fault_model is not None:
        policy = (
            resilience
            if resilience is not None
            else ResiliencePolicy.for_model(fault_model)
        )

    tel = ensure_telemetry(telemetry)
    if tel:
        tel.annotate(byzantine_ids=faulty)

    start = time.perf_counter()
    with tel.span("run"):
        for t in range(iterations):
            with tel.span("round"):
                reference = local[honest[0]]
                honest_gradients = np.stack([costs[i].gradient(local[i]) for i in honest])
                # Faulty agents forge gradients knowing the honest ones (rushing).
                forged: Dict[int, np.ndarray] = {}
                if faulty:
                    context = AttackContext(
                        round_index=t,
                        estimate=reference,
                        honest_gradients=honest_gradients,
                        honest_ids=honest,
                        faulty_ids=faulty,
                        faulty_costs=[costs[i] for i in faulty],
                        rng=rng,
                    )
                    matrix = behavior(context)
                    forged = {agent: matrix[row] for row, agent in enumerate(faulty)}

                delivered_rows: List[np.ndarray] = []
                with tel.span("broadcast"):
                    for sender in range(n):
                        if sender in forged and equivocate and f > 0:
                            # The faulty sender equivocates between its forged vector
                            # and an opposite decoy; broadcast resolves it consistently.
                            strategy = EquivocatingSender(forged[sender], -forged[sender])
                            result = byzantine_broadcast(
                                n, f, sender, value=None, faulty=faulty, sender_strategy=strategy, rng=rng
                            )
                        else:
                            payload = (
                                forged[sender]
                                if sender in forged
                                else costs[sender].gradient(local[sender])
                            )
                            result = byzantine_broadcast(n, f, sender, payload, faulty=faulty, rng=rng)
                        broadcast_messages += result.messages_sent
                        agreed = result.agreed_value
                        # ⊥ is replaced by the zero vector by protocol convention — a
                        # deterministic rule every honest agent applies identically.
                        delivered_rows.append(np.zeros(dimension) if agreed is None else agreed)

                if fault_model is not None:
                    delivered_rows = _degrade_agreed_rows(
                        delivered_rows,
                        t,
                        fault_model,
                        policy,
                        in_flight,
                        last_agreed,
                        overlay_counters,
                        dimension,
                    )
                gradients = np.stack(delivered_rows)
                with tel.span("filter"):
                    direction = gradient_filter(gradients)
                eta = schedule(t)
                for agent in honest:
                    local[agent] = constraint.project(local[agent] - eta * direction)
                # Agreement audit: all honest estimates must coincide exactly.
                baseline = local[honest[0]]
                for agent in honest[1:]:
                    if not np.array_equal(local[agent], baseline):
                        raise ProtocolViolationError(
                            "honest estimates diverged in peer-to-peer execution"
                        )
                estimates[t + 1] = baseline
            if tel:
                matrix = gradient_filter.sanitize(gradients)
                kept_rows = (
                    gradient_filter.kept_indices(matrix)
                    if hasattr(gradient_filter, "kept_indices")
                    else None
                )
                tel.record_round(
                    round_index=t,
                    filter_name=getattr(
                        gradient_filter, "name", type(gradient_filter).__name__
                    ),
                    step_size=eta,
                    gradient_norms=np.linalg.norm(matrix, axis=1),
                    kept_ids=kept_rows,
                    estimate=baseline,
                )
    elapsed = time.perf_counter() - start

    extra: Dict[str, object] = {}
    if fault_model is not None:
        extra["degraded"] = dict(overlay_counters)
        extra["max_staleness"] = policy.max_staleness
    return PeerExecutionResult(
        estimates=estimates,
        honest_ids=honest,
        faulty_ids=faulty,
        per_agent_final={i: local[i].copy() for i in honest},
        broadcast_messages=broadcast_messages,
        wall_time=elapsed,
        extra=extra,
    )
