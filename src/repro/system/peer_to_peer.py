"""Peer-to-peer filtered DGD via Byzantine broadcast.

In the peer-to-peer architecture there is no trusted server: every agent
maintains its own estimate and, each round, broadcasts its gradient with the
authenticated Byzantine broadcast primitive. Because broadcast guarantees
that all honest agents deliver the *same* vector per sender, and the filter
and update rule are deterministic, all honest agents evolve identical
estimates — effectively each honest agent locally simulates the server.
Feasibility requires ``f < n/3`` (validated up front).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.aggregators.base import GradientFilter
from repro.attacks.base import AttackContext, ByzantineBehavior
from repro.exceptions import InvalidParameterError, ProtocolViolationError
from repro.observability import TelemetryLike, ensure_telemetry
from repro.optimization.cost_functions import CostFunction
from repro.optimization.projections import BoxSet, ConvexSet
from repro.optimization.step_sizes import StepSizeSchedule
from repro.system.broadcast import EquivocatingSender, byzantine_broadcast
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_fault_bound, check_vector


@dataclass
class PeerExecutionResult:
    """Outcome of a peer-to-peer DGD execution.

    Attributes
    ----------
    estimates:
        ``(T + 1, d)`` trajectory of the (common) honest estimate.
    per_agent_final:
        Final estimate of each honest agent — asserted identical, retained
        as evidence.
    broadcast_messages:
        Total point-to-point messages spent in broadcasts (the cost of
        removing the server).
    agreement_verified:
        Whether honest estimates were checked equal every round.
    """

    estimates: np.ndarray
    honest_ids: List[int]
    faulty_ids: List[int]
    per_agent_final: Dict[int, np.ndarray]
    broadcast_messages: int
    wall_time: float
    agreement_verified: bool = True
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def final_estimate(self) -> np.ndarray:
        return self.estimates[-1].copy()

    def distances_to(self, point) -> np.ndarray:
        point = check_vector(point, dimension=self.estimates.shape[1], name="point")
        return np.linalg.norm(self.estimates - point, axis=1)


def run_peer_to_peer_dgd(
    costs: Sequence[CostFunction],
    gradient_filter: GradientFilter,
    faulty_ids: Sequence[int] = (),
    behavior: Optional[ByzantineBehavior] = None,
    iterations: int = 100,
    step_sizes: Optional[StepSizeSchedule] = None,
    projection: Optional[ConvexSet] = None,
    x0=None,
    seed: SeedLike = 0,
    equivocate: bool = True,
    telemetry: TelemetryLike = None,
) -> PeerExecutionResult:
    """Run filtered DGD in the peer-to-peer architecture.

    Parameters
    ----------
    costs:
        All ``n`` agents' local costs.
    gradient_filter:
        The deterministic filter every honest agent applies locally.
    faulty_ids / behavior:
        Byzantine agents and their gradient-forging strategy.
    equivocate:
        When ``True``, faulty broadcasters additionally *equivocate* inside
        the broadcast primitive (sending different vectors to different
        peers); the primitive must — and does — still force a consistent
        delivered value.
    telemetry:
        Optional :class:`~repro.observability.Telemetry` handle (or JSONL
        path), defaulting to the no-op. Emits ``"round"``/``"broadcast"``/
        ``"filter"`` spans and a per-round record of the filter's
        kept/eliminated senders on the *delivered* (post-broadcast)
        gradient matrix — the matrix every honest agent filters locally.
    """
    costs = list(costs)
    n = len(costs)
    faulty = sorted(set(int(i) for i in faulty_ids))
    f = len(faulty)
    check_fault_bound(n, f, architecture="peer")
    if faulty and behavior is None:
        raise InvalidParameterError("faulty agents configured but no behavior given")
    if iterations <= 0:
        raise InvalidParameterError(f"iterations must be positive, got {iterations}")
    dimension = costs[0].dimension
    honest = [i for i in range(n) if i not in faulty]
    rng = ensure_rng(seed)
    from repro.system.runner import _default_schedule

    schedule = step_sizes or _default_schedule(costs, gradient_filter)
    constraint = projection or BoxSet.centered(dimension, 1000.0)
    start_point = (
        np.zeros(dimension) if x0 is None else check_vector(x0, dimension=dimension, name="x0")
    )

    # Each honest agent's local estimate; initialized identically (the
    # common x0 is itself agreed via one broadcast in a real deployment).
    local: Dict[int, np.ndarray] = {i: constraint.project(start_point) for i in honest}
    estimates = np.empty((iterations + 1, dimension))
    estimates[0] = local[honest[0]]
    broadcast_messages = 0

    tel = ensure_telemetry(telemetry)
    if tel:
        tel.annotate(byzantine_ids=faulty)

    start = time.perf_counter()
    with tel.span("run"):
        for t in range(iterations):
            with tel.span("round"):
                reference = local[honest[0]]
                honest_gradients = np.stack([costs[i].gradient(local[i]) for i in honest])
                # Faulty agents forge gradients knowing the honest ones (rushing).
                forged: Dict[int, np.ndarray] = {}
                if faulty:
                    context = AttackContext(
                        round_index=t,
                        estimate=reference,
                        honest_gradients=honest_gradients,
                        honest_ids=honest,
                        faulty_ids=faulty,
                        faulty_costs=[costs[i] for i in faulty],
                        rng=rng,
                    )
                    matrix = behavior(context)
                    forged = {agent: matrix[row] for row, agent in enumerate(faulty)}

                delivered_rows: List[np.ndarray] = []
                with tel.span("broadcast"):
                    for sender in range(n):
                        if sender in forged and equivocate and f > 0:
                            # The faulty sender equivocates between its forged vector
                            # and an opposite decoy; broadcast resolves it consistently.
                            strategy = EquivocatingSender(forged[sender], -forged[sender])
                            result = byzantine_broadcast(
                                n, f, sender, value=None, faulty=faulty, sender_strategy=strategy, rng=rng
                            )
                        else:
                            payload = (
                                forged[sender]
                                if sender in forged
                                else costs[sender].gradient(local[sender])
                            )
                            result = byzantine_broadcast(n, f, sender, payload, faulty=faulty, rng=rng)
                        broadcast_messages += result.messages_sent
                        agreed = result.agreed_value
                        # ⊥ is replaced by the zero vector by protocol convention — a
                        # deterministic rule every honest agent applies identically.
                        delivered_rows.append(np.zeros(dimension) if agreed is None else agreed)

                gradients = np.stack(delivered_rows)
                with tel.span("filter"):
                    direction = gradient_filter(gradients)
                eta = schedule(t)
                for agent in honest:
                    local[agent] = constraint.project(local[agent] - eta * direction)
                # Agreement audit: all honest estimates must coincide exactly.
                baseline = local[honest[0]]
                for agent in honest[1:]:
                    if not np.array_equal(local[agent], baseline):
                        raise ProtocolViolationError(
                            "honest estimates diverged in peer-to-peer execution"
                        )
                estimates[t + 1] = baseline
            if tel:
                matrix = gradient_filter.sanitize(gradients)
                kept_rows = (
                    gradient_filter.kept_indices(matrix)
                    if hasattr(gradient_filter, "kept_indices")
                    else None
                )
                tel.record_round(
                    round_index=t,
                    filter_name=getattr(
                        gradient_filter, "name", type(gradient_filter).__name__
                    ),
                    step_size=eta,
                    gradient_norms=np.linalg.norm(matrix, axis=1),
                    kept_ids=kept_rows,
                    estimate=baseline,
                )
    elapsed = time.perf_counter() - start

    return PeerExecutionResult(
        estimates=estimates,
        honest_ids=honest,
        faulty_ids=faulty,
        per_agent_final={i: local[i].copy() for i in honest},
        broadcast_messages=broadcast_messages,
        wall_time=elapsed,
    )
