"""Vectorized multi-run execution of the filtered DGD protocol.

:func:`run_dgd_batch` executes ``K`` replicate runs of the same
configuration (differing only in their seeds) as stacked ``(K, n, d)``
gradient tensors: one numpy kernel per round evaluates every agent's
gradient in every run, applies the Byzantine forging per run slice, feeds
the stacked matrices through the filter's batched aggregation, and advances
all ``K`` estimates at once. The arithmetic is arranged so every run's
recorded trace is **bit-identical** to what the sequential
:func:`repro.system.runner.run_dgd` produces for the same seed — the
equivalence suite (``tests/test_system_batch.py``) pins this down — so the
batch engine is a drop-in accelerator for the sweep experiments, not an
approximation of them.

Fast-path requirements (checked by :func:`batch_unsupported_reason`):

- every cost is a :class:`~repro.optimization.cost_functions.QuadraticCost`
  (covers the paper's least-squares workload), so gradients are the batched
  affine map ``x ↦ P_i x + q_i``;
- the gradient filter is stateless (all registry filters except
  ``clipping``);
- no crash faults and no message recording (those need the full
  message-passing simulator).

Configurations outside the fast path transparently fall back to sequential
:func:`run_dgd` per seed, so callers never need to special-case.

The hot kernels — the batched affine gradient map, the filter aggregation,
and the projection — run behind the :mod:`repro.system.backends` seam.
The default ``backend="numpy"`` is the frozen reference arithmetic (the
bit-identity contract above is pinned against it); optional backends
(``"torch"``, ``"numba"``) trade bit-identity for speed under an
``np.allclose`` tolerance contract. ``dtype="float32"`` halves the memory
footprint of the ``(K, n, d)`` tensors (tolerance contract again), and
``tile_size`` streams the batch through bounded working sets so large
``K × n × d`` products never materialize at once.

Attack forging is applied **per run slice**: deterministic behaviours
(gradient-reverse, sign-flip, zero, constant-bias) are forged with one
vectorized expression, and every other registered behaviour receives a
genuine :class:`~repro.attacks.base.AttackContext` built from its run's
slice of the gradient tensor and its run's own adversary stream — so even
randomized and adaptive attacks (``random``, ``alie``, ``ipm``, ``mimic``,
…) reproduce the sequential execution exactly.
"""

from __future__ import annotations

import time
import warnings
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.aggregators.base import GradientFilter
from repro.aggregators.registry import make_filter
from repro.attacks.base import AttackContext, ByzantineBehavior
from repro.attacks.simple import ConstantBias, GradientReverse, SignFlip, ZeroGradient
from repro.exceptions import InvalidParameterError
from repro.observability import TelemetryLike, ensure_telemetry
from repro.optimization.cost_functions import CostFunction, QuadraticCost
from repro.optimization.projections import BoxSet
from repro.system.backends import ArrayBackend, resolve_backend
from repro.system.runner import (
    DGDConfig,
    Trace,
    _default_schedule,
    apply_config_overrides,
    run_dgd,
)
from repro.utils.rng import SeedLike, ensure_rng, spawn_rngs
from repro.utils.validation import check_vector

__all__ = ["run_dgd_batch", "batch_unsupported_reason"]


def batch_unsupported_reason(
    costs: Sequence[CostFunction],
    behavior: Optional[ByzantineBehavior],
    config: DGDConfig,
    gradient_filter: GradientFilter,
) -> Optional[str]:
    """Why a configuration cannot take the vectorized fast path.

    Returns ``None`` when the fast path applies, otherwise a human-readable
    reason (the engine then falls back to sequential execution).
    """
    if config.crash_rounds:
        return "crash faults need the full message-passing simulator"
    if config.record_messages:
        return "message recording needs the full message-passing simulator"
    if gradient_filter.stateful:
        return (
            f"filter {type(gradient_filter).__name__} is stateful and cannot "
            "be shared across replicate runs"
        )
    for index, cost in enumerate(costs):
        if not isinstance(cost, QuadraticCost):
            return (
                f"cost {index} ({type(cost).__name__}) has no batched "
                "gradient kernel (only quadratic costs are vectorized)"
            )
    return None


_DTYPES = {
    None: np.float64,
    "float64": np.float64,
    "float32": np.float32,
    np.float64: np.float64,
    np.float32: np.float32,
}


def _resolve_dtype(dtype) -> np.dtype:
    """Map a user-facing dtype spec to float32/float64 (the only two modes)."""
    try:
        return np.dtype(_DTYPES[dtype])
    except (KeyError, TypeError):
        raise InvalidParameterError(
            f"dtype must be 'float64' or 'float32', got {dtype!r}"
        ) from None


def _forged_matrix(
    G: np.ndarray, forged: np.ndarray, faulty_idx: np.ndarray
) -> np.ndarray:
    """The received-gradient tensor: honest rows of ``G``, forged rows on top.

    Copies ``G`` before overwriting the faulty rows — ``G`` stays the pure
    honest-gradient tensor (attack closures and telemetry may read it after
    the forge), and the returned tensor shares no memory with it.
    """
    M = G.copy()
    M[:, faulty_idx] = forged
    return M


def _vectorized_forger(
    behavior: ByzantineBehavior,
    faulty_ids: Sequence[int],
    honest_ids: Sequence[int],
    costs: Sequence[CostFunction],
    rngs: Sequence[np.random.Generator],
):
    """Build ``forge(t, X, G) -> (K, |F|, d)`` for the configured behaviour.

    Exact-type matches get a closed-form vectorized expression; any other
    behaviour is invoked per run slice through a real
    :class:`AttackContext`, which reproduces the sequential semantics for
    arbitrary (randomized, adaptive, even wrapped) behaviours.
    """
    faulty_idx = np.asarray(faulty_ids, dtype=int)
    honest_idx = np.asarray(honest_ids, dtype=int)
    num_faulty = faulty_idx.shape[0]

    kind = type(behavior)
    if kind is GradientReverse:
        strength = behavior.strength

        def forge(t: int, X: np.ndarray, G: np.ndarray) -> np.ndarray:
            return -strength * G[:, faulty_idx]

        return forge
    if kind is ZeroGradient:

        def forge(t: int, X: np.ndarray, G: np.ndarray) -> np.ndarray:
            return np.zeros((X.shape[0], num_faulty, X.shape[1]))

        return forge
    if kind is SignFlip:
        strength = behavior.strength

        def forge(t: int, X: np.ndarray, G: np.ndarray) -> np.ndarray:
            if honest_idx.shape[0] == 0:
                direction = np.zeros((X.shape[0], X.shape[1]))
            else:
                direction = -strength * G[:, honest_idx].mean(axis=1)
            return np.broadcast_to(
                direction[:, None, :], (X.shape[0], num_faulty, X.shape[1])
            )

        return forge
    if kind is ConstantBias:
        bias = behavior.bias
        # Validated here, at construction, so a misconfigured bias fails
        # before the round loop starts and the hot path carries no branch.
        dimension = costs[0].dimension
        if bias.shape[0] != dimension:
            raise InvalidParameterError(
                f"bias dimension {bias.shape[0]} does not match problem "
                f"dimension {dimension}"
            )

        def forge(t: int, X: np.ndarray, G: np.ndarray) -> np.ndarray:
            return np.broadcast_to(
                bias[None, None, :], (X.shape[0], num_faulty, X.shape[1])
            )

        return forge

    faulty_costs = [costs[i] for i in faulty_ids]
    honest_list = list(honest_ids)
    faulty_list = list(faulty_ids)

    def forge_per_slice(t: int, X: np.ndarray, G: np.ndarray) -> np.ndarray:
        forged = np.empty((X.shape[0], num_faulty, X.shape[1]))
        for k in range(X.shape[0]):
            context = AttackContext(
                round_index=t,
                estimate=X[k],
                honest_gradients=G[k, honest_idx],
                honest_ids=honest_list,
                faulty_ids=faulty_list,
                faulty_costs=faulty_costs,
                rng=rngs[k],
            )
            forged[k] = behavior(context)
        return forged

    return forge_per_slice


def _json_seed(seed: SeedLike):
    """A JSON-safe rendering of a seed for telemetry records."""
    return int(seed) if isinstance(seed, (int, np.integer)) else str(seed)


def _emit_round_records(
    tel,
    gradient_filter: GradientFilter,
    filter_name: str,
    M: np.ndarray,
    X: np.ndarray,
    eta: float,
    t: int,
    seeds: Sequence[SeedLike],
    run_offset: int = 0,
) -> None:
    """One telemetry round record per run slice (telemetry-enabled only).

    ``M`` is the *already-sanitized* tensor the aggregation consumed — the
    round loop sanitizes exactly once per round and shares the result, so
    the records describe the same bytes the filter saw without a second
    sanitize pass. Norm statistics and kept sets are computed in vectorized
    passes; only the final per-run record assembly is a Python loop.
    ``run_offset`` shifts the ``run`` tag when ``M`` covers one tile of a
    larger batch; ``seeds`` is that tile's slice of the seed list.
    """
    norms = np.linalg.norm(M, axis=2)
    kept = None
    if hasattr(gradient_filter, "_kept_indices_batch"):
        kept = gradient_filter._kept_indices_batch(M)
    for k in range(M.shape[0]):
        tel.record_round(
            round_index=t,
            filter_name=filter_name,
            step_size=eta,
            gradient_norms=norms[k],
            kept_ids=None if kept is None else kept[k],
            estimate=X[k],
            run=run_offset + k,
            seed=_json_seed(seeds[k]),
        )


def run_dgd_batch(
    costs: Sequence[CostFunction],
    behavior: Optional[ByzantineBehavior] = None,
    config: Optional[DGDConfig] = None,
    seeds: Optional[Sequence[SeedLike]] = None,
    round_hook: Optional[Callable[[int], None]] = None,
    telemetry: TelemetryLike = None,
    backend: Union[str, ArrayBackend] = "numpy",
    dtype=None,
    tile_size: Optional[int] = None,
    **config_overrides,
) -> List[Trace]:
    """Execute ``K`` replicate DGD runs, vectorized across the batch.

    Parameters
    ----------
    costs, behavior, config:
        As for :func:`repro.system.runner.run_dgd`; keyword overrides are
        applied on top of ``config``.
    seeds:
        One master seed per replicate run; defaults to ``[config.seed]``
        (a batch of one). Every other configuration field is shared.
    round_hook:
        Optional ``hook(t)`` invoked after round ``t`` completes on the
        vectorized fast path — a seam for progress reporting and for the
        chaos suite to inject faults *mid-execution* (a raising hook
        aborts the batch; re-running it is bit-identical, so the sweep
        engine's retry ladder recovers exactly). Not invoked on the
        sequential fallback path, which has no shared round loop. When
        ``tile_size`` splits the batch, the hook fires once per tile per
        round.
    backend:
        A registered array-backend name (``"numpy"``, ``"torch"``,
        ``"numba"``) or an :class:`~repro.system.backends.ArrayBackend`
        instance. The default ``"numpy"`` is the bit-identity-pinned
        reference; other backends run the hot kernels (affine gradient
        map, filter aggregation, projection) under a tolerance contract.
        A filter without a backend-portable ``kernel_spec`` aggregates
        through its own numpy implementation regardless of the backend.
    dtype:
        ``"float64"`` (default) or ``"float32"``. Float32 halves the
        working-set footprint of the ``(K, n, d)`` tensors; like non-numpy
        backends it is held to the tolerance contract, not bit-identity.
    tile_size:
        Maximum number of runs materialized at once. ``None`` (default)
        processes the whole batch in one ``(K, n, d)`` tensor; a positive
        value streams ceil(K / tile_size) bounded tiles through the round
        loop, trading a little per-tile overhead for a bounded peak
        memory of ``O(tile_size · n · d)``. Traces are unaffected — runs
        are independent, so tiling is invisible in the output.
    telemetry:
        Optional :class:`~repro.observability.Telemetry` handle (or JSONL
        path), defaulting to the no-op. On the fast path it emits one
        ``"round"`` record per round *per run slice* (tagged ``run=k`` and
        ``seed=seeds[k]``), with the filter's kept set computed by the
        batched kernel — norms and kept indices are derived from the same
        stacked tensor the filter aggregates, outside the arithmetic of
        the update itself, so enabling telemetry never perturbs the
        bit-identical guarantee. On the sequential fallback the handle is
        passed through to each :func:`run_dgd`, with a ``"run_start"``
        event marking each run's slice of the stream.

    Returns
    -------
    list of Trace
        ``traces[k]`` is bit-identical to
        ``run_dgd(costs, behavior, config, seed=seeds[k])`` in its
        estimates, directions, and accounting fields. Each trace's
        ``extra["batch"]`` records the batch size and total wall time;
        ``wall_time`` is the amortized per-run share.
    """
    if config is None:
        config = DGDConfig()
    config = apply_config_overrides(config, config_overrides)
    seeds = [config.seed] if seeds is None else list(seeds)
    if not seeds:
        raise InvalidParameterError("seeds must contain at least one entry")
    backend_obj = resolve_backend(backend)
    np_dtype = _resolve_dtype(dtype)
    if tile_size is not None and tile_size <= 0:
        raise InvalidParameterError(f"tile_size must be positive, got {tile_size}")
    fast_path_only = (
        backend_obj.name != "numpy" or np_dtype != np.float64 or tile_size is not None
    )

    costs = list(costs)
    n = len(costs)
    if n == 0:
        raise InvalidParameterError("at least one agent required")
    dimension = costs[0].dimension
    for index, cost in enumerate(costs):
        if cost.dimension != dimension:
            raise InvalidParameterError(
                f"cost {index} has dimension {cost.dimension}, expected {dimension}"
            )
    faulty_ids = sorted(set(int(i) for i in config.faulty_ids))
    if any(i < 0 or i >= n for i in faulty_ids):
        raise InvalidParameterError("faulty_ids out of range")
    f = config.resolved_f()
    if len(faulty_ids) + len(config.crash_rounds or {}) > f:
        raise InvalidParameterError(
            f"{len(faulty_ids) + len(config.crash_rounds or {})} faulty agents "
            f"exceed the announced bound f={f}"
        )
    if faulty_ids and behavior is None:
        raise InvalidParameterError("faulty agents configured but no behavior given")

    gradient_filter = config.gradient_filter
    if isinstance(gradient_filter, str):
        gradient_filter = make_filter(gradient_filter, f=f)

    tel = ensure_telemetry(telemetry)
    reason = batch_unsupported_reason(costs, behavior, config, gradient_filter)
    if reason is not None:
        if fast_path_only:
            # Falling back would silently drop the requested backend, dtype,
            # or tiling (the sequential runner has none of them) — refuse
            # instead of degrading.
            raise InvalidParameterError(
                "backend/dtype/tile_size apply only to the vectorized fast "
                f"path, but this configuration cannot take it: {reason}"
            )
        traces = []
        for k, seed in enumerate(seeds):
            if tel:
                tel.emit("run_start", run=k, seed=_json_seed(seed), reason=reason)
            traces.append(
                run_dgd(
                    costs,
                    behavior,
                    apply_config_overrides(config, {"seed": seed}),
                    telemetry=tel,
                )
            )
        return traces

    K = len(seeds)
    T = config.iterations
    honest_ids = [i for i in range(n) if i not in faulty_ids]

    # Per-run randomness, derived exactly as the sequential runner does.
    adversary_rngs = []
    for seed in seeds:
        adversary_rng, _network_rng = spawn_rngs(ensure_rng(seed), 2)
        adversary_rngs.append(adversary_rng)

    step_sizes = config.step_sizes or _default_schedule(costs, gradient_filter)
    if not step_sizes.satisfies_robbins_monro:
        warnings.warn(
            "step-size schedule violates the Robbins-Monro conditions; the "
            "convergence theorem does not apply",
            stacklevel=2,
        )
    projection = config.projection or BoxSet.centered(dimension, config.box_half_width)
    if not projection.is_compact:
        warnings.warn(
            "projection set is not compact; the convergence theorem requires "
            "a compact convex W",
            stacklevel=2,
        )
    project_batch = backend_obj.projector(projection)
    x0 = (
        np.zeros(dimension)
        if config.x0 is None
        else check_vector(config.x0, dimension=dimension, name="x0")
    )
    x0 = projection.project(x0).astype(np_dtype, copy=False)

    # Batched affine gradient map: G[k, i] = P_i @ X[k] + q_i, bound once on
    # the backend (the numpy backend's broadcast matmul matches the
    # sequential dgemv bit-for-bit). The constants are cast to the requested
    # precision once, outside the round loop.
    P = np.stack([cost.P for cost in costs]).astype(np_dtype, copy=False)
    q = np.stack([cost.q for cost in costs]).astype(np_dtype, copy=False)
    gradients = backend_obj.bind_affine(P, q)

    if n < gradient_filter.minimum_inputs():
        raise InvalidParameterError(
            f"{type(gradient_filter).__name__} with f={gradient_filter.f} "
            f"requires at least {gradient_filter.minimum_inputs()} gradients, "
            f"got {n}"
        )
    spec = gradient_filter.kernel_spec()
    use_backend_agg = (
        backend_obj.name != "numpy"
        and spec is not None
        and backend_obj.supports(spec)
    )

    faulty_idx = np.asarray(faulty_ids, dtype=int)

    estimates = np.empty((K, T + 1, dimension), dtype=np_dtype)
    directions = np.empty((K, T, dimension), dtype=np_dtype)

    filter_name = getattr(gradient_filter, "name", type(gradient_filter).__name__)
    if tel:
        tel.annotate(byzantine_ids=faulty_ids)

    step = K if tile_size is None else int(tile_size)
    tiles = [slice(lo, min(lo + step, K)) for lo in range(0, K, step)]

    start = time.perf_counter()
    with tel.span("run"):
        for tile in tiles:
            tile_seeds = seeds[tile]
            forge = (
                _vectorized_forger(
                    behavior, faulty_ids, honest_ids, costs, adversary_rngs[tile]
                )
                if faulty_ids
                else None
            )
            X = np.broadcast_to(x0, (len(tile_seeds), dimension)).copy()
            estimates[tile, 0] = X
            for t in range(T):
                with tel.span("round"):
                    G = gradients(X)
                    if forge is not None:
                        M = _forged_matrix(G, forge(t, X, G), faulty_idx)
                    else:
                        M = G
                    # The round's single sanitize pass: aggregation and the
                    # telemetry records below both consume this tensor.
                    M = GradientFilter.sanitize(M)
                    if use_backend_agg:
                        D = backend_obj.aggregate(M, spec)
                    else:
                        D = gradient_filter.aggregate_batch(M, presanitized=True)
                    directions[tile, t] = D
                    eta = step_sizes(t)
                    # asarray is a no-op in float64; in float32 it undoes the
                    # float64 promotion some projections introduce.
                    X = np.asarray(project_batch(X - eta * D), dtype=np_dtype)
                    estimates[tile, t + 1] = X
                if tel:
                    _emit_round_records(
                        tel,
                        gradient_filter,
                        filter_name,
                        M,
                        X,
                        eta,
                        t,
                        tile_seeds,
                        run_offset=tile.start,
                    )
                if round_hook is not None:
                    round_hook(t)
    elapsed = time.perf_counter() - start

    # Closed-form network accounting: every round delivers one estimate
    # broadcast to each of the n agents and gathers one gradient from each
    # (nobody is ever silent on the fast path), every payload being a
    # d-vector plus headers — identical to the simulator's per-message
    # bookkeeping.
    message_bytes = 16 + 8 * dimension
    messages_delivered = 2 * n * T
    bytes_delivered = messages_delivered * message_bytes

    traces = []
    for k in range(K):
        traces.append(
            Trace(
                estimates=estimates[k].copy(),
                directions=directions[k].copy(),
                honest_ids=list(honest_ids),
                faulty_ids=list(faulty_ids),
                eliminated=[],
                wall_time=elapsed / K,
                messages_delivered=messages_delivered,
                bytes_delivered=bytes_delivered,
                filter_name=filter_name,
                crash_ids=[],
                extra={
                    "batch": {
                        "size": K,
                        "wall_time": elapsed,
                        "backend": backend_obj.name,
                        "dtype": np_dtype.name,
                        "tile_size": tile_size,
                    }
                },
            )
        )
    return traces
