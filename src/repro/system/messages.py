"""Typed messages exchanged in the synchronous protocol.

Keeping messages as explicit immutable objects (rather than passing raw
arrays between functions) gives the simulator a faithful message-passing
shape: every value that crosses the network is logged, counted, and can be
inspected by tests and by the rushing adversary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import InvalidParameterError

#: Conventional node id of the trusted server in the server-based architecture.
SERVER_ID = -1


@dataclass(frozen=True)
class Message:
    """Base class for protocol messages.

    Attributes
    ----------
    sender:
        Node id of the origin (``SERVER_ID`` for the server).
    round_index:
        Synchronous round the message belongs to.
    """

    sender: int
    round_index: int

    def __post_init__(self):
        if self.round_index < 0:
            raise InvalidParameterError(
                f"round_index must be non-negative, got {self.round_index}"
            )

    def size_bytes(self) -> int:
        """Approximate wire size, used by the network's traffic accounting."""
        return 16  # headers only; payload classes add their own.


@dataclass(frozen=True)
class EstimateBroadcast(Message):
    """Server → agents: the current estimate ``x^t``."""

    estimate: np.ndarray = field(default=None)

    def __post_init__(self):
        super().__post_init__()
        estimate = np.asarray(self.estimate, dtype=float)
        if estimate.ndim != 1:
            raise InvalidParameterError(
                f"estimate must be a 1-D vector, got shape {estimate.shape}"
            )
        if not np.all(np.isfinite(estimate)):
            raise InvalidParameterError("estimate contains non-finite entries")
        object.__setattr__(self, "estimate", estimate)

    def size_bytes(self) -> int:
        return 16 + 8 * self.estimate.shape[0]


@dataclass(frozen=True)
class GradientMessage(Message):
    """Agent → server: the (claimed) local gradient at the broadcast estimate.

    A Byzantine sender controls the payload bytes entirely, so — unlike
    :class:`EstimateBroadcast`, which only the trusted server emits — the
    gradient payload is *not* required to be finite here; the server-side
    filter sanitizes it (see ``GradientFilter.sanitize``).
    """

    gradient: np.ndarray = field(default=None)

    def __post_init__(self):
        super().__post_init__()
        gradient = np.asarray(self.gradient, dtype=float)
        if gradient.ndim != 1:
            raise InvalidParameterError(
                f"gradient must be a 1-D vector, got shape {gradient.shape}"
            )
        object.__setattr__(self, "gradient", gradient)

    def size_bytes(self) -> int:
        return 16 + 8 * self.gradient.shape[0]
