"""Typed messages exchanged in the synchronous protocol.

Keeping messages as explicit immutable objects (rather than passing raw
arrays between functions) gives the simulator a faithful message-passing
shape: every value that crosses the network is logged, counted, and can be
inspected by tests and by the rushing adversary.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import InvalidParameterError, ProtocolViolationError

#: Conventional node id of the trusted server in the server-based architecture.
SERVER_ID = -1


@dataclass(frozen=True)
class Message:
    """Base class for protocol messages.

    Attributes
    ----------
    sender:
        Node id of the origin (``SERVER_ID`` for the server).
    round_index:
        Synchronous round the message belongs to.
    """

    sender: int
    round_index: int

    def __post_init__(self):
        if self.round_index < 0:
            raise InvalidParameterError(
                f"round_index must be non-negative, got {self.round_index}"
            )

    def size_bytes(self) -> int:
        """Approximate wire size, used by the network's traffic accounting."""
        return 16  # headers only; payload classes add their own.


@dataclass(frozen=True)
class EstimateBroadcast(Message):
    """Server → agents: the current estimate ``x^t``."""

    estimate: np.ndarray = field(default=None)

    def __post_init__(self):
        super().__post_init__()
        estimate = np.asarray(self.estimate, dtype=float)
        if estimate.ndim != 1:
            raise InvalidParameterError(
                f"estimate must be a 1-D vector, got shape {estimate.shape}"
            )
        if not np.all(np.isfinite(estimate)):
            raise InvalidParameterError("estimate contains non-finite entries")
        object.__setattr__(self, "estimate", estimate)

    def size_bytes(self) -> int:
        return 16 + 8 * self.estimate.shape[0]


@dataclass(frozen=True)
class GradientMessage(Message):
    """Agent → server: the (claimed) local gradient at the broadcast estimate.

    A Byzantine sender controls the payload bytes entirely, so — unlike
    :class:`EstimateBroadcast`, which only the trusted server emits — the
    gradient payload is *not* required to be finite here; the server-side
    filter sanitizes it (see ``GradientFilter.sanitize``).
    """

    gradient: np.ndarray = field(default=None)

    def __post_init__(self):
        super().__post_init__()
        gradient = np.asarray(self.gradient, dtype=float)
        if gradient.ndim != 1:
            raise InvalidParameterError(
                f"gradient must be a 1-D vector, got shape {gradient.shape}"
            )
        object.__setattr__(self, "gradient", gradient)

    def size_bytes(self) -> int:
        return 16 + 8 * self.gradient.shape[0]

    @property
    def is_finite(self) -> bool:
        """Whether every payload entry is finite (NaN/Inf-free)."""
        return bool(np.all(np.isfinite(self.gradient)))

    def payload_digest(self) -> str:
        """SHA-256 hex digest of the exact payload bytes.

        Used by the partially-synchronous runtime to deduplicate replayed
        copies of a message and to detect *conflicting* duplicates (same
        sender and round, different payload bytes) without comparing
        arrays pairwise. NaNs digest by their bit pattern, so two
        NaN-corrupted copies with identical bytes still deduplicate.
        """
        return hashlib.sha256(
            np.ascontiguousarray(self.gradient).tobytes()
        ).hexdigest()

    def validate(self, dimension: Optional[int] = None) -> "GradientMessage":
        """Check the payload a well-behaved sender would produce.

        The constructor deliberately admits arbitrary payload bytes — a
        Byzantine sender controls them entirely — so validation is a
        *separate*, explicit boundary step: the server calls it on every
        received gradient and quarantines (or rejects) offenders before
        they can reach an aggregator whose norm-sort is undefined on NaN.

        Raises
        ------
        ProtocolViolationError
            When the payload has the wrong dimension or any non-finite
            entry. Returns ``self`` otherwise, so validation chains.
        """
        if dimension is not None and self.gradient.shape[0] != dimension:
            raise ProtocolViolationError(
                f"gradient from agent {self.sender} (round {self.round_index}) "
                f"has dimension {self.gradient.shape[0]}, expected {dimension}"
            )
        if not self.is_finite:
            bad = int(np.count_nonzero(~np.isfinite(self.gradient)))
            raise ProtocolViolationError(
                f"gradient from agent {self.sender} (round {self.round_index}) "
                f"carries {bad} non-finite entr{'y' if bad == 1 else 'ies'}"
            )
        return self
