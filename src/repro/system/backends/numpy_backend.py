"""The default (and bit-identity-pinned) numpy array backend.

Every expression here is byte-for-byte the arithmetic the batch engine
used before the backend seam existed — the sequential-vs-batch equivalence
suite depends on that, so treat this module as frozen numerics: any change
to an expression must keep ``np.array_equal`` against the sequential
runner's per-round arithmetic.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.aggregators import kernels
from repro.optimization.projections import BallSet, BoxSet, UnconstrainedSet
from repro.system.backends.base import ArrayBackend

__all__ = ["NumpyBackend", "numpy_batch_projector"]


def numpy_batch_projector(projection) -> Callable[[np.ndarray], np.ndarray]:
    """A map projecting each row of a ``(K, d)`` matrix onto ``projection``.

    Specialized (and bit-identical) for the closed-form sets; other sets
    fall back to a per-row loop over ``projection.project``.
    """
    if isinstance(projection, BoxSet):
        lower, upper = projection.lower, projection.upper
        return lambda X: np.clip(X, lower, upper)
    if isinstance(projection, UnconstrainedSet):
        return lambda X: X
    if isinstance(projection, BallSet):
        center, radius = projection.center, projection.radius

        def project_ball(X: np.ndarray) -> np.ndarray:
            delta = X - center
            norms = np.linalg.norm(delta, axis=1)
            outside = norms > radius
            if np.any(outside):
                X = X.copy()
                scales = radius / norms[outside]
                X[outside] = center + delta[outside] * scales[:, None]
            return X

        return project_ball
    return lambda X: np.stack([projection.project(row) for row in X])


class NumpyBackend(ArrayBackend):
    """Reference backend: exact numpy arithmetic, bit-identity guaranteed."""

    name = "numpy"
    equivalence = "bit-identical"

    def bind_affine(self, P, q):
        # Broadcast matmul, which matches the sequential dgemv bit-for-bit.
        def gradients(X: np.ndarray) -> np.ndarray:
            return (P[None] @ X[:, None, :, None])[..., 0] + q[None]

        return gradients

    def supports(self, spec: Optional[Dict]) -> bool:
        return spec is not None and spec.get("kind") in (
            "cge",
            "cwtm",
            "median",
            "mean",
            "sum",
        )

    def aggregate(self, tensor: np.ndarray, spec: Dict) -> np.ndarray:
        kind = spec["kind"]
        if kind == "cge":
            return kernels.cge_aggregate_batch(
                tensor, spec["f"], spec.get("mode", "sum")
            )
        if kind == "cwtm":
            return kernels.partition_trimmed_mean(tensor, spec["f"])
        if kind == "median":
            return kernels.median_batch(tensor)
        if kind == "mean":
            return kernels.mean_batch(tensor)
        if kind == "sum":
            return kernels.sum_batch(tensor)
        raise NotImplementedError(f"kernel spec {spec!r}")  # pragma: no cover

    def projector(self, projection):
        return numpy_batch_projector(projection)
