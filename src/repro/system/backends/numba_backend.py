"""Optional numba array backend (tolerance equivalence class).

Importing this module requires ``numba`` (install the ``numba`` extra);
the registry's loader imports it lazily and maps an :class:`ImportError`
to :class:`~repro.exceptions.BackendUnavailableError`.

The kernels are ``@njit(parallel=True)`` loops compiled on first call
(numba's lazy dispatch), so constructing the backend is cheap and the JIT
cost is paid once per process per dtype signature. Accumulations run in
float64 scalar loops whose association order differs from numpy's pairwise
reductions — hence the tolerance (not bit-identity) contract. The CGE
kept set uses a stable mergesort on norms so tied norms resolve by row
index, matching the numpy kernel's deterministic tie-break.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
from numba import njit, prange

from repro.system.backends.base import ArrayBackend
from repro.system.backends.numpy_backend import numpy_batch_projector

__all__ = ["NumbaBackend"]


@njit(cache=True, parallel=True)
def _affine_kernel(P, q, X):  # pragma: no cover - compiled
    n, d, _ = P.shape
    K = X.shape[0]
    G = np.empty((K, n, d))
    for k in prange(K):
        for i in range(n):
            for a in range(d):
                acc = q[i, a]
                for b in range(d):
                    acc += P[i, a, b] * X[k, b]
                G[k, i, a] = acc
    return G


@njit(cache=True, parallel=True)
def _trimmed_mean_kernel(tensor, f):  # pragma: no cover - compiled
    K, n, d = tensor.shape
    keep = n - 2 * f
    out = np.empty((K, d))
    for k in prange(K):
        for j in range(d):
            lane = tensor[k, :, j].copy()
            lane.sort()
            acc = 0.0
            for i in range(f, n - f):
                acc += lane[i]
            out[k, j] = acc / keep
    return out


@njit(cache=True, parallel=True)
def _median_kernel(tensor):  # pragma: no cover - compiled
    K, n, d = tensor.shape
    out = np.empty((K, d))
    for k in prange(K):
        for j in range(d):
            lane = tensor[k, :, j].copy()
            lane.sort()
            if n % 2 == 1:
                out[k, j] = lane[n // 2]
            else:
                out[k, j] = (lane[n // 2 - 1] + lane[n // 2]) / 2.0
    return out


@njit(cache=True, parallel=True)
def _cge_kernel(tensor, f, mean_mode):  # pragma: no cover - compiled
    K, n, d = tensor.shape
    keep = n - f
    out = np.zeros((K, d))
    for k in prange(K):
        norms = np.empty(n)
        for i in range(n):
            acc = 0.0
            for j in range(d):
                acc += tensor[k, i, j] * tensor[k, i, j]
            norms[i] = np.sqrt(acc)
        order = np.argsort(norms, kind="mergesort")
        for r in range(keep):
            i = order[r]
            for j in range(d):
                out[k, j] += tensor[k, i, j]
        if mean_mode:
            for j in range(d):
                out[k, j] /= keep
    return out


@njit(cache=True, parallel=True)
def _reduce_kernel(tensor, mean_mode):  # pragma: no cover - compiled
    K, n, d = tensor.shape
    out = np.zeros((K, d))
    for k in prange(K):
        for i in range(n):
            for j in range(d):
                out[k, j] += tensor[k, i, j]
        if mean_mode:
            for j in range(d):
                out[k, j] /= n
    return out


class NumbaBackend(ArrayBackend):
    """JIT-compiled parallel loops over the batched tensors."""

    name = "numba"
    equivalence = "tolerance"

    def bind_affine(self, P, q):
        P64 = np.ascontiguousarray(P, dtype=np.float64)
        q64 = np.ascontiguousarray(q, dtype=np.float64)

        def gradients(X: np.ndarray) -> np.ndarray:
            return _affine_kernel(P64, q64, np.ascontiguousarray(X, dtype=np.float64))

        return gradients

    def supports(self, spec: Optional[Dict]) -> bool:
        return spec is not None and spec.get("kind") in (
            "cge",
            "cwtm",
            "median",
            "mean",
            "sum",
        )

    def aggregate(self, tensor: np.ndarray, spec: Dict) -> np.ndarray:
        t = np.ascontiguousarray(tensor, dtype=np.float64)
        kind = spec["kind"]
        if kind == "cwtm":
            f = int(spec["f"])
            if f == 0:
                return _reduce_kernel(t, True)
            return _trimmed_mean_kernel(t, f)
        if kind == "median":
            return _median_kernel(t)
        if kind == "cge":
            return _cge_kernel(t, int(spec["f"]), spec.get("mode", "sum") == "mean")
        if kind == "mean":
            return _reduce_kernel(t, True)
        if kind == "sum":
            return _reduce_kernel(t, False)
        raise NotImplementedError(f"kernel spec {spec!r}")  # pragma: no cover

    def projector(self, projection):
        # O(K·d) host work; JIT overhead would dominate any win here.
        return numpy_batch_projector(projection)
