"""Array backends for the batch engine's hot kernels.

The default ``"numpy"`` backend is always available and bit-identity
pinned; ``"torch"`` and ``"numba"`` are optional extras, registered here
by name but imported only when first resolved — a missing dependency
surfaces as :class:`~repro.exceptions.BackendUnavailableError` at
:func:`resolve_backend` time, never at package import.

Register additional backends with :func:`register_backend`; the batch
engine, sweep engine, and CLI accept any registered name.
"""

from __future__ import annotations

from repro.exceptions import BackendUnavailableError
from repro.system.backends.base import (
    ArrayBackend,
    available_backends,
    backend_names,
    register_backend,
    resolve_backend,
)
from repro.system.backends.numpy_backend import NumpyBackend, numpy_batch_projector

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "NumpyBackend",
    "available_backends",
    "backend_names",
    "numpy_batch_projector",
    "register_backend",
    "resolve_backend",
]


def _load_numpy() -> ArrayBackend:
    return NumpyBackend()


def _load_torch() -> ArrayBackend:
    try:
        from repro.system.backends.torch_backend import TorchBackend
    except ImportError as exc:
        raise BackendUnavailableError(
            "the 'torch' array backend needs the torch extra "
            "(pip install 'repro[torch]'): " + str(exc)
        ) from exc
    return TorchBackend()


def _load_numba() -> ArrayBackend:
    try:
        from repro.system.backends.numba_backend import NumbaBackend
    except ImportError as exc:
        raise BackendUnavailableError(
            "the 'numba' array backend needs the numba extra "
            "(pip install 'repro[numba]'): " + str(exc)
        ) from exc
    return NumbaBackend()


register_backend("numpy", _load_numpy)
register_backend("torch", _load_torch)
register_backend("numba", _load_numba)
