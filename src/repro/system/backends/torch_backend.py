"""Optional torch array backend (tolerance equivalence class).

Importing this module requires ``torch`` (install the ``torch`` extra);
the registry's loader imports it lazily and maps an :class:`ImportError`
to :class:`~repro.exceptions.BackendUnavailableError`.

Numerics: torch reduces sums in a different association order than numpy
(and may use fused multiply-adds), so this backend is held to the
``np.allclose`` tolerance suite, never bit-identity. The CGE kept set is
computed with a *stable* argsort on ``(norm)`` so tied norms resolve by
row index, matching the numpy kernel's deterministic tie-break.

All methods take and return numpy arrays: the batch engine keeps its
round state on the host, and this backend pays one transfer per kernel
call (the constants ``P``/``q`` transfer once, at :meth:`bind_affine`).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
import torch

from repro.optimization.projections import BallSet, BoxSet
from repro.system.backends.base import ArrayBackend
from repro.system.backends.numpy_backend import numpy_batch_projector

__all__ = ["TorchBackend"]


class TorchBackend(ArrayBackend):
    """Batched kernels on torch tensors (CPU by default).

    Parameters
    ----------
    device:
        A torch device string (``"cpu"``, ``"cuda"``); ``None`` picks CPU —
        the deterministic choice, and the only one exercised in CI.
    """

    name = "torch"
    equivalence = "tolerance"

    def __init__(self, device: Optional[str] = None):
        self._device = torch.device(device) if device is not None else torch.device("cpu")

    def _tensor(self, array: np.ndarray) -> "torch.Tensor":
        return torch.from_numpy(np.ascontiguousarray(array)).to(self._device)

    def bind_affine(self, P, q):
        P_t = self._tensor(P)
        q_t = self._tensor(q)

        def gradients(X: np.ndarray) -> np.ndarray:
            X_t = self._tensor(X)
            G = torch.einsum("nab,kb->kna", P_t, X_t) + q_t
            return G.cpu().numpy()

        return gradients

    def supports(self, spec: Optional[Dict]) -> bool:
        return spec is not None and spec.get("kind") in (
            "cge",
            "cwtm",
            "median",
            "mean",
            "sum",
        )

    def aggregate(self, tensor: np.ndarray, spec: Dict) -> np.ndarray:
        t = self._tensor(tensor)
        kind = spec["kind"]
        n = t.shape[1]
        if kind == "mean":
            out = t.mean(dim=1)
        elif kind == "sum":
            out = t.sum(dim=1)
        elif kind == "cwtm":
            f = int(spec["f"])
            if f == 0:
                out = t.mean(dim=1)
            else:
                ordered, _ = torch.sort(t, dim=1)
                out = ordered[:, f : n - f].mean(dim=1)
        elif kind == "median":
            # numpy semantics: an even n averages the two middle order
            # statistics (torch.median returns the lower one, so sort).
            ordered, _ = torch.sort(t, dim=1)
            out = (ordered[:, (n - 1) // 2] + ordered[:, n // 2]) / 2
        elif kind == "cge":
            f = int(spec["f"])
            keep = n - f
            norms = torch.linalg.vector_norm(t, dim=2)
            order = torch.argsort(norms, dim=1, stable=True)
            kept = order[:, :keep]
            picked = torch.gather(
                t, 1, kept.unsqueeze(-1).expand(-1, -1, t.shape[2])
            )
            out = picked.sum(dim=1)
            if spec.get("mode", "sum") == "mean":
                out = out / keep
        else:  # pragma: no cover - guarded by supports()
            raise NotImplementedError(f"kernel spec {spec!r}")
        return out.cpu().numpy()

    def projector(self, projection):
        if isinstance(projection, BoxSet):
            lower = self._tensor(np.asarray(projection.lower, dtype=float))
            upper = self._tensor(np.asarray(projection.upper, dtype=float))

            def project_box(X: np.ndarray) -> np.ndarray:
                X_t = self._tensor(X)
                return torch.clamp(X_t, lower, upper).cpu().numpy().astype(X.dtype)

            return project_box
        if isinstance(projection, BallSet):
            center = np.asarray(projection.center, dtype=float)
            radius = float(projection.radius)
            center_t = self._tensor(center)

            def project_ball(X: np.ndarray) -> np.ndarray:
                X_t = self._tensor(X)
                delta = X_t - center_t
                norms = torch.linalg.vector_norm(delta, dim=1, keepdim=True)
                scale = torch.clamp(radius / torch.clamp(norms, min=1e-300), max=1.0)
                return (center_t + delta * scale).cpu().numpy().astype(X.dtype)

            return project_ball
        # Exotic sets project row-by-row through the host implementation.
        return numpy_batch_projector(projection)
