"""The :class:`ArrayBackend` protocol and its name registry.

An array backend owns the per-round ``O(K·n·d)`` kernels of the batch
engine — the batched affine gradient map, the aggregation of a sanitized
``(K, n, d)`` tensor described by a filter's ``kernel_spec()``, and the
batched projector. The round *state* (estimates, directions, step-size
bookkeeping) stays in numpy on the host; a backend accelerates the tensor
work and hands numpy arrays back at the seam, so every consumer of a
:class:`~repro.system.runner.Trace` is backend-agnostic.

Equivalence contract
--------------------
``NumpyBackend`` (the default) is **bit-identical**: it evaluates the
exact expressions the batch engine always used, so the sequential-vs-batch
equivalence suite continues to pin ``np.array_equal``. Every other backend
is **tolerance-based**: it must match the numpy kernels to ``np.allclose``
(the suite in ``tests/test_backends.py``), never bit-for-bit — GPU matmul
order, fused multiply-adds, and library-specific reductions all reorder
floating-point sums legitimately.

Optional backends are *registered eagerly but imported lazily*: the
registry stores a loader callable, and the heavyweight import (torch,
numba) happens on first :func:`resolve_backend`. A missing extra raises
:class:`~repro.exceptions.BackendUnavailableError` at resolution time,
not at package import.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.exceptions import BackendUnavailableError, InvalidParameterError

__all__ = [
    "ArrayBackend",
    "available_backends",
    "backend_names",
    "register_backend",
    "resolve_backend",
]


class ArrayBackend(abc.ABC):
    """One implementation of the batch engine's hot tensor kernels.

    Subclasses provide the three per-round kernels; everything else in
    :func:`repro.system.batch.run_dgd_batch` (forging, telemetry, trace
    assembly) is backend-independent numpy.
    """

    #: Registry name (``"numpy"``, ``"torch"``, ``"numba"``).
    name: str = "abstract"

    #: ``"bit-identical"`` or ``"tolerance"`` — which equivalence suite
    #: the backend must pass against the sequential runner.
    equivalence: str = "tolerance"

    @abc.abstractmethod
    def bind_affine(
        self, P: np.ndarray, q: np.ndarray
    ) -> Callable[[np.ndarray], np.ndarray]:
        """Bind the batched affine gradient map ``X ↦ G``.

        ``P`` is ``(n, d, d)``, ``q`` is ``(n, d)``; the returned callable
        maps a ``(K, d)`` estimate matrix to the ``(K, n, d)`` gradient
        tensor ``G[k, i] = P_i @ X[k] + q_i``. Binding once per batch lets
        a backend pay any host→device transfer of the constants once.
        """

    def supports(self, spec: Optional[Dict]) -> bool:
        """Can :meth:`aggregate` execute this ``kernel_spec`` dict?"""
        return False

    def aggregate(self, tensor: np.ndarray, spec: Dict) -> np.ndarray:
        """Aggregate a sanitized ``(K, n, d)`` tensor per ``spec`` → ``(K, d)``.

        Only called when :meth:`supports` returned ``True`` for ``spec``.
        """
        raise NotImplementedError(
            f"backend {self.name!r} does not implement kernel spec {spec!r}"
        )

    @abc.abstractmethod
    def projector(self, projection) -> Callable[[np.ndarray], np.ndarray]:
        """A map projecting each row of a ``(K, d)`` matrix onto ``projection``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r}, equivalence={self.equivalence!r})"


#: name → loader returning a fresh ArrayBackend (imports happen inside).
_LOADERS: Dict[str, Callable[[], ArrayBackend]] = {}
#: name → resolved singleton (only successfully loaded backends).
_INSTANCES: Dict[str, ArrayBackend] = {}


def register_backend(name: str, loader: Callable[[], ArrayBackend]) -> None:
    """Register ``loader`` under ``name`` (later registrations win).

    The loader must perform any optional import itself and raise
    :class:`BackendUnavailableError` when the dependency is missing.
    """
    _LOADERS[str(name)] = loader
    _INSTANCES.pop(str(name), None)


def backend_names() -> List[str]:
    """Every registered backend name, resolvable or not."""
    return sorted(_LOADERS)


def available_backends() -> Dict[str, bool]:
    """name → whether the backend resolves on this interpreter.

    Probing imports the optional dependency (once — resolutions are
    cached), so this is what ``repro list`` prints.
    """
    out = {}
    for name in backend_names():
        try:
            resolve_backend(name)
            out[name] = True
        except BackendUnavailableError:
            out[name] = False
    return out


def resolve_backend(spec: Union[str, ArrayBackend]) -> ArrayBackend:
    """Resolve a backend name (or pass an instance through).

    Raises :class:`InvalidParameterError` for an unknown name and
    :class:`BackendUnavailableError` when the backend's optional
    dependency is not installed.
    """
    if isinstance(spec, ArrayBackend):
        return spec
    name = str(spec)
    if name in _INSTANCES:
        return _INSTANCES[name]
    if name not in _LOADERS:
        raise InvalidParameterError(
            f"unknown array backend {name!r} (registered: "
            f"{', '.join(backend_names())})"
        )
    backend = _LOADERS[name]()
    _INSTANCES[name] = backend
    return backend
