"""Sparse-topology decentralized DGD with per-neighborhood filtering.

The third architecture, after the trusted server and the dense
(broadcast-based) peer-to-peer protocol: agents sit on a sparse
communication graph (:mod:`repro.system.topology`) and each round run
resilient *consensus-style* DGD

.. math::

    z_i^t = \\mathrm{Mix}_i(\\{x_i^t\\} \\cup \\{x_j^t : j \\in N_i\\}),
    \\qquad
    x_i^{t+1} = \\Pi_W\\bigl(z_i^t - \\eta_t \\nabla Q_i(z_i^t)\\bigr)

where ``Mix_i`` is a Byzantine-robust aggregation (coordinate-wise trimmed
mean, CGE-style norm screening, or the plain mean baseline) over agent
``i``'s **closed neighborhood** — itself plus whatever neighbor states
survived the links this round. The gradient is taken at the *mixed* point
(combine-then-adapt): with a row-stochastic mix and ``η ≤ 2/L`` the
per-round map is non-expansive regardless of the graph's spectrum,
whereas adapt-then-combine diverges on graphs whose mixing matrix has
eigenvalues near ``-1/2`` (observed on random-regular graphs at
``n = 1024``). This is the setting of "Byzantine
Fault-Tolerance in Peer-to-Peer Distributed Gradient-Descent" and the
minimal-redundancy decentralized follow-up (PAPERS.md): fault-tolerance
becomes *local*, agent ``i`` surviving ``f_i`` Byzantine neighbors exactly
when its closed neighborhood satisfies ``deg_i + 1 >= 2 f_i + 1``.

Execution is vectorized end to end: one batched neighbor-gather per round
feeds the batched kernels in :mod:`repro.aggregators.kernels` (agents
grouped by their round-local ``(k_i, f_i)`` class), so n = 1024 agents on
a sparse graph cost a handful of array ops per round — no Python
per-agent loop anywhere on the hot path.

Fault model
-----------
``link_faults`` (a :class:`~repro.system.netfaults.LinkFaultModel`) makes
edges — not agents — the failure unit: per-edge drops, bounded delays,
payload corruption, scheduled partitions, and agent churn. Delays use a
*stationary re-parameterization* of the queue model: the payload arriving
on edge ``e`` at round ``t`` originated ``delay(e, t)`` rounds earlier
(served from a ring buffer of past broadcasts). Since every draw is a
pure function of ``(seed, edge, round)``, the whole degraded execution is
replayable from its seed.

Each receiver keeps a freshest-wins per-edge buffer; a neighbor is *live*
while its buffered state is at most ``resilience.max_staleness`` rounds
old (bounded-staleness reuse). When a neighborhood shrinks below its
``2 f_i + 1`` closed-neighborhood requirement — deep partition, heavy
loss — the agent degrades gracefully to its own state (local gradient
descent) for the round rather than mixing an un-defendable set; a
partitioned component therefore keeps optimizing independently and
reconciles deterministically once the cut heals.

Byzantine behaviour reuses the attack bank: a faulty agent broadcasts a
*forged state* computed by a :class:`~repro.attacks.base.ByzantineBehavior`
whose :class:`~repro.attacks.base.AttackContext` carries the honest
**states** in ``honest_gradients`` and their mean in ``estimate`` — the
documented adaptation from gradient-space to state-space forging.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.aggregators.kernels import (
    cge_kept_indices_batch,
    partition_trimmed_mean,
)
from repro.attacks.base import AttackContext, ByzantineBehavior
from repro.exceptions import InvalidParameterError
from repro.observability import TelemetryLike, ensure_telemetry
from repro.optimization.cost_functions import CostFunction, QuadraticCost
from repro.optimization.projections import BoxSet, ConvexSet
from repro.optimization.step_sizes import StepSizeSchedule, suggest_diminishing
from repro.system.backends.numpy_backend import numpy_batch_projector
from repro.system.healing import NeighborhoodLiveness, ResiliencePolicy
from repro.system.netfaults import LinkFaultModel, corrupt_payload_rows
from repro.system.topology import Topology
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_vector

__all__ = [
    "DECENTRALIZED_AGGREGATIONS",
    "DecentralizedExecutionResult",
    "run_decentralized_dgd",
]

#: Supported per-neighborhood aggregation rules.
DECENTRALIZED_AGGREGATIONS = ("cwtm", "cge", "mean")


@dataclass
class DecentralizedExecutionResult:
    """Outcome of a decentralized sparse-topology DGD execution.

    Attributes
    ----------
    final_states:
        ``(n, d)`` final state of every agent (including Byzantine ones,
        whose rows are their honestly-evolved internal states — what they
        *broadcast* was forged).
    mean_trajectory:
        ``(T + 1, d)`` trajectory of the honest agents' mean state — the
        coarse convergence diagnostic.
    budgets:
        The resolved per-agent local fault budgets ``f_i``.
    counters:
        Link/healing bookkeeping: ``dropped_edges``, ``delayed_edges``,
        ``corrupted_edges``, ``quarantined``, ``stale_reuses``,
        ``degraded_agent_rounds`` (rounds an agent fell back to its own
        state), ``frozen_agent_rounds`` (churn), ``suspected_edge_events``
        and ``reinstated_edge_events`` (liveness transitions).
    states:
        ``(T + 1, n, d)`` full trajectory when ``record_states`` was set,
        else ``None``.
    """

    final_states: np.ndarray
    mean_trajectory: np.ndarray
    honest_ids: List[int]
    faulty_ids: List[int]
    budgets: np.ndarray
    topology_name: str
    aggregation: str
    wall_time: float
    counters: Dict[str, int] = field(default_factory=dict)
    states: Optional[np.ndarray] = None
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def num_agents(self) -> int:
        return int(self.final_states.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.final_states.shape[1])

    @property
    def final_mean(self) -> np.ndarray:
        return self.mean_trajectory[-1].copy()

    def distances_to(self, point) -> np.ndarray:
        """Per-agent final distance to ``point``: ``(n,)``."""
        point = check_vector(point, dimension=self.dimension, name="point")
        return np.linalg.norm(self.final_states - point, axis=1)

    def max_honest_distance_to(self, point) -> float:
        """Worst honest agent's final distance to ``point``."""
        return float(self.distances_to(point)[self.honest_ids].max())


def _quadratic_gradient_stack(costs: Sequence[CostFunction]):
    """Closed-form batched gradient map when every cost is quadratic.

    ``∇Q_i(x_i) = P_i x_i + q_i`` for all agents at once via one einsum —
    the hot path for the paper's least-squares workloads. Returns ``None``
    when any cost lacks the quadratic form (callers fall back to the
    per-agent loop).
    """
    if not all(isinstance(c, QuadraticCost) for c in costs):
        return None
    P = np.stack([c.P for c in costs])
    q = np.stack([c.q for c in costs])
    return lambda X: np.einsum("nij,nj->ni", P, X) + q


def _group_mix(
    values: np.ndarray,
    own: np.ndarray,
    f: int,
    aggregation: str,
) -> np.ndarray:
    """Robust mix of one ``(m, k, d)`` closed-neighborhood tensor.

    Row 0 of every slice is the agent's own state (``own`` is the ``(m,
    d)`` stack of those rows — used by CGE's difference screening).
    """
    if aggregation == "mean" or f == 0 and aggregation == "cwtm":
        return values.mean(axis=1)
    if aggregation == "cwtm":
        return partition_trimmed_mean(values, f)
    # CGE in state space: keep the k - f neighborhood states closest to
    # the agent's own (the self row's difference is 0, so it always
    # survives), then average the kept absolute states.
    diffs = values - own[:, None, :]
    kept = cge_kept_indices_batch(diffs, f)
    return np.take_along_axis(values, kept[:, :, None], axis=1).mean(axis=1)


def run_decentralized_dgd(
    costs: Sequence[CostFunction],
    topology: Topology,
    aggregation: str = "cwtm",
    faulty_ids: Sequence[int] = (),
    behavior: Optional[ByzantineBehavior] = None,
    local_budgets=None,
    iterations: int = 100,
    step_sizes: Optional[StepSizeSchedule] = None,
    projection: Optional[ConvexSet] = None,
    x0=None,
    seed: SeedLike = 0,
    telemetry: TelemetryLike = None,
    link_faults: Optional[LinkFaultModel] = None,
    resilience: Optional[ResiliencePolicy] = None,
    record_states: bool = False,
    validate_feasibility: bool = True,
) -> DecentralizedExecutionResult:
    """Run per-neighborhood filtered DGD over a sparse topology.

    Parameters
    ----------
    costs:
        All ``n = topology.n`` agents' local cost functions.
    topology:
        The communication graph (:mod:`repro.system.topology`).
    aggregation:
        Per-neighborhood mixing rule: ``"cwtm"`` (coordinate-wise trimmed
        mean over the closed neighborhood), ``"cge"`` (keep the ``k - f``
        states nearest the agent's own, average them), or ``"mean"`` (the
        fault-intolerant baseline).
    faulty_ids / behavior:
        Byzantine agents and the state-forging behaviour they share (see
        the module docstring for the state-space adaptation).
    local_budgets:
        Per-neighborhood fault budgets ``f_i``: ``None`` derives them from
        ``faulty_ids`` (each agent budgets exactly the Byzantine agents in
        its neighborhood), an int applies uniformly, a length-``n``
        sequence is taken per agent.
    x0:
        Common ``(d,)`` start, per-agent ``(n, d)`` starts, or ``None``
        for zeros.
    link_faults / resilience:
        The edge-level fault model and the healing policy (defaults to
        :meth:`ResiliencePolicy.for_link_model`). ``None`` link faults run
        the perfect-synchrony fast path.
    record_states:
        Keep the full ``(T + 1, n, d)`` trajectory (memory permitting).
    validate_feasibility:
        Check local 2f-redundancy (``deg_i >= 2 f_i``) up front and raise
        :class:`~repro.exceptions.TopologyInfeasibilityError`; disable to
        study infeasible regimes (agents degrade instead of mixing).
    """
    costs = list(costs)
    n = topology.n
    if len(costs) != n:
        raise InvalidParameterError(
            f"got {len(costs)} costs for a topology of {n} agents"
        )
    if aggregation not in DECENTRALIZED_AGGREGATIONS:
        raise InvalidParameterError(
            f"aggregation must be one of {DECENTRALIZED_AGGREGATIONS}, "
            f"got {aggregation!r}"
        )
    if iterations <= 0:
        raise InvalidParameterError(f"iterations must be positive, got {iterations}")
    faulty = sorted(set(int(i) for i in faulty_ids))
    if any(i < 0 or i >= n for i in faulty):
        raise InvalidParameterError(
            f"faulty_ids must lie in [0, {n}), got {faulty}"
        )
    if faulty and behavior is None:
        raise InvalidParameterError("faulty agents configured but no behavior given")
    dimension = costs[0].dimension
    budgets = topology.resolve_budgets(local_budgets, faulty)
    if validate_feasibility and aggregation != "mean":
        topology.check_local_redundancy(budgets)

    honest = [i for i in range(n) if i not in set(faulty)]
    if not honest:
        raise InvalidParameterError("at least one honest agent is required")
    rng = ensure_rng(seed)
    schedule = step_sizes or suggest_diminishing(costs, aggregation="mean")
    constraint = projection or BoxSet.centered(dimension, 1000.0)
    project_rows = numpy_batch_projector(constraint)

    if x0 is None:
        X = np.zeros((n, dimension))
    else:
        x0 = np.asarray(x0, dtype=float)
        if x0.shape == (dimension,):
            X = np.broadcast_to(x0, (n, dimension)).copy()
        elif x0.shape == (n, dimension):
            X = x0.copy()
        else:
            raise InvalidParameterError(
                f"x0 must have shape ({dimension},) or ({n}, {dimension}), "
                f"got {x0.shape}"
            )
    X = project_rows(X)

    model = link_faults
    faulted = model is not None and not model.is_null
    policy = resilience
    if policy is None:
        policy = (
            ResiliencePolicy.for_link_model(model)
            if model is not None
            else ResiliencePolicy(max_staleness=0)
        )

    # Gather layout: padded neighbor matrix plus the flat directed edge
    # list (receiver-major, canonical neighbor order within each row).
    nbr, valid = topology.neighbor_matrix()
    receivers, slots = np.nonzero(valid)
    senders = nbr[receivers, slots]
    num_edges = senders.shape[0]
    edge_params = model.edge_parameters(senders, receivers) if faulted else None
    liveness = (
        NeighborhoodLiveness(senders, receivers, policy.suspicion_threshold)
        if faulted
        else None
    )

    # Freshest-wins per-edge buffers in the padded (n, Δ) layout, and the
    # broadcast ring buffer serving delayed deliveries.
    width = nbr.shape[1]
    P = np.zeros((n, width, dimension))
    P_round = np.full((n, width), -1, dtype=np.int64)
    history_len = (model.delay_bound() if faulted else 0) + 1
    X_hist = np.zeros((history_len, n, dimension))

    gradient_stack = _quadratic_gradient_stack(costs)
    faulty_costs = [costs[i] for i in faulty]
    honest_arr = np.array(honest, dtype=np.int64)
    faulty_arr = np.array(faulty, dtype=np.int64)

    counters = {
        "dropped_edges": 0,
        "delayed_edges": 0,
        "corrupted_edges": 0,
        "quarantined": 0,
        "stale_reuses": 0,
        "degraded_agent_rounds": 0,
        "frozen_agent_rounds": 0,
        "suspected_edge_events": 0,
        "reinstated_edge_events": 0,
    }

    mean_trajectory = np.empty((iterations + 1, dimension))
    mean_trajectory[0] = X[honest_arr].mean(axis=0)
    trajectory = None
    if record_states:
        trajectory = np.empty((iterations + 1, n, dimension))
        trajectory[0] = X

    tel = ensure_telemetry(telemetry)
    if tel:
        tel.annotate(
            architecture="decentralized",
            topology=topology.name,
            aggregation=aggregation,
            byzantine_ids=faulty,
        )

    start = time.perf_counter()
    with tel.span("run"):
        for t in range(iterations):
            # 1. Broadcast matrix: honest agents broadcast their states;
            # Byzantine agents broadcast forged states.
            B = X
            if faulty:
                context = AttackContext(
                    round_index=t,
                    estimate=X[honest_arr].mean(axis=0),
                    honest_gradients=X[honest_arr],
                    honest_ids=honest,
                    faulty_ids=faulty,
                    faulty_costs=faulty_costs,
                    rng=rng,
                )
                B = X.copy()
                B[faulty_arr] = behavior(context)
            X_hist[t % history_len] = B

            # 2. Link fault draws and payload resolution.
            if faulted:
                draws = model.draw_link_faults(t, senders, receivers, edge_params)
                dropped, delay = draws["dropped"], draws["delay"]
                origin = t - delay
                delivered = ~dropped & (origin >= 0)
                payloads = X_hist[origin % history_len, senders]
                corrupt = draws["corrupt"] & delivered
                if corrupt.any():
                    rows = np.flatnonzero(corrupt)
                    payloads[rows] = corrupt_payload_rows(
                        payloads[rows],
                        edge_params["corrupt_mode_index"][rows],
                        model.seed,
                        t,
                        senders[rows],
                        receivers[rows],
                    )
                    counters["corrupted_edges"] += int(rows.shape[0])
                if policy.quarantine_non_finite:
                    bad = delivered & ~np.isfinite(payloads).all(axis=1)
                    counters["quarantined"] += int(bad.sum())
                    delivered &= ~bad
                dropped_now = int(dropped.sum())
                counters["dropped_edges"] += dropped_now
                counters["delayed_edges"] += int((delivered & (delay > 0)).sum())
                newly, reinstated = liveness.observe(t, delivered)
                counters["suspected_edge_events"] += newly
                counters["reinstated_edge_events"] += reinstated
                # Freshest-wins buffer update.
                upd = delivered & (origin > P_round[receivers, slots])
                P[receivers[upd], slots[upd]] = payloads[upd]
                P_round[receivers[upd], slots[upd]] = origin[upd]
                live = valid & (P_round >= 0) & (t - P_round <= policy.max_staleness)
                counters["stale_reuses"] += int((live & (P_round < t)).sum())
                down = model.down_mask(t, n)
                counters["frozen_agent_rounds"] += int(down.sum())
            else:
                P[receivers, slots] = B[senders]
                P_round[receivers, slots] = t
                live = valid
                down = None

            # 3. Dynamic per-agent (k_i, f_i) accounting and grouped mixing.
            k_live = live.sum(axis=1)
            feasible = (1 + k_live) >= (2 * budgets + 1)
            mix = X.copy()  # degraded agents fall back to their own state
            counters["degraded_agent_rounds"] += int(
                (~feasible[honest_arr]).sum()
                if down is None
                else (~feasible[honest_arr] & ~down[honest_arr]).sum()
            )
            # Canonical live-slot extraction: a stable argsort on the
            # (negated) live mask lists each row's live slots first, in
            # canonical neighbor order.
            order = np.argsort(~live, axis=1, kind="stable")
            class_key = k_live * (budgets.max() + 1) + budgets
            active = feasible & (k_live > 0)
            if down is not None:
                active &= ~down
            for key in np.unique(class_key[active]):
                members = np.flatnonzero(active & (class_key == key))
                k = int(k_live[members[0]])
                f_local = int(budgets[members[0]])
                gathered = P[members[:, None], order[members, :k]]
                own = X[members]
                closed = np.concatenate([own[:, None, :], gathered], axis=1)
                mix[members] = _group_mix(closed, own, f_local, aggregation)

            # 4. Projected gradient step at the mixed point (frozen agents
            # hold their state).
            if gradient_stack is not None:
                G = gradient_stack(mix)
            else:
                G = np.stack([cost.gradient(mix[i]) for i, cost in enumerate(costs)])
            eta = schedule(t)
            new_X = project_rows(mix - eta * G)
            if down is not None and down.any():
                new_X[down] = X[down]
            X = new_X

            mean_trajectory[t + 1] = X[honest_arr].mean(axis=0)
            if record_states:
                trajectory[t + 1] = X
            if tel:
                tel.record_round(
                    round_index=t,
                    filter_name=f"decentralized-{aggregation}",
                    step_size=eta,
                    gradient_norms=np.linalg.norm(G[honest_arr], axis=1),
                    kept_ids=None,
                    estimate=mean_trajectory[t + 1],
                )
                if faulted:
                    # Per-agent/per-edge health time-series: the live
                    # in-degree each agent actually saw, who fell below
                    # its 2f_i+1 redundancy floor, and which links
                    # changed suspicion state this round. Consumed by
                    # the agent_health anomaly pass in perf/traces.py.
                    degraded_mask = ~feasible
                    if down is not None:
                        degraded_mask = degraded_mask & ~down
                    tel.emit(
                        "agent_health",
                        round=t,
                        live_in_degree=k_live.tolist(),
                        degraded=np.flatnonzero(degraded_mask).tolist(),
                        frozen=(
                            np.flatnonzero(down).tolist()
                            if down is not None
                            else []
                        ),
                        dropped_edges=dropped_now,
                        bytes_dropped=dropped_now * dimension * 8,
                        suspected_edges=[
                            list(edge)
                            for edge in liveness.last_newly_suspected_edges()
                        ],
                        reinstated_edges=[
                            list(edge)
                            for edge in liveness.last_reinstated_edges()
                        ],
                        degraded_agent_rounds=counters[
                            "degraded_agent_rounds"
                        ],
                    )
    elapsed = time.perf_counter() - start

    extra: Dict[str, object] = {"max_staleness": policy.max_staleness}
    if liveness is not None:
        extra["suspected_edges"] = liveness.suspected_edges()
    return DecentralizedExecutionResult(
        final_states=X,
        mean_trajectory=mean_trajectory,
        honest_ids=honest,
        faulty_ids=faulty,
        budgets=budgets,
        topology_name=topology.name,
        aggregation=aggregation,
        wall_time=elapsed,
        counters=counters,
        states=trajectory,
        extra=extra,
    )
