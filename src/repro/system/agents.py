"""Agent processes of the server-based protocol."""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import CostFunction
from repro.system.messages import EstimateBroadcast, GradientMessage
from repro.utils.validation import check_probability


class Agent(abc.ABC):
    """A protocol participant identified by an integer id."""

    def __init__(self, agent_id: int):
        agent_id = int(agent_id)
        if agent_id < 0:
            raise InvalidParameterError(f"agent_id must be non-negative, got {agent_id}")
        self._agent_id = agent_id

    @property
    def agent_id(self) -> int:
        return self._agent_id

    @abc.abstractmethod
    def on_estimate(self, broadcast: EstimateBroadcast) -> Optional[GradientMessage]:
        """React to the server's estimate; ``None`` models silence."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(id={self._agent_id})"


class HonestAgent(Agent):
    """Follows the protocol: replies with its true local gradient."""

    def __init__(self, agent_id: int, cost: CostFunction):
        super().__init__(agent_id)
        self._cost = cost

    @property
    def cost(self) -> CostFunction:
        return self._cost

    def on_estimate(self, broadcast: EstimateBroadcast) -> GradientMessage:
        gradient = self._cost.gradient(broadcast.estimate)
        return GradientMessage(
            sender=self._agent_id,
            round_index=broadcast.round_index,
            gradient=gradient,
        )


class CrashAgent(Agent):
    """An agent that permanently crashes at (or probabilistically after) a round.

    Crash faults are a strict subset of Byzantine faults, so a crashed agent
    counts against the fault budget ``f``; the synchronous server detects
    the silence and eliminates the agent, as prescribed by the protocol.
    """

    def __init__(
        self,
        agent_id: int,
        cost: CostFunction,
        crash_round: Optional[int] = None,
        crash_probability: float = 0.0,
        rng=None,
    ):
        super().__init__(agent_id)
        if crash_round is not None and crash_round < 0:
            raise InvalidParameterError(f"crash_round must be non-negative, got {crash_round}")
        check_probability(crash_probability, name="crash_probability")
        if crash_probability > 0 and rng is None:
            raise InvalidParameterError("crash_probability > 0 requires an rng")
        self._cost = cost
        self._crash_round = crash_round
        self._crash_probability = float(crash_probability)
        self._rng = rng
        self._crashed = False

    @property
    def crashed(self) -> bool:
        return self._crashed

    def on_estimate(self, broadcast: EstimateBroadcast) -> Optional[GradientMessage]:
        if self._crashed:
            return None
        if self._crash_round is not None and broadcast.round_index >= self._crash_round:
            self._crashed = True
            return None
        if self._crash_probability > 0 and self._rng.random() < self._crash_probability:
            self._crashed = True
            return None
        gradient = self._cost.gradient(broadcast.estimate)
        return GradientMessage(
            sender=self._agent_id,
            round_index=broadcast.round_index,
            gradient=gradient,
        )
