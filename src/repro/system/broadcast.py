"""Simulated authenticated Byzantine broadcast (Dolev–Strong).

The paper notes that its server-based algorithms carry over to the
peer-to-peer architecture when ``f < n/3`` by simulating the server with a
Byzantine broadcast primitive. This module implements that primitive as an
explicit ``f + 1``-round Dolev–Strong protocol over simulated authenticated
channels:

- a *signature chain* is a tuple of distinct signer ids beginning with the
  designated sender; a message ``(value, chain)`` is valid in round ``r``
  iff ``len(chain) == r``;
- **unforgeability** is enforced structurally: the simulator only lets a
  node extend chains with its *own* id, and Byzantine nodes can therefore
  collude on chains made of faulty signers but can never fabricate an
  honest node's signature;
- an honest node that extracts a new value signs and relays it to everyone
  in the next round; after round ``f + 1`` it delivers the unique extracted
  value, or the fallback ``⊥`` when zero or multiple values were extracted.

Guarantees (validated by the test suite over adversarial strategies):
**agreement** — all honest nodes deliver the same value; **validity** — if
the sender is honest, that value is the sender's input.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError, ProtocolViolationError
from repro.utils.validation import check_fault_bound, check_vector

Chain = Tuple[int, ...]

#: Canonical fallback output when the sender equivocated beyond repair.
BOTTOM = "⊥"


def _key(value: np.ndarray) -> bytes:
    return np.ascontiguousarray(value).tobytes()


@dataclass(frozen=True)
class SignedMessage:
    """A value together with its signature chain."""

    value: np.ndarray
    chain: Chain

    def extended_by(self, signer: int) -> "SignedMessage":
        if signer in self.chain:
            raise ProtocolViolationError(f"node {signer} already signed this chain")
        return SignedMessage(self.value, self.chain + (signer,))


class ByzantineSenderStrategy(abc.ABC):
    """How a *faulty* designated sender misbehaves in round 1."""

    @abc.abstractmethod
    def initial_messages(
        self, sender: int, recipients: Sequence[int], rng: Optional[np.random.Generator]
    ) -> Dict[int, Optional[np.ndarray]]:
        """Value sent to each recipient in round 1 (``None`` = silence)."""


class EquivocatingSender(ByzantineSenderStrategy):
    """Send one value to the first half of recipients and another to the rest."""

    def __init__(self, value_a, value_b):
        self._value_a = check_vector(value_a, name="value_a")
        self._value_b = check_vector(value_b, dimension=self._value_a.shape[0], name="value_b")

    def initial_messages(self, sender, recipients, rng):
        half = len(recipients) // 2
        out: Dict[int, Optional[np.ndarray]] = {}
        for position, node in enumerate(recipients):
            out[node] = self._value_a if position < half else self._value_b
        return out


class SilentSender(ByzantineSenderStrategy):
    """Send nothing at all; honest nodes must agree on ``⊥``."""

    def initial_messages(self, sender, recipients, rng):
        return {node: None for node in recipients}


class StaggeredEquivocator(ByzantineSenderStrategy):
    """Equivocate *and* rely on faulty relays to reveal the second value late.

    This is the classic stress case for Dolev–Strong: the second value is
    initially given only to faulty colluders, who withhold it until the
    final round. With ``f + 1`` rounds the protocol still reaches
    agreement, which the tests assert.
    """

    def __init__(self, value_a, value_b, colluders: Sequence[int]):
        self._value_a = check_vector(value_a, name="value_a")
        self._value_b = check_vector(value_b, dimension=self._value_a.shape[0], name="value_b")
        self._colluders = set(int(i) for i in colluders)

    def initial_messages(self, sender, recipients, rng):
        out: Dict[int, Optional[np.ndarray]] = {}
        for node in recipients:
            out[node] = self._value_b if node in self._colluders else self._value_a
        return out


@dataclass
class BroadcastResult:
    """Outcome of one broadcast instance.

    Attributes
    ----------
    delivered:
        Per honest node: the delivered vector, or ``None`` for ``⊥``.
    agreed_value:
        The common delivered value (``None`` for ``⊥``); existence is
        asserted — disagreement raises :class:`ProtocolViolationError`.
    rounds:
        Number of protocol rounds executed (``f + 1``).
    messages_sent:
        Total point-to-point messages for cost accounting.
    """

    delivered: Dict[int, Optional[np.ndarray]]
    agreed_value: Optional[np.ndarray]
    rounds: int
    messages_sent: int


def byzantine_broadcast(
    n: int,
    f: int,
    sender: int,
    value: Optional[np.ndarray],
    faulty: Sequence[int] = (),
    sender_strategy: Optional[ByzantineSenderStrategy] = None,
    relay_withholding: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> BroadcastResult:
    """Run one Dolev–Strong broadcast among ``n`` nodes.

    Parameters
    ----------
    n, f:
        System size and fault bound (requires ``3 f < n``, the paper's
        peer-to-peer feasibility condition).
    sender:
        Designated sender's node id.
    value:
        The sender's input (used when the sender is honest).
    faulty:
        Ids of Byzantine nodes.
    sender_strategy:
        Round-1 misbehaviour when the sender is faulty; defaults to honest
        behaviour even for a faulty sender (a valid Byzantine choice).
    relay_withholding:
        Whether faulty relays withhold known values until the final round
        (the adversarial relay schedule); if ``False`` they simply never
        relay.
    """
    check_fault_bound(n, f, architecture="peer")
    faulty_set: Set[int] = set(int(i) for i in faulty)
    if len(faulty_set) > f:
        raise InvalidParameterError(f"{len(faulty_set)} faulty nodes exceed f={f}")
    if not 0 <= sender < n:
        raise InvalidParameterError(f"sender {sender} out of range")
    honest = [i for i in range(n) if i not in faulty_set]
    rounds = f + 1
    messages_sent = 0

    # extracted[node] maps value-key -> value; honest nodes relay new values.
    extracted: Dict[int, Dict[bytes, np.ndarray]] = {i: {} for i in honest}
    # Messages scheduled for delivery at the start of each round.
    pending: Dict[int, List[Tuple[int, SignedMessage]]] = {r: [] for r in range(1, rounds + 2)}
    # Everything the adversary has seen (valid chains addressed to faulty nodes).
    adversary_pool: List[SignedMessage] = []

    # --- Round 1: the sender speaks. ---
    if sender in faulty_set and sender_strategy is not None:
        initial = sender_strategy.initial_messages(sender, list(range(n)), rng)
        for node, sent_value in initial.items():
            if sent_value is None:
                continue
            message = SignedMessage(np.asarray(sent_value, dtype=float), (sender,))
            pending[1].append((node, message))
            messages_sent += 1
    else:
        if value is None:
            raise InvalidParameterError("an honest sender needs an input value")
        payload = check_vector(value, name="value")
        for node in range(n):
            pending[1].append((node, SignedMessage(payload, (sender,))))
            messages_sent += 1

    # --- Rounds 1 .. f+1: relay with signature chains. ---
    for round_index in range(1, rounds + 1):
        deliveries = pending[round_index]
        for node, message in deliveries:
            if len(message.chain) != round_index or message.chain[0] != sender:
                raise ProtocolViolationError("malformed signature chain in simulator")
            if node in faulty_set:
                adversary_pool.append(message)
                continue
            store = extracted.get(node)
            if store is None:
                continue
            key = _key(message.value)
            if key in store:
                continue
            store[key] = message.value
            # Honest relay: sign and forward to everyone next round.
            if round_index < rounds and node != sender and node not in message.chain:
                relayed = message.extended_by(node)
                for other in range(n):
                    if other != node:
                        pending[round_index + 1].append((other, relayed))
                        messages_sent += 1
        # Faulty relays: withhold until the last round, then reveal to a
        # minority of honest nodes — the adversarial schedule Dolev-Strong
        # is designed to defeat.
        if relay_withholding and round_index == rounds - 1 and adversary_pool:
            revealed = adversary_pool[-1]
            signers = [i for i in faulty_set if i not in revealed.chain]
            chain_message = revealed
            for signer in signers:
                if len(chain_message.chain) >= rounds:
                    break
                chain_message = chain_message.extended_by(signer)
            if len(chain_message.chain) == rounds:
                for node in honest[: max(len(honest) // 2, 1)]:
                    pending[rounds].append((node, chain_message))
                    messages_sent += 1

    # --- Delivery decision. ---
    delivered: Dict[int, Optional[np.ndarray]] = {}
    for node in honest:
        values = list(extracted[node].values())
        delivered[node] = values[0].copy() if len(values) == 1 else None

    witness = delivered[honest[0]]
    for node in honest[1:]:
        other = delivered[node]
        same = (witness is None and other is None) or (
            witness is not None and other is not None and np.array_equal(witness, other)
        )
        if not same:
            raise ProtocolViolationError(
                "Byzantine broadcast violated agreement — simulator bug"
            )
    return BroadcastResult(
        delivered=delivered,
        agreed_value=None if witness is None else witness.copy(),
        rounds=rounds,
        messages_sent=messages_sent,
    )
