"""Self-healing server runtime for the partially-synchronous fault model.

The synchronous :class:`~repro.system.server.DGDServer` is brittle by
design: a missing reply is proof of faultiness, a duplicate is a protocol
violation, and a NaN payload rides straight into the gradient filter. Under
the :mod:`repro.system.netfaults` model none of those inferences are sound
— an honest gradient can be late, replayed, or corrupted in flight. This
module provides the hardened runtime:

- :class:`RoundInbox` — deduplicates deliveries by payload digest (so the
  per-round gradient set is invariant under reordering and idempotent
  under duplication), validates payloads at the message boundary, and
  quarantines non-finite or wrong-shaped gradients before they can reach
  an aggregator whose norm-sort is undefined on NaN;
- :class:`LivenessTracker` — distinguishes *slow* from *provably faulty*:
  agents that miss deadlines accumulate suspicion instead of being
  eliminated, and are reinstated the moment a valid message arrives;
- :class:`ResiliencePolicy` — the tuning surface: bounded-staleness
  gradient reuse for stragglers, the suspicion threshold, whether silence
  still eliminates (it does exactly when the fault model preserves
  synchrony), and the partial-aggregation quorum;
- :class:`ResilientDGDServer` — per-round deadlines with partial
  aggregation: each round it aggregates the fresh gradients plus
  bounded-staleness reuses, re-invoking the ``FilterFactory`` for the
  reduced participant count ``(k, f)``, and stalls (no movement) rather
  than updating when fewer than ``f + 1`` gradients are available. Server
  state checkpoints to a JSON-serializable dict (float64 payloads encoded
  losslessly as hex) and restores bit-identically.

With a null fault model the hardened server reduces *exactly* to the
synchronous one — same elimination semantics, same filter invocations,
same update arithmetic via the shared ``DGDServer._filtered_update`` —
which the test suite pins bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import InvalidParameterError, ProtocolViolationError
from repro.observability import TelemetryLike
from repro.optimization.projections import ConvexSet
from repro.optimization.step_sizes import StepSizeSchedule
from repro.system.messages import GradientMessage
from repro.system.netfaults import LinkFaultModel, NetworkFaultModel
from repro.system.server import DGDServer, FilterFactory

__all__ = [
    "ResiliencePolicy",
    "LivenessTracker",
    "NeighborhoodLiveness",
    "RoundInbox",
    "ResilientDGDServer",
]


@dataclass(frozen=True)
class ResiliencePolicy:
    """How the hardened server trades liveness against safety.

    Attributes
    ----------
    max_staleness:
        How many rounds old a reused gradient may be. ``0`` disables
        reuse; under a fault model with delay bound ``B`` the natural
        value is ``2B`` (broadcast out plus reply back).
    suspicion_threshold:
        Consecutive missed deadlines before an agent is *suspected*.
        Suspicion is bookkeeping, not punishment — a suspected agent's
        messages are still accepted and it is reinstated on its next
        valid delivery.
    eliminate_on_silence:
        When set, a silent agent is eliminated exactly as in the
        synchronous protocol (silence is proof). Sound only when the
        fault model cannot delay or drop honest traffic;
        :meth:`for_model` sets it from the model's synchrony analysis.
    eliminate_on_conflict:
        When set, two *different finite* payloads from one sender in one
        round (equivocation) eliminate the sender. Off by default: a
        network that duplicates and bit-flips can manufacture exactly
        that evidence against an honest agent.
    quarantine_non_finite:
        When set (default), non-finite or wrong-shaped payloads are
        quarantined at the message boundary; otherwise they pass through
        to ``GradientFilter.sanitize`` as in the synchronous server.
    min_responders:
        Partial-aggregation quorum. Defaults to ``f + 1`` — with at most
        ``f`` Byzantine agents, any ``f + 1`` gradients still contain an
        honest one, which is the weakest premise under which a filtered
        step can point anywhere trustworthy.
    """

    max_staleness: int = 1
    suspicion_threshold: int = 2
    eliminate_on_silence: bool = True
    eliminate_on_conflict: bool = False
    quarantine_non_finite: bool = True
    min_responders: Optional[int] = None

    def __post_init__(self):
        if self.max_staleness < 0:
            raise InvalidParameterError(
                f"max_staleness must be >= 0, got {self.max_staleness}"
            )
        if self.suspicion_threshold < 1:
            raise InvalidParameterError(
                f"suspicion_threshold must be >= 1, got {self.suspicion_threshold}"
            )
        if self.min_responders is not None and self.min_responders < 1:
            raise InvalidParameterError(
                f"min_responders must be >= 1, got {self.min_responders}"
            )

    @classmethod
    def for_model(cls, model: NetworkFaultModel, **overrides) -> "ResiliencePolicy":
        """The policy matched to a fault model's synchrony analysis."""
        defaults = dict(
            max_staleness=model.staleness_bound(),
            eliminate_on_silence=model.preserves_synchrony,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def for_link_model(
        cls, model: LinkFaultModel, **overrides
    ) -> "ResiliencePolicy":
        """The policy matched to a link-level fault model.

        Under link faults, silence on one edge never proves the *sender*
        faulty — the link, a partition, or churn explains it equally well
        — so ``eliminate_on_silence`` is sound only for the null model.
        ``max_staleness`` follows the model's one-way staleness bound
        (states travel a single hop in the decentralized architecture).
        """
        defaults = dict(
            max_staleness=model.staleness_bound(),
            eliminate_on_silence=model.is_null,
        )
        defaults.update(overrides)
        return cls(**defaults)


class LivenessTracker:
    """Per-agent deadline bookkeeping: live → suspected → reinstated.

    Suspicion is evidence of *slowness*, never proof of faultiness — in a
    partially-synchronous system only payload-level misbehaviour can be
    proven. The tracker therefore never removes an agent on its own; it
    reports transitions so the server (and telemetry) can act.
    """

    def __init__(self, agent_ids: Iterable[int], suspicion_threshold: int):
        if suspicion_threshold < 1:
            raise InvalidParameterError(
                f"suspicion_threshold must be >= 1, got {suspicion_threshold}"
            )
        self._threshold = int(suspicion_threshold)
        self._misses: Dict[int, int] = {int(i): 0 for i in agent_ids}
        self._last_seen: Dict[int, int] = {int(i): -1 for i in agent_ids}
        self._suspected: Set[int] = set()
        self.reinstatements = 0

    @property
    def suspicion_threshold(self) -> int:
        return self._threshold

    @property
    def suspected(self) -> List[int]:
        return sorted(self._suspected)

    def consecutive_misses(self, agent_id: int) -> int:
        return self._misses.get(int(agent_id), 0)

    def last_seen(self, agent_id: int) -> int:
        """Round of the agent's last fresh response (``-1`` if never)."""
        return self._last_seen.get(int(agent_id), -1)

    def forget(self, agent_id: int) -> None:
        """Stop tracking an (eliminated) agent."""
        agent_id = int(agent_id)
        self._misses.pop(agent_id, None)
        self._last_seen.pop(agent_id, None)
        self._suspected.discard(agent_id)

    def observe(
        self, round_index: int, responders: Iterable[int]
    ) -> Tuple[List[int], List[int]]:
        """Account one round's responders among all tracked agents.

        Returns ``(newly_suspected, reinstated)``, both sorted.
        """
        responded = {int(i) for i in responders}
        newly_suspected: List[int] = []
        reinstated: List[int] = []
        for agent_id in self._misses:
            if agent_id in responded:
                self._misses[agent_id] = 0
                self._last_seen[agent_id] = int(round_index)
                if agent_id in self._suspected:
                    self._suspected.remove(agent_id)
                    self.reinstatements += 1
                    reinstated.append(agent_id)
            else:
                self._misses[agent_id] += 1
                if (
                    self._misses[agent_id] >= self._threshold
                    and agent_id not in self._suspected
                ):
                    self._suspected.add(agent_id)
                    newly_suspected.append(agent_id)
        return sorted(newly_suspected), sorted(reinstated)

    def state(self) -> Dict:
        return {
            "threshold": self._threshold,
            "misses": {str(k): v for k, v in self._misses.items()},
            "last_seen": {str(k): v for k, v in self._last_seen.items()},
            "suspected": sorted(self._suspected),
            "reinstatements": self.reinstatements,
        }

    def restore_state(self, state: Dict) -> None:
        self._threshold = int(state["threshold"])
        self._misses = {int(k): int(v) for k, v in state["misses"].items()}
        self._last_seen = {int(k): int(v) for k, v in state["last_seen"].items()}
        self._suspected = set(int(i) for i in state["suspected"])
        self.reinstatements = int(state["reinstatements"])


class NeighborhoodLiveness:
    """Vectorized per-*link* liveness over a fixed directed edge list.

    The decentralized analogue of :class:`LivenessTracker`: where the
    server tracks ``n`` agents, a sparse graph must track ``E`` directed
    edges — agent ``j`` can be perfectly live toward one neighbor and
    silent toward another (asymmetric link faults, partitions). State is
    three flat arrays indexed by edge, so one round of accounting over
    10k edges is a handful of array ops.

    Like the agent tracker, suspicion is evidence of link *badness*,
    never proof of sender faultiness; a suspected edge is reinstated the
    moment it delivers again.
    """

    def __init__(
        self,
        senders: np.ndarray,
        receivers: np.ndarray,
        suspicion_threshold: int,
    ):
        if suspicion_threshold < 1:
            raise InvalidParameterError(
                f"suspicion_threshold must be >= 1, got {suspicion_threshold}"
            )
        self._senders = np.asarray(senders, dtype=np.int64).copy()
        self._receivers = np.asarray(receivers, dtype=np.int64).copy()
        if self._senders.shape != self._receivers.shape or self._senders.ndim != 1:
            raise InvalidParameterError(
                "senders and receivers must be 1-D arrays of equal length"
            )
        self._threshold = int(suspicion_threshold)
        self._misses = np.zeros(self._senders.shape[0], dtype=np.int64)
        self._last_seen = np.full(self._senders.shape[0], -1, dtype=np.int64)
        self._suspected = np.zeros(self._senders.shape[0], dtype=bool)
        self._last_newly = np.zeros(self._senders.shape[0], dtype=bool)
        self._last_reinstated = np.zeros(self._senders.shape[0], dtype=bool)
        self.reinstatements = 0

    @property
    def num_edges(self) -> int:
        return int(self._senders.shape[0])

    @property
    def suspicion_threshold(self) -> int:
        return self._threshold

    @property
    def suspected(self) -> np.ndarray:
        """Boolean ``(E,)`` mask of currently suspected edges (a copy)."""
        return self._suspected.copy()

    @property
    def misses(self) -> np.ndarray:
        """Consecutive missed rounds per edge (a copy)."""
        return self._misses.copy()

    def last_seen(self) -> np.ndarray:
        """Round of each edge's last delivery (``-1`` if never; a copy)."""
        return self._last_seen.copy()

    def suspected_edges(self) -> List[Tuple[int, int]]:
        """Currently suspected ``(sender, receiver)`` pairs, sorted."""
        index = np.flatnonzero(self._suspected)
        return sorted(
            (int(self._senders[i]), int(self._receivers[i])) for i in index
        )

    def observe(self, round_index: int, delivered: np.ndarray) -> Tuple[int, int]:
        """Account one round of deliveries; ``delivered`` is bool ``(E,)``.

        Returns ``(newly_suspected, reinstated)`` edge counts.
        """
        delivered = np.asarray(delivered, dtype=bool)
        if delivered.shape != self._senders.shape:
            raise InvalidParameterError(
                f"delivered must have shape {self._senders.shape}, "
                f"got {delivered.shape}"
            )
        reinstated_mask = delivered & self._suspected
        reinstated = int(reinstated_mask.sum())
        self._misses = np.where(delivered, 0, self._misses + 1)
        self._last_seen = np.where(delivered, int(round_index), self._last_seen)
        now_suspected = self._misses >= self._threshold
        newly_mask = now_suspected & ~self._suspected
        newly = int(newly_mask.sum())
        self._last_newly = newly_mask
        self._last_reinstated = reinstated_mask
        self._suspected = now_suspected
        self.reinstatements += reinstated
        return newly, reinstated

    def _edges_of(self, mask: np.ndarray) -> List[Tuple[int, int]]:
        index = np.flatnonzero(mask)
        return sorted(
            (int(self._senders[i]), int(self._receivers[i])) for i in index
        )

    def last_newly_suspected_edges(self) -> List[Tuple[int, int]]:
        """Edges that crossed into suspicion at the latest ``observe``."""
        return self._edges_of(self._last_newly)

    def last_reinstated_edges(self) -> List[Tuple[int, int]]:
        """Edges that delivered again at the latest ``observe``."""
        return self._edges_of(self._last_reinstated)

    def live_in_degree(self, n: int) -> np.ndarray:
        """Per-receiver count of currently unsuspected incoming edges.

        This is the dynamic ``k_i`` the decentralized engine feeds into
        its per-neighborhood ``(k_i, f_i)`` re-accounting.
        """
        counts = np.zeros(int(n), dtype=np.int64)
        np.add.at(counts, self._receivers[~self._suspected], 1)
        return counts

    def state(self) -> Dict:
        return {
            "threshold": self._threshold,
            "misses": self._misses.tolist(),
            "last_seen": self._last_seen.tolist(),
            "suspected": self._suspected.tolist(),
            "reinstatements": self.reinstatements,
        }

    def restore_state(self, state: Dict) -> None:
        self._threshold = int(state["threshold"])
        self._misses = np.asarray(state["misses"], dtype=np.int64)
        self._last_seen = np.asarray(state["last_seen"], dtype=np.int64)
        self._suspected = np.asarray(state["suspected"], dtype=bool)
        self.reinstatements = int(state["reinstatements"])


class RoundInbox:
    """Digest-deduplicated store of received gradients, round-indexed.

    The inbox's observable state is a pure function of the *set* of
    messages offered — independent of arrival order (permutation
    invariance) and of repeated deliveries (idempotence under duplicates).
    Both properties come from keying storage by
    ``(sender, round, payload digest)`` and resolving conflicting
    duplicates canonically (smallest digest wins).
    """

    #: offer() outcomes.
    ACCEPTED = "accepted"
    DUPLICATE = "duplicate"
    CONFLICT = "conflict"
    QUARANTINED = "quarantined"

    def __init__(self):
        self._slots: Dict[Tuple[int, int], Dict[str, GradientMessage]] = {}
        self._quarantined: Dict[int, int] = {}
        self._conflicts: Dict[int, int] = {}

    @property
    def quarantined_by_agent(self) -> Dict[int, int]:
        """Quarantined payload counts per sender."""
        return dict(self._quarantined)

    @property
    def quarantined_total(self) -> int:
        return sum(self._quarantined.values())

    @property
    def conflicts_by_agent(self) -> Dict[int, int]:
        """Equivocation evidence: conflicting duplicate counts per sender."""
        return dict(self._conflicts)

    def offer(
        self,
        message: GradientMessage,
        dimension: Optional[int] = None,
        quarantine_non_finite: bool = True,
    ) -> str:
        """Ingest one delivery; returns the classification string."""
        if quarantine_non_finite:
            try:
                message.validate(dimension)
            except ProtocolViolationError:
                sender = int(message.sender)
                self._quarantined[sender] = self._quarantined.get(sender, 0) + 1
                return self.QUARANTINED
        key = (int(message.sender), int(message.round_index))
        slot = self._slots.setdefault(key, {})
        digest = message.payload_digest()
        if digest in slot:
            return self.DUPLICATE
        slot[digest] = message
        if len(slot) > 1:
            self._conflicts[key[0]] = self._conflicts.get(key[0], 0) + 1
            return self.CONFLICT
        return self.ACCEPTED

    def fresh_senders(self, round_index: int) -> Set[int]:
        """Senders with a stored gradient for exactly ``round_index``."""
        return {s for (s, r) in self._slots if r == int(round_index)}

    def latest(
        self, sender: int, round_index: int, max_staleness: int
    ) -> Optional[Tuple[int, GradientMessage]]:
        """The sender's newest gradient no older than ``max_staleness``.

        Returns ``(round, message)`` or ``None``. Among conflicting
        duplicates the copy with the smallest payload digest is the
        canonical one — an order-free rule every replay agrees on.
        """
        sender = int(sender)
        for r in range(int(round_index), int(round_index) - int(max_staleness) - 1, -1):
            if r < 0:
                break
            slot = self._slots.get((sender, r))
            if slot:
                return r, slot[min(slot)]
        return None

    def prune(self, before_round: int) -> None:
        """Discard gradients for rounds before ``before_round``."""
        self._slots = {
            key: slot for key, slot in self._slots.items() if key[1] >= before_round
        }

    def state(self) -> Dict:
        return {
            "slots": [
                {
                    "sender": sender,
                    "round_index": round_index,
                    "payloads": [
                        [float(v).hex() for v in slot[digest].gradient]
                        for digest in sorted(slot)
                    ],
                }
                for (sender, round_index), slot in sorted(self._slots.items())
            ],
            "quarantined": {str(k): v for k, v in self._quarantined.items()},
            "conflicts": {str(k): v for k, v in self._conflicts.items()},
        }

    def restore_state(self, state: Dict) -> None:
        self._slots = {}
        for entry in state["slots"]:
            for payload in entry["payloads"]:
                message = GradientMessage(
                    sender=int(entry["sender"]),
                    round_index=int(entry["round_index"]),
                    gradient=np.array([float.fromhex(v) for v in payload]),
                )
                slot = self._slots.setdefault(
                    (message.sender, message.round_index), {}
                )
                slot[message.payload_digest()] = message
        self._quarantined = {int(k): int(v) for k, v in state["quarantined"].items()}
        self._conflicts = {int(k): int(v) for k, v in state["conflicts"].items()}


class ResilientDGDServer(DGDServer):
    """A :class:`DGDServer` that survives partially-synchronous delivery.

    Each :meth:`step_partial` is one round deadline. Whatever arrived by
    the deadline — fresh gradients, late gradients from earlier rounds,
    duplicates, corrupted payloads — is deduplicated, validated, and
    classified. The update then aggregates the fresh set plus
    bounded-staleness reuses, re-invoking the filter factory at the
    reduced ``(k, f)`` when participation is partial, and stalls (holds
    the estimate) when fewer than the quorum responded.

    Elimination semantics are policy-driven: with
    ``eliminate_on_silence`` (sound only under preserved synchrony) the
    behaviour is the synchronous server's, bit for bit; otherwise silence
    only feeds the :class:`LivenessTracker` and every agent keeps its
    seat — "slow" is not "faulty".
    """

    def __init__(
        self,
        filter_factory: FilterFactory,
        step_sizes: StepSizeSchedule,
        projection: ConvexSet,
        x0,
        n: int,
        f: int,
        telemetry: TelemetryLike = None,
        policy: Optional[ResiliencePolicy] = None,
    ):
        super().__init__(
            filter_factory, step_sizes, projection, x0, n, f, telemetry=telemetry
        )
        self._policy = policy if policy is not None else ResiliencePolicy()
        self._dimension = int(self._estimate.shape[0])
        self._inbox = RoundInbox()
        self._liveness = LivenessTracker(range(n), self._policy.suspicion_threshold)
        self._stale_reuses = 0
        self._stalled_rounds = 0
        self._ignored_messages = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def policy(self) -> ResiliencePolicy:
        return self._policy

    @property
    def inbox(self) -> RoundInbox:
        return self._inbox

    @property
    def liveness(self) -> LivenessTracker:
        return self._liveness

    @property
    def suspected_agents(self) -> List[int]:
        return self._liveness.suspected

    @property
    def stale_reuses(self) -> int:
        """Rounds × agents where a bounded-staleness gradient was reused."""
        return self._stale_reuses

    @property
    def stalled_rounds(self) -> int:
        """Rounds skipped for lack of a quorum (estimate held)."""
        return self._stalled_rounds

    @property
    def quarantined_payloads(self) -> int:
        return self._inbox.quarantined_total

    def resilience_summary(self) -> Dict:
        """Roll-up of the hardening machinery's activity."""
        return {
            "stale_reuses": self._stale_reuses,
            "stalled_rounds": self._stalled_rounds,
            "quarantined_payloads": self._inbox.quarantined_total,
            "quarantined_by_agent": self._inbox.quarantined_by_agent,
            "conflicts_by_agent": self._inbox.conflicts_by_agent,
            "suspected": self._liveness.suspected,
            "reinstatements": self._liveness.reinstatements,
            "ignored_messages": self._ignored_messages,
            "eliminated": list(self._eliminated),
        }

    # ------------------------------------------------------------------
    # The hardened round
    # ------------------------------------------------------------------

    def eliminate_provably_faulty(self, agent_ids: Sequence[int]) -> List[int]:
        """Eliminate agents with payload-level proof of faultiness.

        Unlike silence, equivocation (when the policy trusts it) is
        evidence the agent itself produced; elimination decrements both
        ``n`` and ``f`` and rebuilds the filter, as in the paper's S1.
        """
        guilty = sorted(set(int(i) for i in agent_ids) & self._active)
        if not guilty:
            return []
        if len(guilty) > self._f:
            raise ProtocolViolationError(
                f"{len(guilty)} provably faulty agents exceed fault budget {self._f}"
            )
        for agent_id in guilty:
            self._active.remove(agent_id)
            self._eliminated.append(agent_id)
            self._liveness.forget(agent_id)
        self._n -= len(guilty)
        self._f -= len(guilty)
        self._filter = self._filter_factory(self._n, self._f)
        if self._telemetry:
            self._telemetry.emit(
                "conflict_elimination",
                round=self._round,
                agents=guilty,
                n=self._n,
                f=self._f,
            )
        return guilty

    def step_partial(self, messages: Sequence[GradientMessage]) -> np.ndarray:
        """Run one round deadline from whatever the network delivered.

        Accepts messages for the current round *and* for earlier rounds
        (late arrivals); messages claiming future rounds are a protocol
        violation (nothing can outrun the broadcast). Returns the new —
        possibly unchanged — estimate.
        """
        r = self._round
        policy = self._policy
        quarantined_now: List[int] = []
        conflicted_now: List[int] = []
        for message in messages:
            if not isinstance(message, GradientMessage):
                raise ProtocolViolationError(
                    f"server inbox received a {type(message).__name__}"
                )
            if message.round_index > r:
                raise ProtocolViolationError(
                    f"message from agent {message.sender} claims future round "
                    f"{message.round_index}, server is in round {r}"
                )
            if message.sender not in self._active:
                self._ignored_messages += 1
                continue
            status = self._inbox.offer(
                message,
                dimension=self._dimension,
                quarantine_non_finite=policy.quarantine_non_finite,
            )
            if status == RoundInbox.QUARANTINED:
                quarantined_now.append(message.sender)
            elif status == RoundInbox.CONFLICT:
                conflicted_now.append(message.sender)

        if policy.eliminate_on_conflict and conflicted_now:
            self.eliminate_provably_faulty(conflicted_now)

        fresh = self._inbox.fresh_senders(r) & self._active
        if policy.eliminate_on_silence:
            for eliminated in self.eliminate_silent(sorted(fresh)):
                self._liveness.forget(eliminated)
        newly_suspected, reinstated = self._liveness.observe(r, fresh)

        ordered: List[GradientMessage] = []
        stale_reused: List[int] = []
        missing: List[int] = []
        for agent_id in sorted(self._active):
            found = self._inbox.latest(agent_id, r, policy.max_staleness)
            if found is None:
                missing.append(agent_id)
                continue
            found_round, message = found
            if found_round < r:
                stale_reused.append(agent_id)
            ordered.append(message)
        self._stale_reuses += len(stale_reused)

        quorum = (
            policy.min_responders
            if policy.min_responders is not None
            else self._f + 1
        )
        k = len(ordered)
        if k < quorum:
            self._stalled_rounds += 1
            self._last_direction = np.zeros(self._dimension)
            if self._telemetry:
                self._telemetry.emit(
                    "stalled", round=r, responders=k, quorum=quorum
                )
            self._round += 1
        else:
            gradient_filter = (
                self._filter if k == self._n else self._filter_factory(k, self._f)
            )
            self._filtered_update(ordered, gradient_filter)

        if self._telemetry and (
            stale_reused or quarantined_now or newly_suspected or reinstated or missing
        ):
            self._telemetry.record_liveness(
                round_index=r,
                fresh=sorted(fresh & self._active),
                stale_reused=stale_reused,
                quarantined=sorted(quarantined_now),
                suspected=newly_suspected,
                reinstated=reinstated,
                missing=missing,
            )
        self._inbox.prune(self._round - policy.max_staleness)
        return self.estimate

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def checkpoint(self) -> Dict:
        """JSON-serializable snapshot of the full server state.

        Float64 vectors are encoded as hex strings (``float.hex``) so the
        round trip is bit-exact — including NaN/Inf payloads a corrupted
        in-flight gradient may carry.
        """
        return {
            "round": self._round,
            "estimate": [float(v).hex() for v in self._estimate],
            "last_direction": (
                None
                if self._last_direction is None
                else [float(v).hex() for v in self._last_direction]
            ),
            "n": self._n,
            "f": self._f,
            "active": sorted(self._active),
            "eliminated": list(self._eliminated),
            "inbox": self._inbox.state(),
            "liveness": self._liveness.state(),
            "counters": {
                "stale_reuses": self._stale_reuses,
                "stalled_rounds": self._stalled_rounds,
                "ignored_messages": self._ignored_messages,
            },
        }

    def restore(self, state: Dict) -> None:
        """Restore a :meth:`checkpoint` snapshot, rebuilding the filter."""
        self._round = int(state["round"])
        self._estimate = np.array([float.fromhex(v) for v in state["estimate"]])
        self._last_direction = (
            None
            if state["last_direction"] is None
            else np.array([float.fromhex(v) for v in state["last_direction"]])
        )
        self._n = int(state["n"])
        self._f = int(state["f"])
        self._active = set(int(i) for i in state["active"])
        self._eliminated = [int(i) for i in state["eliminated"]]
        self._inbox.restore_state(state["inbox"])
        self._liveness.restore_state(state["liveness"])
        counters = state["counters"]
        self._stale_reuses = int(counters["stale_reuses"])
        self._stalled_rounds = int(counters["stalled_rounds"])
        self._ignored_messages = int(counters["ignored_messages"])
        self._filter = self._filter_factory(self._n, self._f)
