"""End-to-end execution of the server-based filtered DGD protocol.

:func:`run_dgd` wires together cost functions, honest agents, the rushing
adversary, the synchronous network, and the server, and records a full
:class:`Trace` of the execution for the analysis and experiment layers.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.aggregators.base import GradientFilter
from repro.aggregators.registry import make_filter
from repro.attacks.base import ByzantineBehavior
from repro.exceptions import CacheIntegrityError, InvalidParameterError
from repro.observability import TelemetryLike, ensure_telemetry
from repro.optimization.cost_functions import CostFunction
from repro.optimization.projections import BoxSet, ConvexSet
from repro.optimization.step_sizes import (
    DiminishingStepSize,
    StepSizeSchedule,
    suggest_diminishing,
)
from repro.system.adversary import Adversary
from repro.system.agents import Agent, CrashAgent, HonestAgent
from repro.system.healing import ResiliencePolicy, ResilientDGDServer
from repro.system.messages import SERVER_ID, GradientMessage
from repro.system.netfaults import NetworkFaultModel, PartiallySynchronousNetwork
from repro.system.network import SynchronousNetwork
from repro.system.server import DGDServer, fixed_filter_factory
from repro.utils.atomicio import read_json_checked, write_json_atomic
from repro.utils.rng import SeedLike, ensure_rng, spawn_rngs
from repro.utils.validation import check_vector


@dataclass(frozen=True)
class DGDConfig:
    """Declarative configuration of one DGD execution.

    Attributes
    ----------
    iterations:
        Number of synchronous rounds ``T``.
    gradient_filter:
        A :class:`GradientFilter` instance or a registry name.
    faulty_ids:
        Agents under adversarial control (must number at most ``f``).
    f:
        Fault bound announced to the server; defaults to ``len(faulty_ids)``.
    x0:
        Initial estimate; defaults to the origin.
    step_sizes:
        Schedule; defaults to ``DiminishingStepSize(c=0.02)`` matching the
        regression experiments' scale.
    projection:
        The compact set ``W``; defaults to a large centered box.
    seed:
        Master seed from which agent/adversary/network streams derive.
    record_messages:
        Keep the network's delivery log (memory-heavy for long runs).
    log_capacity:
        Maximum delivery records the network retains when
        ``record_messages`` is set; requesting the log after eviction
        warns rather than silently returning a truncated history.
    crash_rounds:
        Optional map ``agent_id → round`` of *crash faults*: the agent
        follows the protocol until that round, then goes permanently
        silent. Crash faults are (benign) Byzantine faults, so each crashed
        agent counts against ``f``; the server detects the silence and
        eliminates the agent.
    fault_model:
        Optional :class:`~repro.system.netfaults.NetworkFaultModel`. When
        set (even to a null model), the execution runs on the
        partially-synchronous network and the self-healing
        :class:`~repro.system.healing.ResilientDGDServer`; a null model
        reproduces the synchronous execution bit-for-bit.
    resilience:
        Optional :class:`~repro.system.healing.ResiliencePolicy` override;
        defaults to ``ResiliencePolicy.for_model(fault_model)``.
    checkpoint_path:
        Optional path for atomic, checksummed mid-run checkpoints (the
        :mod:`repro.utils.atomicio` discipline). When the file already
        holds a checkpoint of this same configuration, the run *resumes*
        from it and reproduces the uninterrupted trajectory bit-for-bit.
        Implies the partially-synchronous engine.
    checkpoint_every:
        Checkpoint cadence in rounds (a final checkpoint is always
        written on completion).
    """

    iterations: int = 500
    gradient_filter: Union[GradientFilter, str] = "cge"
    faulty_ids: Sequence[int] = ()
    f: Optional[int] = None
    x0: Optional[Sequence[float]] = None
    step_sizes: Optional[StepSizeSchedule] = None
    projection: Optional[ConvexSet] = None
    seed: SeedLike = 0
    record_messages: bool = False
    log_capacity: int = 10_000
    box_half_width: float = 1000.0
    crash_rounds: Optional[Dict[int, int]] = None
    fault_model: Optional[NetworkFaultModel] = None
    resilience: Optional[ResiliencePolicy] = None
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 25

    def resolved_f(self) -> int:
        crash_count = len(self.crash_rounds or {})
        if self.f is not None:
            return int(self.f)
        return len(tuple(self.faulty_ids)) + crash_count


@dataclass
class Trace:
    """Recorded execution of one DGD run.

    Attributes
    ----------
    estimates:
        ``(T + 1, d)`` array: ``estimates[t]`` is ``x^t`` (row 0 is the
        initial estimate).
    directions:
        ``(T, d)`` array of post-filter directions.
    honest_ids:
        The honest agents of the execution.
    faulty_ids:
        The Byzantine agents of the execution.
    eliminated:
        Agents the server eliminated for silence (subset of faulty).
    wall_time:
        Execution wall-clock seconds.
    messages_delivered / bytes_delivered:
        Network accounting totals (useful traffic only).
    messages_dropped / bytes_dropped:
        Traffic the network absorbed without delivering.
    """

    estimates: np.ndarray
    directions: np.ndarray
    honest_ids: List[int]
    faulty_ids: List[int]
    eliminated: List[int]
    wall_time: float
    messages_delivered: int
    bytes_delivered: int
    filter_name: str
    crash_ids: List[int] = field(default_factory=list)
    messages_dropped: int = 0
    bytes_dropped: int = 0
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def iterations(self) -> int:
        return self.estimates.shape[0] - 1

    @property
    def dimension(self) -> int:
        return self.estimates.shape[1]

    @property
    def final_estimate(self) -> np.ndarray:
        return self.estimates[-1].copy()

    def distances_to(self, point) -> np.ndarray:
        """``||x^t − point||`` for every recorded round."""
        point = check_vector(point, dimension=self.dimension, name="point")
        return np.linalg.norm(self.estimates - point, axis=1)

    def losses(self, costs: Sequence[CostFunction], ids: Optional[Sequence[int]] = None) -> np.ndarray:
        """Aggregate loss ``Σ_{i ∈ ids} Q_i(x^t)`` per round (honest loss by default)."""
        selected = self.honest_ids if ids is None else list(ids)
        values = np.zeros(self.estimates.shape[0])
        for index in selected:
            cost = costs[index]
            values += np.array([cost.value(x) for x in self.estimates])
        return values


def apply_config_overrides(config: DGDConfig, overrides: Dict) -> DGDConfig:
    """Apply keyword overrides to a :class:`DGDConfig`.

    Uses :func:`dataclasses.replace` (robust to ``slots=True`` and future
    validation hooks, unlike rebuilding from ``__dict__``) and rejects
    unknown keys with a clear error instead of a generic ``TypeError``.
    """
    if not overrides:
        return config
    known = {f.name for f in fields(DGDConfig)}
    unknown = sorted(set(overrides) - known)
    if unknown:
        raise InvalidParameterError(
            f"unknown DGDConfig override(s) {', '.join(map(repr, unknown))}; "
            f"valid fields: {', '.join(sorted(known))}"
        )
    return replace(config, **overrides)


def _default_schedule(
    costs: Sequence[CostFunction], gradient_filter: GradientFilter
) -> StepSizeSchedule:
    """Curvature-adapted schedule matched to the filter's output scale.

    CGE (in its paper form) and plain summation output a *sum* of
    gradients; everything else in the registry outputs a mean-scale vector.
    """
    from repro.aggregators.cge import ComparativeGradientElimination
    from repro.aggregators.mean import TrimmedSum

    sum_scaled = isinstance(gradient_filter, TrimmedSum) or (
        isinstance(gradient_filter, ComparativeGradientElimination)
        and gradient_filter.mode == "sum"
    )
    return suggest_diminishing(costs, aggregation="sum" if sum_scaled else "mean")


def run_dgd(
    costs: Sequence[CostFunction],
    behavior: Optional[ByzantineBehavior] = None,
    config: Optional[DGDConfig] = None,
    telemetry: TelemetryLike = None,
    round_hook: Optional[Callable[[int, DGDServer], None]] = None,
    **config_overrides,
) -> Trace:
    """Execute the server-based filtered DGD protocol.

    Parameters
    ----------
    costs:
        All ``n`` agents' cost functions. Faulty agents' entries are their
        *true* costs, which behaviours like gradient-reverse corrupt.
    behavior:
        Byzantine strategy; required when ``config.faulty_ids`` is
        non-empty.
    config:
        Execution configuration; keyword overrides are applied on top
        (e.g. ``run_dgd(costs, atk, iterations=100)``).
    telemetry:
        Optional :class:`~repro.observability.Telemetry` handle (or a
        JSONL path). Disabled by default; when enabled, the execution
        emits ``"run"``/``"round"``/``"filter"`` timing spans and one
        per-round record of the filter's kept/eliminated agents, gradient
        norm spread, and step size. The numerical execution is identical
        either way.
    round_hook:
        Optional callable ``(round_index, server)`` invoked after every
        completed round — the chaos tests use it to kill a checkpointed
        run mid-flight.

    Returns
    -------
    Trace
        The recorded execution.
    """
    if config is None:
        config = DGDConfig()
    config = apply_config_overrides(config, config_overrides)

    costs = list(costs)
    n = len(costs)
    if n == 0:
        raise InvalidParameterError("at least one agent required")
    dimension = costs[0].dimension
    for index, cost in enumerate(costs):
        if cost.dimension != dimension:
            raise InvalidParameterError(
                f"cost {index} has dimension {cost.dimension}, expected {dimension}"
            )
    faulty_ids = sorted(set(int(i) for i in config.faulty_ids))
    if any(i < 0 or i >= n for i in faulty_ids):
        raise InvalidParameterError("faulty_ids out of range")
    crash_rounds = {int(k): int(v) for k, v in (config.crash_rounds or {}).items()}
    if any(i < 0 or i >= n for i in crash_rounds):
        raise InvalidParameterError("crash_rounds agent ids out of range")
    if set(crash_rounds) & set(faulty_ids):
        raise InvalidParameterError(
            "an agent cannot be both adversarial (faulty_ids) and crash-faulty"
        )
    f = config.resolved_f()
    if len(faulty_ids) + len(crash_rounds) > f:
        raise InvalidParameterError(
            f"{len(faulty_ids) + len(crash_rounds)} faulty agents exceed the "
            f"announced bound f={f}"
        )
    if faulty_ids and behavior is None:
        raise InvalidParameterError("faulty agents configured but no behavior given")

    master = ensure_rng(config.seed)
    adversary_rng, network_rng = spawn_rngs(master, 2)

    gradient_filter = config.gradient_filter
    if isinstance(gradient_filter, str):
        gradient_filter = make_filter(gradient_filter, f=f)

    step_sizes = config.step_sizes or _default_schedule(costs, gradient_filter)
    if not step_sizes.satisfies_robbins_monro:
        warnings.warn(
            "step-size schedule violates the Robbins-Monro conditions; the "
            "convergence theorem does not apply",
            stacklevel=2,
        )
    projection = config.projection or BoxSet.centered(dimension, config.box_half_width)
    if not projection.is_compact:
        warnings.warn(
            "projection set is not compact; the convergence theorem requires "
            "a compact convex W",
            stacklevel=2,
        )
    x0 = (
        np.zeros(dimension)
        if config.x0 is None
        else check_vector(config.x0, dimension=dimension, name="x0")
    )

    # "honest" here means neither adversarial nor crash-faulty; crash agents
    # follow the protocol until their crash round but count against f.
    honest_ids = [i for i in range(n) if i not in faulty_ids and i not in crash_rounds]
    agents: Dict[int, Agent] = {i: HonestAgent(i, costs[i]) for i in honest_ids}
    for i, crash_round in crash_rounds.items():
        agents[i] = CrashAgent(i, costs[i], crash_round=crash_round)
    adversary = (
        Adversary(
            behavior,
            faulty_ids,
            costs={i: costs[i] for i in faulty_ids},
            seed=adversary_rng,
        )
        if faulty_ids
        else None
    )
    tel = ensure_telemetry(telemetry)
    if tel:
        tel.annotate(byzantine_ids=faulty_ids + sorted(crash_rounds))

    if (
        config.fault_model is not None
        or config.resilience is not None
        or config.checkpoint_path is not None
    ):
        return _run_partially_synchronous(
            config=config,
            tel=tel,
            agents=agents,
            adversary=adversary,
            faulty_ids=faulty_ids,
            crash_rounds=crash_rounds,
            honest_ids=honest_ids,
            gradient_filter=gradient_filter,
            step_sizes=step_sizes,
            projection=projection,
            x0=x0,
            n=n,
            f=f,
            dimension=dimension,
            round_hook=round_hook,
        )

    network = SynchronousNetwork(rng=network_rng, log_capacity=config.log_capacity)
    server = DGDServer.with_fixed_filter(
        gradient_filter, step_sizes, projection, x0, n=n, f=f, telemetry=tel
    )

    estimates = np.empty((config.iterations + 1, dimension))
    directions = np.empty((config.iterations, dimension))
    estimates[0] = server.estimate

    start = time.perf_counter()
    with tel.span("run"):
        for t in range(config.iterations):
            with tel.span("round"):
                broadcast = server.make_broadcast()
                active = set(server.active_agents)
                delivered = network.broadcast(broadcast, sorted(active))
                honest_replies: List[GradientMessage] = []
                for agent_id in sorted(active & set(agents)):
                    if agent_id not in delivered:
                        continue
                    reply = agents[agent_id].on_estimate(delivered[agent_id])
                    if reply is not None:
                        honest_replies.append(reply)
                forged: List[GradientMessage] = []
                if adversary is not None:
                    active_faulty = sorted(active & set(faulty_ids))
                    if active_faulty:
                        forged = adversary.forge_messages(
                            broadcast, honest_replies, active_faulty=active_faulty
                        )
                inbound = network.gather(honest_replies + forged, SERVER_ID)
                server.step(inbound)
                estimates[t + 1] = server.estimate
                directions[t] = server.last_direction
            if round_hook is not None:
                round_hook(t, server)
    elapsed = time.perf_counter() - start

    return Trace(
        estimates=estimates,
        directions=directions,
        honest_ids=honest_ids,
        faulty_ids=faulty_ids,
        eliminated=server.eliminated_agents,
        wall_time=elapsed,
        messages_delivered=network.messages_delivered,
        bytes_delivered=network.bytes_delivered,
        filter_name=getattr(gradient_filter, "name", type(gradient_filter).__name__),
        crash_ids=sorted(crash_rounds),
        messages_dropped=network.messages_dropped,
        bytes_dropped=network.bytes_dropped,
        extra={"network_log": network.log} if config.record_messages else {},
    )


#: Checkpoint document version; bumped when the schema changes shape.
_CHECKPOINT_VERSION = 1


def _hex_matrix(matrix: np.ndarray) -> List[List[str]]:
    return [[float(v).hex() for v in row] for row in np.asarray(matrix, dtype=float)]


def _unhex_matrix(rows: List[List[str]]) -> np.ndarray:
    return np.array([[float.fromhex(v) for v in row] for row in rows])


def _checkpoint_fingerprint(
    config: DGDConfig,
    n: int,
    f: int,
    dimension: int,
    faulty_ids: Sequence[int],
    crash_rounds: Dict[int, int],
    filter_name: str,
) -> Dict:
    """Identity of a run for checkpoint-compatibility purposes.

    Iteration count is deliberately excluded: resuming a 30-round
    checkpoint into a 60-round run is legitimate (and tested).
    """
    return {
        "n": int(n),
        "f": int(f),
        "d": int(dimension),
        "seed": repr(config.seed),
        "filter": filter_name,
        "faulty_ids": [int(i) for i in faulty_ids],
        "crash_rounds": {str(k): int(v) for k, v in sorted(crash_rounds.items())},
        "fault_seed": None if config.fault_model is None else config.fault_model.seed,
    }


def _write_checkpoint(
    path: str,
    fingerprint: Dict,
    completed_rounds: int,
    server: ResilientDGDServer,
    network: PartiallySynchronousNetwork,
    adversary: Optional[Adversary],
    agents: Dict[int, Agent],
    estimates: np.ndarray,
    directions: np.ndarray,
) -> None:
    adversary_state = None
    if adversary is not None:
        adversary_state = adversary._rng.bit_generator.state
    payload = {
        "version": _CHECKPOINT_VERSION,
        "fingerprint": fingerprint,
        "round": int(completed_rounds),
        "server": server.checkpoint(),
        "network": network.state(),
        "adversary_rng": adversary_state,
        "agents": {
            str(agent_id): agent.crashed
            for agent_id, agent in agents.items()
            if isinstance(agent, CrashAgent)
        },
        "estimates": _hex_matrix(estimates[: completed_rounds + 1]),
        "directions": _hex_matrix(directions[:completed_rounds]),
    }
    write_json_atomic(path, payload)


def _load_checkpoint(path: str, fingerprint: Dict, iterations: int) -> Optional[Dict]:
    """Read and vet a checkpoint; ``None`` means "start fresh"."""
    if not os.path.exists(path):
        return None
    try:
        payload = read_json_checked(path, require_checksum=True)
    except CacheIntegrityError as exc:
        warnings.warn(
            f"ignoring corrupt checkpoint {path}: {exc}", stacklevel=3
        )
        return None
    if payload.get("version") != _CHECKPOINT_VERSION:
        warnings.warn(
            f"ignoring checkpoint {path} with version "
            f"{payload.get('version')!r} (expected {_CHECKPOINT_VERSION})",
            stacklevel=3,
        )
        return None
    if payload.get("fingerprint") != fingerprint:
        warnings.warn(
            f"ignoring checkpoint {path}: it belongs to a different "
            "configuration",
            stacklevel=3,
        )
        return None
    if payload["round"] > iterations:
        warnings.warn(
            f"ignoring checkpoint {path}: it is {payload['round']} rounds "
            f"deep but the run only has {iterations}",
            stacklevel=3,
        )
        return None
    return payload


def _run_partially_synchronous(
    *,
    config: DGDConfig,
    tel,
    agents: Dict[int, Agent],
    adversary: Optional[Adversary],
    faulty_ids: List[int],
    crash_rounds: Dict[int, int],
    honest_ids: List[int],
    gradient_filter: GradientFilter,
    step_sizes: StepSizeSchedule,
    projection: ConvexSet,
    x0: np.ndarray,
    n: int,
    f: int,
    dimension: int,
    round_hook: Optional[Callable[[int, DGDServer], None]],
) -> Trace:
    """The degraded-network execution loop (see :func:`run_dgd`).

    Network fault draws are pure functions of the model seed, the server
    is the self-healing :class:`ResilientDGDServer`, and — when a
    checkpoint path is configured — the full run state (server, in-flight
    queue, adversary RNG, crash flags, trajectory prefix) checkpoints
    atomically and resumes bit-identically.
    """
    model = config.fault_model if config.fault_model is not None else NetworkFaultModel()
    policy = (
        config.resilience
        if config.resilience is not None
        else ResiliencePolicy.for_model(model)
    )
    filter_name = getattr(gradient_filter, "name", type(gradient_filter).__name__)
    network = PartiallySynchronousNetwork(model, log_capacity=config.log_capacity)
    server = ResilientDGDServer(
        fixed_filter_factory(gradient_filter),
        step_sizes,
        projection,
        x0,
        n=n,
        f=f,
        telemetry=tel,
        policy=policy,
    )

    iterations = config.iterations
    estimates = np.empty((iterations + 1, dimension))
    directions = np.empty((iterations, dimension))
    estimates[0] = server.estimate

    start_round = 0
    fingerprint = _checkpoint_fingerprint(
        config, n, f, dimension, faulty_ids, crash_rounds, filter_name
    )
    if config.checkpoint_path:
        if config.checkpoint_every <= 0:
            raise InvalidParameterError(
                f"checkpoint_every must be positive, got {config.checkpoint_every}"
            )
        saved = _load_checkpoint(config.checkpoint_path, fingerprint, iterations)
        if saved is not None:
            server.restore(saved["server"])
            network.restore_state(saved["network"])
            if adversary is not None and saved["adversary_rng"] is not None:
                adversary._rng.bit_generator.state = saved["adversary_rng"]
            for agent_id, crashed in saved["agents"].items():
                agent = agents.get(int(agent_id))
                if isinstance(agent, CrashAgent):
                    agent._crashed = bool(crashed)
            start_round = int(saved["round"])
            estimates[: start_round + 1] = _unhex_matrix(saved["estimates"])
            if start_round:
                directions[:start_round] = _unhex_matrix(saved["directions"])
            if tel:
                tel.emit("resume", round=start_round, path=config.checkpoint_path)

    start = time.perf_counter()
    with tel.span("run"):
        for t in range(start_round, iterations):
            with tel.span("round"):
                broadcast = server.make_broadcast()
                active = set(server.active_agents)
                for agent_id in sorted(active):
                    network.submit(broadcast, agent_id, t)
                honest_replies: List[GradientMessage] = []
                for agent_id in sorted(active & set(agents)):
                    if model.profile(agent_id).is_down(t):
                        continue  # the endpoint is inside its crash window
                    for delivered in network.collect(agent_id, t):
                        reply = agents[agent_id].on_estimate(delivered)
                        if reply is not None:
                            honest_replies.append(reply)
                # Canonical reply order: the adversary's view (and hence
                # its forgeries) must not depend on delivery shuffling.
                honest_replies.sort(key=lambda m: (m.round_index, m.sender))
                forged: List[GradientMessage] = []
                if adversary is not None:
                    active_faulty = sorted(active & set(faulty_ids))
                    if active_faulty:
                        forged = adversary.forge_messages(
                            broadcast, honest_replies, active_faulty=active_faulty
                        )
                for message in honest_replies + forged:
                    network.submit(message, SERVER_ID, t)
                server.step_partial(network.collect(SERVER_ID, t))
                estimates[t + 1] = server.estimate
                directions[t] = server.last_direction
            if round_hook is not None:
                round_hook(t, server)
            if config.checkpoint_path and (
                (t + 1) % config.checkpoint_every == 0 or t + 1 == iterations
            ):
                _write_checkpoint(
                    config.checkpoint_path,
                    fingerprint,
                    t + 1,
                    server,
                    network,
                    adversary,
                    agents,
                    estimates,
                    directions,
                )
    elapsed = time.perf_counter() - start

    extra: Dict[str, object] = {
        "resilience": server.resilience_summary(),
        "traffic": network.traffic_summary(),
        "resumed_from_round": start_round,
    }
    if config.record_messages:
        extra["network_log"] = network.log
    return Trace(
        estimates=estimates,
        directions=directions,
        honest_ids=honest_ids,
        faulty_ids=faulty_ids,
        eliminated=server.eliminated_agents,
        wall_time=elapsed,
        messages_delivered=network.messages_delivered,
        bytes_delivered=network.bytes_delivered,
        filter_name=filter_name,
        crash_ids=sorted(crash_rounds),
        messages_dropped=network.messages_dropped,
        bytes_dropped=network.bytes_dropped,
        extra=extra,
    )
