"""The rushing omniscient adversary coordinating all Byzantine agents."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.attacks.base import AttackContext, ByzantineBehavior
from repro.exceptions import InvalidParameterError
from repro.optimization.cost_functions import CostFunction
from repro.system.messages import EstimateBroadcast, GradientMessage
from repro.utils.rng import SeedLike, ensure_rng


class Adversary:
    """Controls the faulty agents and forges their round messages.

    The adversary is *rushing*: :meth:`forge_messages` receives the honest
    agents' gradient messages of the current round before producing the
    faulty ones, which is the strongest adversary the synchronous model
    admits and therefore the right one to evaluate filters against.

    Parameters
    ----------
    behavior:
        The attack strategy.
    faulty_ids:
        Agent ids under adversarial control.
    costs:
        Optional map from faulty id to that agent's true cost function
        (needed by behaviours such as gradient-reverse).
    seed:
        Adversary randomness.
    silent_ids:
        Subset of ``faulty_ids`` that stay silent instead of sending forged
        gradients (exercises the server's elimination rule).
    """

    def __init__(
        self,
        behavior: ByzantineBehavior,
        faulty_ids: Sequence[int],
        costs: Optional[Dict[int, CostFunction]] = None,
        seed: SeedLike = None,
        silent_ids: Sequence[int] = (),
    ):
        self._behavior = behavior
        self._faulty_ids = sorted(set(int(i) for i in faulty_ids))
        if not self._faulty_ids and silent_ids:
            raise InvalidParameterError("silent_ids must be a subset of faulty_ids")
        self._costs = dict(costs or {})
        self._rng = ensure_rng(seed)
        self._silent_ids = set(int(i) for i in silent_ids)
        if not self._silent_ids.issubset(self._faulty_ids):
            raise InvalidParameterError("silent_ids must be a subset of faulty_ids")

    @property
    def faulty_ids(self) -> List[int]:
        return list(self._faulty_ids)

    @property
    def behavior(self) -> ByzantineBehavior:
        return self._behavior

    def forge_messages(
        self,
        broadcast: EstimateBroadcast,
        honest_messages: Sequence[GradientMessage],
        active_faulty: Optional[Sequence[int]] = None,
    ) -> List[GradientMessage]:
        """Produce the faulty agents' messages for this round.

        Parameters
        ----------
        broadcast:
            The server's estimate broadcast (the adversary receives it like
            everyone else).
        honest_messages:
            The honest gradient messages of this round, observed before
            speaking (rushing).
        active_faulty:
            Faulty ids still in the system (the server may have eliminated
            some); defaults to all controlled ids.
        """
        active = (
            self._faulty_ids
            if active_faulty is None
            else sorted(set(int(i) for i in active_faulty) & set(self._faulty_ids))
        )
        speaking = [i for i in active if i not in self._silent_ids]
        if not speaking:
            return []
        honest_ids = [message.sender for message in honest_messages]
        honest_gradients = (
            np.stack([message.gradient for message in honest_messages])
            if honest_messages
            else np.zeros((0, broadcast.estimate.shape[0]))
        )
        context = AttackContext(
            round_index=broadcast.round_index,
            estimate=broadcast.estimate,
            honest_gradients=honest_gradients,
            honest_ids=honest_ids,
            faulty_ids=speaking,
            faulty_costs=[self._costs.get(i) for i in speaking],
            rng=self._rng,
        )
        forged = self._behavior(context)
        return [
            GradientMessage(
                sender=agent_id,
                round_index=broadcast.round_index,
                gradient=forged[row],
            )
            for row, agent_id in enumerate(speaking)
        ]
