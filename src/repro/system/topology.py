"""Seeded sparse communication topologies for decentralized DGD.

The paper's peer-to-peer analysis assumes every agent hears every other
agent each round. This module drops that assumption: a :class:`Topology` is
an undirected communication graph, and the decentralized engine
(:mod:`repro.system.decentralized`) lets each agent see only its graph
neighborhood. Fault-tolerance then becomes *local*: agent ``i`` can
tolerate at most ``f_i`` Byzantine neighbors when its closed neighborhood
(itself plus its ``deg_i`` neighbors) satisfies ``deg_i + 1 >= 2 f_i + 1``
— the per-neighborhood reading of the paper's 2f-redundancy bound, in the
spirit of "Byzantine Fault-Tolerance in Peer-to-Peer Distributed
Gradient-Descent" and the minimal-redundancy decentralized follow-up
(PAPERS.md).

Every generator is a pure function of its parameters and ``seed``:
identical calls produce identical graphs (adjacency is canonically stored
as sorted neighbor lists), so experiment grids, caches, and the CI chaos
legs can replay a topology from its declaration alone.

Generators
----------
``ring``
    Circulant graph: each agent talks to its ``hops`` nearest neighbors on
    each side (degree ``2 * hops``).
``torus``
    2-D grid with wraparound (degree 4) — the classic low-diameter sparse
    mesh.
``random-regular``
    Configuration-model random ``degree``-regular graph (an expander with
    high probability), resampled deterministically until simple.
``random-geometric``
    Agents at seeded uniform points in the unit square, connected within
    ``radius``. The one generator that naturally produces *disconnected*
    graphs — partitions are first-class here, not an error.
``scale-free``
    Barabási–Albert preferential attachment with ``attach`` edges per new
    node: hubs plus a heavy tail of low-degree leaves.
``complete``
    The dense graph (every pair connected) — the bridge back to the
    broadcast-based peer-to-peer architecture.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import (
    InvalidParameterError,
    TopologyInfeasibilityError,
    UnknownRegistryEntryError,
)

__all__ = [
    "Topology",
    "available_topologies",
    "complete_topology",
    "make_topology",
    "random_geometric_topology",
    "random_regular_topology",
    "ring_topology",
    "scale_free_topology",
    "torus_topology",
]


class Topology:
    """An undirected communication graph with canonical adjacency.

    Neighbor lists are stored sorted, so two topologies built from the same
    edge set — in any order — are indistinguishable, and every consumer
    (the decentralized engine, the fault model, the property suite) sees
    one canonical neighbor ordering.
    """

    def __init__(self, n: int, edges: Sequence[Tuple[int, int]], name: str = "custom",
                 params: Optional[Dict] = None):
        n = int(n)
        if n <= 0:
            raise InvalidParameterError(f"n must be positive, got {n}")
        adjacency: List[set] = [set() for _ in range(n)]
        for u, v in edges:
            u, v = int(u), int(v)
            if u == v:
                raise InvalidParameterError(f"self-loop on agent {u}")
            if not (0 <= u < n and 0 <= v < n):
                raise InvalidParameterError(
                    f"edge ({u}, {v}) out of range for n={n}"
                )
            adjacency[u].add(v)
            adjacency[v].add(u)
        self.n = n
        self.name = str(name)
        self.params = dict(params or {})
        self._neighbors: List[np.ndarray] = [
            np.array(sorted(peers), dtype=np.int64) for peers in adjacency
        ]
        self._degrees = np.array([len(a) for a in self._neighbors], dtype=np.int64)
        self._neighbor_matrix: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def neighbors(self, agent: int) -> np.ndarray:
        """Sorted neighbor ids of ``agent`` (a copy)."""
        return self._neighbors[int(agent)].copy()

    @property
    def degrees(self) -> np.ndarray:
        """Per-agent degree vector (a copy)."""
        return self._degrees.copy()

    @property
    def max_degree(self) -> int:
        return int(self._degrees.max()) if self.n else 0

    @property
    def min_degree(self) -> int:
        return int(self._degrees.min()) if self.n else 0

    @property
    def num_edges(self) -> int:
        """Undirected edge count."""
        return int(self._degrees.sum()) // 2

    def edge_list(self) -> np.ndarray:
        """``(E, 2)`` array of undirected edges ``(u < v)``, lexicographic."""
        pairs = [
            (u, int(v))
            for u in range(self.n)
            for v in self._neighbors[u]
            if u < v
        ]
        if not pairs:
            return np.empty((0, 2), dtype=np.int64)
        return np.array(pairs, dtype=np.int64)

    def neighbor_matrix(self) -> Tuple[np.ndarray, np.ndarray]:
        """Padded adjacency: ``(nbr, valid)`` of shape ``(n, max_degree)``.

        ``nbr[i, :deg_i]`` holds agent ``i``'s sorted neighbors; padding
        slots carry ``0`` with ``valid=False`` (a safe gather index). This
        is the gather layout the vectorized decentralized engine consumes;
        it is computed once and cached.
        """
        if self._neighbor_matrix is None:
            width = max(self.max_degree, 1)
            nbr = np.zeros((self.n, width), dtype=np.int64)
            valid = np.zeros((self.n, width), dtype=bool)
            for i, peers in enumerate(self._neighbors):
                nbr[i, : peers.shape[0]] = peers
                valid[i, : peers.shape[0]] = True
            nbr.setflags(write=False)
            valid.setflags(write=False)
            self._neighbor_matrix = (nbr, valid)
        return self._neighbor_matrix

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------

    def components(self) -> List[List[int]]:
        """Connected components as sorted id lists, ordered by smallest member."""
        parent = list(range(self.n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u in range(self.n):
            for v in self._neighbors[u]:
                ru, rv = find(u), find(int(v))
                if ru != rv:
                    parent[max(ru, rv)] = min(ru, rv)
        groups: Dict[int, List[int]] = {}
        for u in range(self.n):
            groups.setdefault(find(u), []).append(u)
        return [sorted(members) for _, members in sorted(groups.items())]

    @property
    def is_connected(self) -> bool:
        return len(self.components()) == 1

    # ------------------------------------------------------------------
    # Per-neighborhood fault accounting
    # ------------------------------------------------------------------

    def local_fault_counts(self, faulty_ids: Sequence[int]) -> np.ndarray:
        """``f_i`` = how many of ``faulty_ids`` sit in each agent's neighborhood."""
        faulty = np.zeros(self.n, dtype=bool)
        for i in faulty_ids:
            i = int(i)
            if not 0 <= i < self.n:
                raise InvalidParameterError(
                    f"faulty id {i} out of range for n={self.n}"
                )
            faulty[i] = True
        return np.array(
            [int(faulty[peers].sum()) for peers in self._neighbors], dtype=np.int64
        )

    def resolve_budgets(self, budgets, faulty_ids: Sequence[int] = ()) -> np.ndarray:
        """Normalize a local fault-budget spec to a per-agent int vector.

        ``None`` derives the budgets from the ground truth (each agent
        budgets exactly the Byzantine agents actually in its neighborhood);
        an int applies uniformly; a sequence is taken per agent.
        """
        if budgets is None:
            return self.local_fault_counts(faulty_ids)
        if np.isscalar(budgets):
            value = int(budgets)
            if value < 0:
                raise InvalidParameterError(f"fault budget must be >= 0, got {value}")
            return np.full(self.n, value, dtype=np.int64)
        arr = np.asarray(budgets, dtype=np.int64)
        if arr.shape != (self.n,):
            raise InvalidParameterError(
                f"per-agent budgets must have shape ({self.n},), got {arr.shape}"
            )
        if (arr < 0).any():
            raise InvalidParameterError("fault budgets must be >= 0")
        return arr.copy()

    def feasible_agents(self, budgets: np.ndarray) -> np.ndarray:
        """Local 2f-redundancy mask: ``deg_i + 1 >= 2 f_i + 1``.

        An agent whose closed neighborhood is too small for its budget
        cannot run a trimmed aggregation that provably survives ``f_i``
        Byzantine neighbors.
        """
        budgets = np.asarray(budgets, dtype=np.int64)
        return self._degrees >= 2 * budgets

    def check_local_redundancy(
        self, budgets, faulty_ids: Sequence[int] = ()
    ) -> np.ndarray:
        """Resolve budgets and raise :class:`TopologyInfeasibilityError` on violation.

        Returns the resolved per-agent budget vector when every agent is
        locally feasible.
        """
        resolved = self.resolve_budgets(budgets, faulty_ids)
        feasible = self.feasible_agents(resolved)
        if not feasible.all():
            bad = np.flatnonzero(~feasible)
            raise TopologyInfeasibilityError(
                agents=bad.tolist(),
                degrees={int(i): int(self._degrees[i]) for i in bad},
                budgets={int(i): int(resolved[i]) for i in bad},
            )
        return resolved

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Topology(name={self.name!r}, n={self.n}, edges={self.num_edges}, "
            f"degree=[{self.min_degree}, {self.max_degree}])"
        )


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------


def ring_topology(n: int, hops: int = 1) -> Topology:
    """Circulant ring: agent ``i`` talks to ``i ± 1 .. i ± hops`` (mod n)."""
    n, hops = int(n), int(hops)
    if n < 3:
        raise InvalidParameterError(f"ring needs n >= 3, got {n}")
    if hops < 1 or 2 * hops >= n:
        raise InvalidParameterError(
            f"hops must satisfy 1 <= hops < n/2, got hops={hops}, n={n}"
        )
    edges = [
        (i, (i + k) % n) for i in range(n) for k in range(1, hops + 1)
    ]
    return Topology(n, edges, name="ring", params={"hops": hops})


def torus_topology(rows: int, cols: int) -> Topology:
    """2-D torus (wraparound grid), degree 4; ``n = rows * cols``."""
    rows, cols = int(rows), int(cols)
    if rows < 3 or cols < 3:
        raise InvalidParameterError(
            f"torus needs rows, cols >= 3, got {rows}x{cols}"
        )
    edges = []
    for r in range(rows):
        for c in range(cols):
            i = r * cols + c
            edges.append((i, r * cols + (c + 1) % cols))
            edges.append((i, ((r + 1) % rows) * cols + c))
    return Topology(
        rows * cols, edges, name="torus", params={"rows": rows, "cols": cols}
    )


def random_regular_topology(n: int, degree: int, seed: int = 0) -> Topology:
    """Random ``degree``-regular graph (configuration model, seeded).

    Each attempt pairs stubs by a seeded shuffle, keeps the pairs that are
    neither self-loops nor parallel edges, and re-shuffles the leftover
    stubs until all are matched; a dead end (no valid pair left among the
    leftovers) restarts from the next derived seed. The whole rejection
    sequence is a pure function of ``(n, degree, seed)``, so identical
    calls always yield the same graph. Random regular graphs of degree
    ``>= 3`` are expanders (and connected) with overwhelming probability;
    connectivity is *not* forced, so the rare disconnected sample is
    reproducible rather than silently resampled.
    """
    n, degree = int(n), int(degree)
    if degree < 1 or degree >= n:
        raise InvalidParameterError(
            f"degree must satisfy 1 <= degree < n, got degree={degree}, n={n}"
        )
    if (n * degree) % 2 != 0:
        raise InvalidParameterError(
            f"n * degree must be even, got n={n}, degree={degree}"
        )
    for attempt in range(200):
        rng = np.random.default_rng([int(seed), attempt, n, degree])
        adjacency: List[set] = [set() for _ in range(n)]
        stubs = np.repeat(np.arange(n), degree)
        stuck = False
        while stubs.size:
            rng.shuffle(stubs)
            leftover: List[int] = []
            progress = False
            for u, v in zip(stubs[0::2].tolist(), stubs[1::2].tolist()):
                if u != v and v not in adjacency[u]:
                    adjacency[u].add(v)
                    adjacency[v].add(u)
                    progress = True
                else:
                    leftover.extend((u, v))
            stubs = np.array(leftover, dtype=np.int64)
            if not progress:
                distinct = set(leftover)
                if not any(
                    u != v and v not in adjacency[u]
                    for u in distinct
                    for v in distinct
                ):
                    stuck = True
                    break
        if stuck:
            continue
        edges = [
            (u, v) for u in range(n) for v in adjacency[u] if u < v
        ]
        return Topology(
            n,
            edges,
            name="random-regular",
            params={"degree": degree, "seed": int(seed)},
        )
    raise InvalidParameterError(
        f"could not sample a simple {degree}-regular graph on n={n} agents "
        f"in 200 attempts (seed {seed})"
    )


def random_geometric_topology(n: int, radius: float, seed: int = 0) -> Topology:
    """Random geometric graph: seeded points in the unit square, edges within ``radius``."""
    n = int(n)
    radius = float(radius)
    if n < 2:
        raise InvalidParameterError(f"random-geometric needs n >= 2, got {n}")
    if not 0.0 < radius <= np.sqrt(2.0):
        raise InvalidParameterError(
            f"radius must lie in (0, sqrt(2)], got {radius}"
        )
    rng = np.random.default_rng([int(seed), n])
    points = rng.random((n, 2))
    deltas = points[:, None, :] - points[None, :, :]
    close = (deltas ** 2).sum(axis=2) <= radius ** 2
    u, v = np.nonzero(np.triu(close, k=1))
    topo = Topology(
        n,
        list(zip(u.tolist(), v.tolist())),
        name="random-geometric",
        params={"radius": radius, "seed": int(seed)},
    )
    topo.params["points"] = points
    return topo


def scale_free_topology(n: int, attach: int = 2, seed: int = 0) -> Topology:
    """Barabási–Albert preferential attachment (seeded, deterministic).

    Starts from a complete core of ``attach + 1`` nodes; each arriving node
    connects to ``attach`` distinct existing nodes chosen proportionally to
    their current degree.
    """
    n, attach = int(n), int(attach)
    if attach < 1:
        raise InvalidParameterError(f"attach must be >= 1, got {attach}")
    core = attach + 1
    if n <= core:
        raise InvalidParameterError(
            f"scale-free needs n > attach + 1, got n={n}, attach={attach}"
        )
    rng = np.random.default_rng([int(seed), n, attach])
    edges = [(u, v) for u in range(core) for v in range(u + 1, core)]
    # The repeated-nodes trick: each endpoint appearance is one "ticket",
    # so a uniform ticket draw is a degree-proportional node draw.
    tickets: List[int] = [node for edge in edges for node in edge]
    for new in range(core, n):
        chosen: set = set()
        while len(chosen) < attach:
            chosen.add(tickets[int(rng.integers(len(tickets)))])
        for target in sorted(chosen):
            edges.append((target, new))
            tickets.extend((target, new))
    return Topology(
        n, edges, name="scale-free", params={"attach": attach, "seed": int(seed)}
    )


def complete_topology(n: int) -> Topology:
    """The dense graph — every pair of agents connected."""
    n = int(n)
    if n < 2:
        raise InvalidParameterError(f"complete needs n >= 2, got {n}")
    edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
    return Topology(n, edges, name="complete", params={})


def _make_ring(n: int, seed: int, hops: int = 1) -> Topology:
    return ring_topology(n, hops=hops)


def _make_torus(n: int, seed: int, rows: Optional[int] = None) -> Topology:
    if rows is None:
        rows = int(np.sqrt(n))
        while rows > 3 and n % rows != 0:
            rows -= 1
    if n % rows != 0:
        raise InvalidParameterError(
            f"torus needs n divisible into a grid, got n={n} (rows={rows})"
        )
    return torus_topology(rows, n // rows)


def _make_random_regular(n: int, seed: int, degree: int = 6) -> Topology:
    return random_regular_topology(n, degree, seed=seed)


def _make_random_geometric(n: int, seed: int, radius: float = 0.2) -> Topology:
    return random_geometric_topology(n, radius, seed=seed)


def _make_scale_free(n: int, seed: int, attach: int = 2) -> Topology:
    return scale_free_topology(n, attach=attach, seed=seed)


def _make_complete(n: int, seed: int) -> Topology:
    return complete_topology(n)


#: Registry: name -> factory(n, seed, **params).
TOPOLOGIES: Dict[str, Callable[..., Topology]] = {
    "ring": _make_ring,
    "torus": _make_torus,
    "random-regular": _make_random_regular,
    "random-geometric": _make_random_geometric,
    "scale-free": _make_scale_free,
    "complete": _make_complete,
}


def available_topologies() -> List[str]:
    """Registered topology generator names, sorted."""
    return sorted(TOPOLOGIES)


def make_topology(name: str, n: int, seed: int = 0, **params) -> Topology:
    """Build a registered topology by name (seeded, deterministic)."""
    try:
        factory = TOPOLOGIES[name]
    except KeyError:
        raise UnknownRegistryEntryError("topology", name, available_topologies()) from None
    return factory(int(n), int(seed), **params)
